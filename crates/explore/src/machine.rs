//! Versioned, validated machine specifications.
//!
//! A [`MachineSpec`] is a file-loadable description of a simulated
//! machine plus the workloads and (optionally) the sweep grid to explore
//! on it. Specs are written in the TOML subset of [`crate::toml`] or as
//! plain JSON with the same shape; both decode through the same
//! path-tracking walker, so every error names the exact field
//! (`machine.llc.slice_capacity_kib: ...`) instead of failing opaquely.
//!
//! Unspecified machine fields default to the paper-calibrated
//! [`target_config`] for the spec's core count, so a minimal spec is
//! just a `schema` line — everything else is an override.

use std::collections::BTreeMap;
use std::path::Path;

use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use sms_core::scaling::target_config;
use sms_sim::config::SystemConfig;
use sms_workloads::spec::by_name;

use crate::grid::{parse_axis, AxisValue, GridSpec, AXES};
use crate::toml::TomlError;

/// Spec file-format version; bump on any incompatible schema change.
pub const MACHINE_SCHEMA_VERSION: u32 = 1;

/// Default per-instance instruction budget when the spec omits one.
pub const DEFAULT_BUDGET: u64 = 200_000;

/// Default workload seed when the spec omits one.
pub const DEFAULT_SEED: u64 = 43;

/// One field-level problem in a spec: the dotted path and the complaint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecError {
    /// Dotted path of the offending field (e.g. `machine.llc.slices`).
    pub path: String,
    /// What is wrong with it.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// Why a spec file could not be loaded.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecLoadError {
    /// The file could not be read.
    Io(String),
    /// The TOML subset parser rejected the file.
    Toml(TomlError),
    /// The JSON parser rejected the file.
    Json(String),
    /// The file parsed but the spec failed validation; every field-level
    /// problem is listed.
    Invalid(Vec<SpecError>),
}

impl std::fmt::Display for SpecLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot read spec: {e}"),
            Self::Toml(e) => write!(f, "spec parse error: {e}"),
            Self::Json(e) => write!(f, "spec parse error: {e}"),
            Self::Invalid(errors) => {
                writeln!(f, "invalid machine spec ({} error(s)):", errors.len())?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "  {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SpecLoadError {}

/// The workloads a spec declares: mix definitions plus run parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadsDecl {
    /// Benchmark-name lists; each list is filled round-robin over a
    /// design point's cores to form one [`MixSpec`](sms_workloads::mix::MixSpec).
    pub mixes: Vec<Vec<String>>,
    /// Workload seed.
    pub seed: u64,
    /// Per-instance instruction budget (measured phase).
    pub budget: u64,
}

impl Default for WorkloadsDecl {
    fn default() -> Self {
        Self {
            mixes: Vec::new(),
            seed: DEFAULT_SEED,
            budget: DEFAULT_BUDGET,
        }
    }
}

/// A fully resolved, validated machine spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Spec schema version (see [`MACHINE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Spec name, used in labels and reports.
    pub name: String,
    /// The base machine, with every unspecified field defaulted from
    /// [`target_config`] at the spec's core count.
    pub machine: SystemConfig,
    /// Declared workloads.
    pub workloads: WorkloadsDecl,
    /// Declared sweep grid (may be empty for single-machine specs).
    pub grid: GridSpec,
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Error-collecting walker over a parsed `serde_json::Value` tree. Every
/// accessor records a [`SpecError`] with the dotted field path on
/// mismatch and returns the fallback, so one pass reports every problem.
struct Dec {
    errors: Vec<SpecError>,
}

impl Dec {
    fn push(&mut self, path: &str, message: impl Into<String>) {
        self.errors.push(SpecError {
            path: path.to_owned(),
            message: message.into(),
        });
    }

    /// Reject unknown keys so typos surface instead of silently
    /// deferring to defaults.
    fn check_keys(&mut self, obj: &Map<String, Value>, path: &str, allowed: &[&str]) {
        for k in obj.keys() {
            if !allowed.contains(&k.as_str()) {
                self.push(
                    &join(path, k),
                    format!("unknown field (expected one of: {})", allowed.join(", ")),
                );
            }
        }
    }

    fn section<'a>(
        &mut self,
        obj: &'a Map<String, Value>,
        path: &str,
        key: &str,
    ) -> Option<&'a Map<String, Value>> {
        match obj.get(key) {
            None => None,
            Some(Value::Object(m)) => Some(m),
            Some(_) => {
                self.push(&join(path, key), "expected a table");
                None
            }
        }
    }

    fn u64_opt(&mut self, obj: &Map<String, Value>, path: &str, key: &str) -> Option<u64> {
        match obj.get(key) {
            None => None,
            Some(v) => match v.as_u64() {
                Some(n) => Some(n),
                None => {
                    self.push(
                        &join(path, key),
                        format!("expected a non-negative integer, got {v}"),
                    );
                    None
                }
            },
        }
    }

    fn u32_opt(&mut self, obj: &Map<String, Value>, path: &str, key: &str) -> Option<u32> {
        let n = self.u64_opt(obj, path, key)?;
        match u32::try_from(n) {
            Ok(n) => Some(n),
            Err(_) => {
                self.push(&join(path, key), format!("{n} does not fit in 32 bits"));
                None
            }
        }
    }

    fn f64_opt(&mut self, obj: &Map<String, Value>, path: &str, key: &str) -> Option<f64> {
        match obj.get(key) {
            None => None,
            Some(v) => match v.as_f64() {
                Some(f) if f.is_finite() => Some(f),
                _ => {
                    self.push(
                        &join(path, key),
                        format!("expected a finite number, got {v}"),
                    );
                    None
                }
            },
        }
    }

    fn bool_opt(&mut self, obj: &Map<String, Value>, path: &str, key: &str) -> Option<bool> {
        match obj.get(key) {
            None => None,
            Some(Value::Bool(b)) => Some(*b),
            Some(v) => {
                self.push(&join(path, key), format!("expected true or false, got {v}"));
                None
            }
        }
    }

    fn str_opt(&mut self, obj: &Map<String, Value>, path: &str, key: &str) -> Option<String> {
        match obj.get(key) {
            None => None,
            Some(Value::String(s)) => Some(s.clone()),
            Some(v) => {
                self.push(&join(path, key), format!("expected a string, got {v}"));
                None
            }
        }
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_owned()
    } else {
        format!("{path}.{key}")
    }
}

/// Apply a cache override section (`capacity_kib`/`capacity_bytes`,
/// `associativity`, `latency`) onto `cache`.
fn decode_cache(
    dec: &mut Dec,
    obj: &Map<String, Value>,
    path: &str,
    cache: &mut sms_sim::config::CacheConfig,
) {
    dec.check_keys(
        obj,
        path,
        &["capacity_kib", "capacity_bytes", "associativity", "latency"],
    );
    if obj.contains_key("capacity_kib") && obj.contains_key("capacity_bytes") {
        dec.push(path, "give capacity_kib or capacity_bytes, not both");
    }
    if let Some(kib) = dec.u64_opt(obj, path, "capacity_kib") {
        cache.capacity_bytes = kib.saturating_mul(1024);
    }
    if let Some(bytes) = dec.u64_opt(obj, path, "capacity_bytes") {
        cache.capacity_bytes = bytes;
    }
    if let Some(a) = dec.u32_opt(obj, path, "associativity") {
        cache.associativity = a;
    }
    if let Some(l) = dec.u32_opt(obj, path, "latency") {
        cache.access_latency = l;
    }
}

/// Decode the `[machine]` section into a [`SystemConfig`], starting from
/// [`target_config`] at the section's core count.
fn decode_machine(dec: &mut Dec, root: &Map<String, Value>) -> SystemConfig {
    let Some(obj) = dec.section(root, "", "machine") else {
        return target_config(32);
    };
    let path = "machine";
    dec.check_keys(
        obj,
        path,
        &[
            "cores",
            "sync_quantum",
            "inclusive_llc",
            "core",
            "l1i",
            "l1d",
            "l2",
            "llc",
            "noc",
            "dram",
            "prefetch",
        ],
    );
    let cores = match dec.u32_opt(obj, path, "cores") {
        Some(c) if (1..=256).contains(&c) && c.is_power_of_two() => c,
        Some(c) => {
            dec.push(
                &join(path, "cores"),
                format!("{c} must be a power of two in [1, 256]"),
            );
            32
        }
        None => 32,
    };
    let mut cfg = target_config(cores);
    if let Some(q) = dec.u64_opt(obj, path, "sync_quantum") {
        cfg.sync_quantum = q;
    }
    if let Some(b) = dec.bool_opt(obj, path, "inclusive_llc") {
        cfg.inclusive_llc = b;
    }
    if let Some(core) = dec.section(obj, path, "core") {
        let p = &join(path, "core");
        dec.check_keys(
            core,
            p,
            &[
                "issue_width",
                "rob_size",
                "max_outstanding_loads",
                "max_outstanding_stores",
                "max_outstanding_l1d_misses",
                "branch_miss_penalty",
            ],
        );
        let c = &mut cfg.core;
        for (key, field) in [
            ("issue_width", &mut c.issue_width),
            ("rob_size", &mut c.rob_size),
            ("max_outstanding_loads", &mut c.max_outstanding_loads),
            ("max_outstanding_stores", &mut c.max_outstanding_stores),
            (
                "max_outstanding_l1d_misses",
                &mut c.max_outstanding_l1d_misses,
            ),
            ("branch_miss_penalty", &mut c.branch_miss_penalty),
        ] {
            if let Some(v) = dec.u32_opt(core, p, key) {
                *field = v;
            }
        }
    }
    for (key, cache) in [
        ("l1i", &mut cfg.l1i),
        ("l1d", &mut cfg.l1d),
        ("l2", &mut cfg.l2),
    ] {
        if let Some(sec) = dec.section(obj, path, key) {
            decode_cache(dec, sec, &join(path, key), cache);
        }
    }
    if let Some(llc) = dec.section(obj, path, "llc") {
        let p = &join(path, "llc");
        dec.check_keys(
            llc,
            p,
            &[
                "slices",
                "slice_capacity_kib",
                "slice_capacity_bytes",
                "associativity",
                "latency",
            ],
        );
        if let Some(s) = dec.u32_opt(llc, p, "slices") {
            cfg.llc.num_slices = s;
        }
        if llc.contains_key("slice_capacity_kib") && llc.contains_key("slice_capacity_bytes") {
            dec.push(
                p,
                "give slice_capacity_kib or slice_capacity_bytes, not both",
            );
        }
        if let Some(kib) = dec.u64_opt(llc, p, "slice_capacity_kib") {
            cfg.llc.slice.capacity_bytes = kib.saturating_mul(1024);
        }
        if let Some(bytes) = dec.u64_opt(llc, p, "slice_capacity_bytes") {
            cfg.llc.slice.capacity_bytes = bytes;
        }
        if let Some(a) = dec.u32_opt(llc, p, "associativity") {
            cfg.llc.slice.associativity = a;
        }
        if let Some(l) = dec.u32_opt(llc, p, "latency") {
            cfg.llc.slice.access_latency = l;
        }
    }
    if let Some(noc) = dec.section(obj, path, "noc") {
        let p = &join(path, "noc");
        dec.check_keys(
            noc,
            p,
            &[
                "mesh_cols",
                "mesh_rows",
                "hop_latency",
                "cross_section_links",
                "link_bandwidth_gbps",
            ],
        );
        for (key, field) in [
            ("mesh_cols", &mut cfg.noc.mesh_cols),
            ("mesh_rows", &mut cfg.noc.mesh_rows),
            ("hop_latency", &mut cfg.noc.hop_latency),
            ("cross_section_links", &mut cfg.noc.cross_section_links),
        ] {
            if let Some(v) = dec.u32_opt(noc, p, key) {
                *field = v;
            }
        }
        if let Some(bw) = dec.f64_opt(noc, p, "link_bandwidth_gbps") {
            cfg.noc.link_bandwidth_gbps = bw;
        }
    }
    if let Some(dram) = dec.section(obj, path, "dram") {
        let p = &join(path, "dram");
        dec.check_keys(
            dram,
            p,
            &["controllers", "controller_bandwidth_gbps", "base_latency"],
        );
        if let Some(n) = dec.u32_opt(dram, p, "controllers") {
            cfg.dram.num_controllers = n;
        }
        if let Some(bw) = dec.f64_opt(dram, p, "controller_bandwidth_gbps") {
            cfg.dram.controller_bandwidth_gbps = bw;
        }
        if let Some(l) = dec.u32_opt(dram, p, "base_latency") {
            cfg.dram.base_latency = l;
        }
    }
    if let Some(pf) = dec.section(obj, path, "prefetch") {
        let p = &join(path, "prefetch");
        dec.check_keys(pf, p, &["enabled", "degree", "streams", "max_stride"]);
        if let Some(e) = dec.bool_opt(pf, p, "enabled") {
            cfg.prefetch.enabled = e;
        }
        if let Some(d) = dec.u32_opt(pf, p, "degree") {
            cfg.prefetch.degree = d;
        }
        if let Some(s) = dec.u64_opt(pf, p, "streams") {
            cfg.prefetch.streams = s as usize;
        }
        if let Some(s) = dec.u64_opt(pf, p, "max_stride") {
            cfg.prefetch.max_stride = s as i64;
        }
    }
    cfg
}

fn decode_workloads(dec: &mut Dec, root: &Map<String, Value>) -> WorkloadsDecl {
    let mut out = WorkloadsDecl::default();
    let Some(obj) = dec.section(root, "", "workloads") else {
        return out;
    };
    let path = "workloads";
    dec.check_keys(obj, path, &["mixes", "seed", "budget"]);
    if let Some(seed) = dec.u64_opt(obj, path, "seed") {
        out.seed = seed;
    }
    match dec.u64_opt(obj, path, "budget") {
        Some(0) => dec.push(&join(path, "budget"), "must be non-zero"),
        Some(b) => out.budget = b,
        None => {}
    }
    match obj.get("mixes") {
        None => {}
        Some(Value::Array(mixes)) => {
            for (i, mix) in mixes.iter().enumerate() {
                let p = format!("{path}.mixes[{i}]");
                let names: Vec<String> = match mix {
                    // A bare string is shorthand for a homogeneous mix.
                    Value::String(s) => vec![s.clone()],
                    Value::Array(items) => items
                        .iter()
                        .filter_map(|v| match v {
                            Value::String(s) => Some(s.clone()),
                            other => {
                                dec.push(&p, format!("expected a benchmark name, got {other}"));
                                None
                            }
                        })
                        .collect(),
                    other => {
                        dec.push(&p, format!("expected a name or list of names, got {other}"));
                        continue;
                    }
                };
                if names.is_empty() {
                    dec.push(&p, "mix must name at least one benchmark");
                    continue;
                }
                for n in &names {
                    if by_name(n).is_none() {
                        dec.push(
                            &p,
                            format!("unknown benchmark `{n}` (see `sms bench-table`)"),
                        );
                    }
                }
                out.mixes.push(names);
            }
        }
        Some(other) => dec.push(
            &join(path, "mixes"),
            format!("expected a list, got {other}"),
        ),
    }
    out
}

fn decode_grid(dec: &mut Dec, root: &Map<String, Value>) -> GridSpec {
    let mut axes: BTreeMap<String, Vec<AxisValue>> = BTreeMap::new();
    let Some(obj) = dec.section(root, "", "grid") else {
        return GridSpec { axes };
    };
    for (key, value) in obj {
        let p = join("grid", key);
        if !AXES.contains(&key.as_str()) {
            dec.push(
                &p,
                format!("unknown axis (expected one of: {})", AXES.join(", ")),
            );
            continue;
        }
        match parse_axis(key, value) {
            Ok(values) => {
                axes.insert(key.clone(), values);
            }
            Err(msg) => dec.push(&p, msg),
        }
    }
    GridSpec { axes }
}

/// Decode a parsed spec document.
///
/// # Errors
///
/// Returns every field-level problem found — unknown fields, type
/// mismatches, invalid machine geometry, unknown benchmarks, malformed
/// grid axes — each tagged with its dotted path.
pub fn decode(value: &Value) -> Result<MachineSpec, Vec<SpecError>> {
    let mut dec = Dec { errors: Vec::new() };
    let Some(root) = value.as_object() else {
        return Err(vec![SpecError {
            path: String::new(),
            message: "spec root must be a table".to_owned(),
        }]);
    };
    dec.check_keys(
        root,
        "",
        &["schema", "name", "machine", "workloads", "grid"],
    );
    match dec.u32_opt(root, "", "schema") {
        Some(MACHINE_SCHEMA_VERSION) => {}
        Some(v) => dec.push(
            "schema",
            format!("unsupported schema version {v} (this build reads {MACHINE_SCHEMA_VERSION})"),
        ),
        None => {
            if !root.contains_key("schema") {
                dec.push(
                    "schema",
                    format!("required (set `schema = {MACHINE_SCHEMA_VERSION}`)"),
                );
            }
        }
    }
    let name = match dec.str_opt(root, "", "name") {
        Some(n) if !n.trim().is_empty() => n,
        Some(_) => {
            dec.push("name", "must be non-empty");
            "machine".to_owned()
        }
        None => "machine".to_owned(),
    };
    let machine = decode_machine(&mut dec, root);
    if let Err(e) = machine.validate() {
        dec.push("machine", e.to_string());
    }
    let workloads = decode_workloads(&mut dec, root);
    let grid = decode_grid(&mut dec, root);
    // Expansion validates every concrete design point, so a bad
    // grid/machine combination fails at load time, not mid-explore.
    if dec.errors.is_empty() && !grid.is_empty() {
        if let Err(mut es) = grid.expand(&machine) {
            dec.errors.append(&mut es);
        }
    }
    if dec.errors.is_empty() {
        Ok(MachineSpec {
            schema_version: MACHINE_SCHEMA_VERSION,
            name,
            machine,
            workloads,
            grid,
        })
    } else {
        Err(dec.errors)
    }
}

impl MachineSpec {
    /// Parse a spec from TOML-subset text.
    ///
    /// # Errors
    ///
    /// Returns [`SpecLoadError::Toml`] on syntax errors and
    /// [`SpecLoadError::Invalid`] with per-field diagnostics otherwise.
    pub fn from_toml(text: &str) -> Result<Self, SpecLoadError> {
        let value = crate::toml::parse(text).map_err(SpecLoadError::Toml)?;
        decode(&value).map_err(SpecLoadError::Invalid)
    }

    /// Parse a spec from JSON text (same shape as the TOML form).
    ///
    /// # Errors
    ///
    /// Returns [`SpecLoadError::Json`] on syntax errors and
    /// [`SpecLoadError::Invalid`] with per-field diagnostics otherwise.
    pub fn from_json(text: &str) -> Result<Self, SpecLoadError> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| SpecLoadError::Json(e.to_string()))?;
        decode(&value).map_err(SpecLoadError::Invalid)
    }

    /// Load a spec file; `.json` files parse as JSON, everything else as
    /// the TOML subset.
    ///
    /// # Errors
    ///
    /// Returns [`SpecLoadError::Io`] when the file cannot be read, or the
    /// corresponding parse/validation error.
    pub fn load(path: &Path) -> Result<Self, SpecLoadError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecLoadError::Io(format!("{}: {e}", path.display())))?;
        if path.extension().is_some_and(|x| x == "json") {
            Self::from_json(&text)
        } else {
            Self::from_toml(&text)
        }
    }

    /// Render the fully resolved spec back to TOML-subset text. The
    /// output round-trips: `from_toml(render_toml(s)) == s`.
    pub fn render_toml(&self) -> String {
        let m = &self.machine;
        let mut out = String::new();
        out.push_str(&format!(
            "schema = {}\nname = \"{}\"\n\n[machine]\ncores = {}\nsync_quantum = {}\n\
             inclusive_llc = {}\n\n[machine.core]\n",
            self.schema_version, self.name, m.num_cores, m.sync_quantum, m.inclusive_llc
        ));
        out.push_str(&format!(
            "issue_width = {}\nrob_size = {}\nmax_outstanding_loads = {}\n\
             max_outstanding_stores = {}\nmax_outstanding_l1d_misses = {}\n\
             branch_miss_penalty = {}\n",
            m.core.issue_width,
            m.core.rob_size,
            m.core.max_outstanding_loads,
            m.core.max_outstanding_stores,
            m.core.max_outstanding_l1d_misses,
            m.core.branch_miss_penalty
        ));
        for (name, c) in [("l1i", &m.l1i), ("l1d", &m.l1d), ("l2", &m.l2)] {
            out.push_str(&format!("\n[machine.{name}]\n"));
            out.push_str(&render_capacity("capacity", c.capacity_bytes));
            out.push_str(&format!(
                "associativity = {}\nlatency = {}\n",
                c.associativity, c.access_latency
            ));
        }
        out.push_str(&format!("\n[machine.llc]\nslices = {}\n", m.llc.num_slices));
        out.push_str(&render_capacity(
            "slice_capacity",
            m.llc.slice.capacity_bytes,
        ));
        out.push_str(&format!(
            "associativity = {}\nlatency = {}\n",
            m.llc.slice.associativity, m.llc.slice.access_latency
        ));
        out.push_str(&format!(
            "\n[machine.noc]\nmesh_cols = {}\nmesh_rows = {}\nhop_latency = {}\n\
             cross_section_links = {}\nlink_bandwidth_gbps = {:?}\n",
            m.noc.mesh_cols,
            m.noc.mesh_rows,
            m.noc.hop_latency,
            m.noc.cross_section_links,
            m.noc.link_bandwidth_gbps
        ));
        out.push_str(&format!(
            "\n[machine.dram]\ncontrollers = {}\ncontroller_bandwidth_gbps = {:?}\n\
             base_latency = {}\n",
            m.dram.num_controllers, m.dram.controller_bandwidth_gbps, m.dram.base_latency
        ));
        out.push_str(&format!(
            "\n[machine.prefetch]\nenabled = {}\ndegree = {}\nstreams = {}\nmax_stride = {}\n",
            m.prefetch.enabled, m.prefetch.degree, m.prefetch.streams, m.prefetch.max_stride
        ));
        out.push_str(&format!(
            "\n[workloads]\nmixes = [{}]\nseed = {}\nbudget = {}\n",
            self.workloads
                .mixes
                .iter()
                .map(|mix| {
                    format!(
                        "[{}]",
                        mix.iter()
                            .map(|n| format!("\"{n}\""))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
                .collect::<Vec<_>>()
                .join(", "),
            self.workloads.seed,
            self.workloads.budget
        ));
        if !self.grid.is_empty() {
            out.push_str("\n[grid]\n");
            for (axis, values) in &self.grid.axes {
                let rendered: Vec<String> = values
                    .iter()
                    .map(|v| match v {
                        AxisValue::Int(n) => n.to_string(),
                        AxisValue::Mesh(c, r) => format!("\"{c}x{r}\""),
                    })
                    .collect();
                out.push_str(&format!("{axis} = [{}]\n", rendered.join(", ")));
            }
        }
        out
    }

    /// Render the fully resolved spec as canonical (sorted-key) JSON.
    pub fn render_json(&self) -> String {
        let mut root = Map::new();
        let toml_round = self.render_toml();
        // The TOML renderer already emits the resolved tree; re-parse it
        // so both renderers agree on shape by construction.
        #[allow(clippy::unwrap_used)]
        // sms-lint: allow(E1): render_toml output is parseable by construction (round-trip tested)
        let v = crate::toml::parse(&toml_round).unwrap();
        if let Value::Object(m) = v {
            root = m;
        }
        let mut s = serde_json::to_string_pretty(&Value::Object(root)).unwrap_or_default();
        s.push('\n');
        s
    }
}

/// Render a byte capacity as `<key>_kib` when whole, `<key>_bytes`
/// otherwise (so odd geometries still round-trip).
fn render_capacity(key: &str, bytes: u64) -> String {
    if bytes.is_multiple_of(1024) {
        format!("{key}_kib = {}\n", bytes / 1024)
    } else {
        format!("{key}_bytes = {bytes}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = r#"
schema = 1
name = "smoke"

[machine]
cores = 2

[machine.core]
rob_size = 64

[machine.llc]
slice_capacity_kib = 512

[workloads]
mixes = [["leela_r", "lbm_r"], "mcf_r"]
seed = 7
budget = 50000

[grid]
rob_size = [16, 128]
llc_slice_kib = [256, 512]
"#;

    #[test]
    fn minimal_spec_defaults_to_target_config() {
        let s = MachineSpec::from_toml("schema = 1\n").unwrap();
        assert_eq!(s.machine, target_config(32));
        assert_eq!(s.name, "machine");
        assert_eq!(s.workloads.seed, DEFAULT_SEED);
        assert_eq!(s.workloads.budget, DEFAULT_BUDGET);
        assert!(s.grid.is_empty());
    }

    #[test]
    fn overrides_apply_on_top_of_defaults() {
        let s = MachineSpec::from_toml(SMOKE).unwrap();
        assert_eq!(s.name, "smoke");
        assert_eq!(s.machine.num_cores, 2);
        assert_eq!(s.machine.core.rob_size, 64);
        assert_eq!(s.machine.llc.slice.capacity_bytes, 512 * 1024);
        // Unspecified fields follow target_config(2).
        assert_eq!(s.machine.llc.num_slices, 2);
        assert_eq!(s.machine.l1d.capacity_bytes, 32 * 1024);
        // A bare string mix is homogeneous shorthand.
        assert_eq!(
            s.workloads.mixes,
            vec![
                vec!["leela_r".to_owned(), "lbm_r".to_owned()],
                vec!["mcf_r".to_owned()]
            ]
        );
        assert_eq!(s.grid.num_points(), 4);
    }

    #[test]
    fn render_toml_round_trips() {
        let s = MachineSpec::from_toml(SMOKE).unwrap();
        let text = s.render_toml();
        let back = MachineSpec::from_toml(&text).unwrap();
        assert_eq!(s, back, "render_toml must round-trip:\n{text}");
    }

    #[test]
    fn json_form_decodes_identically() {
        let s = MachineSpec::from_toml(SMOKE).unwrap();
        let back = MachineSpec::from_json(&s.render_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn field_level_errors_name_their_paths() {
        let err = MachineSpec::from_toml(
            "schema = 1\n[machine]\ncores = 3\n[machine.llc]\nslice_capacity_kib = \"big\"\n\
             [workloads]\nmixes = [[\"nope_r\"]]\n[grid]\nwarp_factor = [1]\n",
        )
        .unwrap_err();
        let SpecLoadError::Invalid(errors) = err else {
            panic!("expected Invalid, got {err:?}");
        };
        let text = errors
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("machine.cores"), "{text}");
        assert!(text.contains("machine.llc.slice_capacity_kib"), "{text}");
        assert!(text.contains("workloads.mixes[0]"), "{text}");
        assert!(text.contains("nope_r"), "{text}");
        assert!(text.contains("grid.warp_factor"), "{text}");
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = MachineSpec::from_toml("schema = 1\n[machine]\ncoars = 8\n").unwrap_err();
        assert!(err.to_string().contains("machine.coars"), "{err}");
        assert!(err.to_string().contains("unknown field"), "{err}");
    }

    #[test]
    fn missing_and_wrong_schema_rejected() {
        let err = MachineSpec::from_toml("name = \"x\"\n").unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
        let err = MachineSpec::from_toml("schema = 99\n").unwrap_err();
        assert!(err.to_string().contains("unsupported schema"), "{err}");
    }

    #[test]
    fn invalid_machine_geometry_reported() {
        // 3000-byte L2 capacity: not a valid cache geometry.
        let err = MachineSpec::from_toml("schema = 1\n[machine.l2]\ncapacity_bytes = 3000\n")
            .unwrap_err();
        assert!(err.to_string().contains("machine:"), "{err}");
        assert!(err.to_string().contains("l2"), "{err}");
    }

    #[test]
    fn load_dispatches_on_extension() {
        let dir = std::env::temp_dir().join(format!("sms-spec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = MachineSpec::from_toml(SMOKE).unwrap();
        let tpath = dir.join("m.toml");
        let jpath = dir.join("m.json");
        std::fs::write(&tpath, s.render_toml()).unwrap();
        std::fs::write(&jpath, s.render_json()).unwrap();
        assert_eq!(MachineSpec::load(&tpath).unwrap(), s);
        assert_eq!(MachineSpec::load(&jpath).unwrap(), s);
        assert!(matches!(
            MachineSpec::load(&dir.join("absent.toml")),
            Err(SpecLoadError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
