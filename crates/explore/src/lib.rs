//! Design-space exploration for the scale-model simulator.
//!
//! The paper's argument is that scale-model simulation makes design
//! studies cheap; this crate is the harness that runs them. It layers
//! four pieces on the existing stack:
//!
//! * [`machine`] — versioned, validated machine specs ([`MachineSpec`])
//!   loadable from a TOML subset ([`toml`]) or JSON, with field-level
//!   error paths and a round-trippable renderer.
//! * [`grid`] — declarative sweep grids expanded into validated design
//!   points with deterministic keys.
//! * [`run`] — the explore driver: every point goes through the
//!   fault-tolerant `sms-bench` executor (cache, fsync'd journal,
//!   quarantine, resume), with optional ML-guided pruning backed by an
//!   `sms-ml` random forest and a recorded holdout audit.
//! * [`pareto`] — NaN-safe Pareto-front extraction over throughput vs
//!   LLC capacity vs core count, plus a text-table renderer.
//!
//! Determinism contract: given the same spec and pruning knobs, an
//! explore that is killed and resumed produces a manifest bit-identical
//! to an uninterrupted run — the manifest records no wall-clock data and
//! no run-vs-cached distinction, and every pruning decision derives from
//! a fixed seed plus deterministic simulation results.

#![forbid(unsafe_code)]

pub mod grid;
pub mod machine;
pub mod pareto;
pub mod run;
pub mod toml;

pub use grid::{features, AxisValue, DesignPoint, GridSpec, AXES, NUM_FEATURES};
pub use machine::{MachineSpec, SpecError, SpecLoadError, WorkloadsDecl, MACHINE_SCHEMA_VERSION};
pub use pareto::{dominates, pareto_front, render_table, PointOutcome};
pub use run::{
    run_explore, ExploreError, ExploreOutcome, ExploreParams, HoldoutAudit, PruneParams,
    PruneReport, ResolvedExplore, EXPLORE_SCHEMA_VERSION,
};
pub use toml::TomlError;
