//! Pareto-front extraction over explored design points.
//!
//! The objectives follow the paper's design-study framing: maximize
//! throughput (aggregate IPC averaged over the declared mixes) while
//! minimizing LLC capacity and core count — the two cost axes a scale
//! model lets you trade early. All float comparisons go through
//! `total_cmp`, so NaN throughput (a quarantined or failed point) sorts
//! below every real value instead of poisoning the front.

use serde::{Deserialize, Serialize};

/// One evaluated design point projected onto the Pareto objectives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointOutcome {
    /// The design point's deterministic key.
    pub key: String,
    /// Core count (cost axis, minimized).
    pub cores: u32,
    /// Total LLC capacity in bytes (cost axis, minimized).
    pub llc_bytes: u64,
    /// Aggregate IPC averaged over the workload mixes (value axis,
    /// maximized).
    pub throughput: f64,
}

/// Throughput with NaN demoted below every real value. `total_cmp`
/// alone would sort positive NaN above +inf, letting a failed point
/// dominate real ones.
fn effective_throughput(x: f64) -> f64 {
    if x.is_nan() {
        f64::NEG_INFINITY
    } else {
        x
    }
}

/// True when `a` Pareto-dominates `b`: no worse on every objective and
/// strictly better on at least one.
pub fn dominates(a: &PointOutcome, b: &PointOutcome) -> bool {
    let thr = effective_throughput(a.throughput).total_cmp(&effective_throughput(b.throughput));
    let no_worse = thr.is_ge() && a.llc_bytes <= b.llc_bytes && a.cores <= b.cores;
    let better = thr.is_gt() || a.llc_bytes < b.llc_bytes || a.cores < b.cores;
    no_worse && better
}

/// Extract the Pareto front: every point no other point dominates,
/// sorted by throughput (descending), then LLC bytes, cores, and key
/// (ascending) so the rendering is canonical.
pub fn pareto_front(points: &[PointOutcome]) -> Vec<PointOutcome> {
    let mut front: Vec<PointOutcome> = points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p)))
        .cloned()
        .collect();
    front.sort_by(|a, b| {
        effective_throughput(b.throughput)
            .total_cmp(&effective_throughput(a.throughput))
            .then(a.llc_bytes.cmp(&b.llc_bytes))
            .then(a.cores.cmp(&b.cores))
            .then(a.key.cmp(&b.key))
    });
    front
}

/// Render a front as an aligned text table.
pub fn render_table(front: &[PointOutcome]) -> String {
    let mut rows: Vec<[String; 4]> = vec![[
        "point".to_owned(),
        "throughput".to_owned(),
        "llc_mib".to_owned(),
        "cores".to_owned(),
    ]];
    for p in front {
        rows.push([
            p.key.clone(),
            format!("{:.4}", p.throughput),
            format!("{:.2}", p.llc_bytes as f64 / (1024.0 * 1024.0)),
            p.cores.to_string(),
        ]);
    }
    let mut widths = [0usize; 4];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let line = format!(
            "{:<w0$}  {:>w1$}  {:>w2$}  {:>w3$}",
            row[0],
            row[1],
            row[2],
            row[3],
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3]
        );
        out.push_str(line.trim_end());
        out.push('\n');
        if i == 0 {
            let dash_len = line.trim_end().len();
            out.push_str(&"-".repeat(dash_len));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(key: &str, cores: u32, llc: u64, thr: f64) -> PointOutcome {
        PointOutcome {
            key: key.to_owned(),
            cores,
            llc_bytes: llc,
            throughput: thr,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = p("a", 2, 100, 2.0);
        let same = p("b", 2, 100, 2.0);
        assert!(!dominates(&a, &same));
        assert!(dominates(&a, &p("c", 2, 100, 1.0)));
        assert!(dominates(&a, &p("d", 4, 100, 2.0)));
        assert!(!dominates(&a, &p("e", 1, 100, 1.0))); // cheaper, slower: trade-off
    }

    #[test]
    fn front_keeps_tradeoffs_drops_dominated() {
        let pts = vec![
            p("big", 4, 400, 4.0),
            p("small", 1, 100, 1.0),
            p("bad", 4, 400, 3.0),   // dominated by big
            p("worse", 2, 100, 0.5), // dominated by small
        ];
        let front = pareto_front(&pts);
        let keys: Vec<&str> = front.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(keys, vec!["big", "small"]);
    }

    #[test]
    fn nan_throughput_never_makes_the_front() {
        let pts = vec![p("ok", 2, 100, 1.0), p("nan", 2, 100, f64::NAN)];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].key, "ok");
    }

    #[test]
    fn all_nan_front_is_stable_not_panicking() {
        let pts = vec![p("a", 2, 100, f64::NAN), p("b", 1, 100, f64::NAN)];
        let front = pareto_front(&pts);
        // NaN == NaN under total_cmp, so `b` (cheaper) dominates `a`.
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].key, "b");
    }

    #[test]
    fn table_renders_header_and_rows() {
        let t = render_table(&[p("rob_size=128", 2, 2 * 1024 * 1024, 1.2345)]);
        assert!(t.contains("point"), "{t}");
        assert!(t.contains("rob_size=128"), "{t}");
        assert!(t.contains("1.2345") || t.contains("1.2345"), "{t}");
        assert!(t.contains("2.00"), "{t}");
    }
}
