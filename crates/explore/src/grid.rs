//! Declarative sweep grids over machine parameters.
//!
//! A spec's `[grid]` section lists values per axis (explicit lists or
//! range strings like `"16..=128:*2"`); [`GridSpec::expand`] takes the
//! cartesian product, applies each combination to the base machine, and
//! returns validated [`DesignPoint`]s with deterministic keys. Keys are
//! the sorted `axis=value` pairs joined with commas, so the same spec
//! always names the same points — which is what makes explore runs
//! cacheable and resumable.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use serde_json::Value;
use sms_core::scaling::{cross_section_links, mesh_dims};
use sms_sim::config::SystemConfig;

use crate::machine::SpecError;

/// The axes a grid may sweep, in the canonical (sorted) order used for
/// point keys.
pub const AXES: &[&str] = &[
    "cores",
    "dram_controllers",
    "issue_width",
    "l2_kib",
    "llc_assoc",
    "llc_slice_kib",
    "mesh",
    "rob_size",
];

/// Hard cap on expanded grid size; a bigger product is almost certainly
/// a spec typo and would swamp the executor.
pub const MAX_POINTS: usize = 4096;

/// One value on a grid axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AxisValue {
    /// A plain integer (core count, ROB entries, KiB, ...).
    Int(u64),
    /// A NoC mesh shape, written `"COLSxROWS"` in specs.
    Mesh(u32, u32),
}

impl std::fmt::Display for AxisValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Int(n) => write!(f, "{n}"),
            Self::Mesh(c, r) => write!(f, "{c}x{r}"),
        }
    }
}

/// A declared sweep grid: values per axis, keyed by axis name.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GridSpec {
    /// Axis name → sorted, deduplicated values.
    pub axes: BTreeMap<String, Vec<AxisValue>>,
}

/// One concrete design point: a key, the axis assignment that produced
/// it, and the fully applied machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Deterministic identifier: sorted `axis=value` pairs joined by `,`.
    pub key: String,
    /// The axis assignment for this point.
    pub values: BTreeMap<String, AxisValue>,
    /// The base machine with this point's overrides applied.
    pub config: SystemConfig,
}

/// Parse one axis declaration (a list of values, or a range string) into
/// sorted, deduplicated axis values.
///
/// Range strings have the form `"LO..=HI:*K"` (geometric) or
/// `"LO..=HI:+K"` (arithmetic); the `mesh` axis takes `"COLSxROWS"`
/// strings and no ranges.
///
/// # Errors
///
/// Returns a human-readable message (the caller prefixes the axis path).
pub fn parse_axis(axis: &str, value: &Value) -> Result<Vec<AxisValue>, String> {
    let mut out: Vec<AxisValue> = match value {
        Value::String(s) => parse_range(axis, s)?,
        Value::Array(items) => {
            let mut vals = Vec::new();
            for item in items {
                vals.push(parse_scalar(axis, item)?);
            }
            vals
        }
        other => return Err(format!("expected a list or range string, got {other}")),
    };
    if out.is_empty() {
        return Err("axis must list at least one value".to_owned());
    }
    out.sort();
    out.dedup();
    for v in &out {
        check_axis_value(axis, *v)?;
    }
    Ok(out)
}

fn parse_scalar(axis: &str, item: &Value) -> Result<AxisValue, String> {
    if axis == "mesh" {
        let Value::String(s) = item else {
            return Err(format!("mesh values are \"COLSxROWS\" strings, got {item}"));
        };
        let (c, r) = s
            .split_once('x')
            .ok_or_else(|| format!("cannot parse mesh shape `{s}` (expected \"COLSxROWS\")"))?;
        let cols: u32 = c
            .parse()
            .map_err(|_| format!("cannot parse mesh columns in `{s}`"))?;
        let rows: u32 = r
            .parse()
            .map_err(|_| format!("cannot parse mesh rows in `{s}`"))?;
        Ok(AxisValue::Mesh(cols, rows))
    } else {
        item.as_u64()
            .map(AxisValue::Int)
            .ok_or_else(|| format!("expected a non-negative integer, got {item}"))
    }
}

fn parse_range(axis: &str, s: &str) -> Result<Vec<AxisValue>, String> {
    if axis == "mesh" {
        return Err("the mesh axis takes a list of \"COLSxROWS\" strings, not a range".to_owned());
    }
    let (lo, rest) = s.split_once("..=").ok_or_else(|| {
        format!("cannot parse range `{s}` (expected \"LO..=HI:*K\" or \"LO..=HI:+K\")")
    })?;
    let (hi, step) = rest
        .split_once(':')
        .ok_or_else(|| format!("range `{s}` is missing its `:*K` or `:+K` step"))?;
    let lo: u64 = lo
        .trim()
        .parse()
        .map_err(|_| format!("bad range start in `{s}`"))?;
    let hi: u64 = hi
        .trim()
        .parse()
        .map_err(|_| format!("bad range end in `{s}`"))?;
    let step = step.trim();
    let (geometric, k) = if let Some(k) = step.strip_prefix('*') {
        (true, k)
    } else if let Some(k) = step.strip_prefix('+') {
        (false, k)
    } else {
        return Err(format!("range step `{step}` must start with `*` or `+`"));
    };
    let k: u64 = k.parse().map_err(|_| format!("bad range step in `{s}`"))?;
    if lo == 0 || hi < lo {
        return Err(format!("range `{s}` must satisfy 1 <= LO <= HI"));
    }
    if (geometric && k < 2) || (!geometric && k == 0) {
        return Err(format!(
            "range step in `{s}` must be >= {}",
            if geometric { 2 } else { 1 }
        ));
    }
    let mut out = Vec::new();
    let mut v = lo;
    while v <= hi {
        out.push(AxisValue::Int(v));
        let next = if geometric {
            v.saturating_mul(k)
        } else {
            v.saturating_add(k)
        };
        if next == v {
            break;
        }
        v = next;
    }
    Ok(out)
}

fn check_axis_value(axis: &str, v: AxisValue) -> Result<(), String> {
    match (axis, v) {
        ("mesh", AxisValue::Mesh(c, r)) => {
            if c == 0 || r == 0 {
                return Err(format!("mesh shape {v} has a zero dimension"));
            }
        }
        ("mesh", AxisValue::Int(_)) | (_, AxisValue::Mesh(..)) => {
            return Err(format!("value {v} does not fit axis `{axis}`"));
        }
        ("cores", AxisValue::Int(n)) => {
            if n == 0 || n > 256 || !n.is_power_of_two() {
                return Err(format!(
                    "cores value {n} must be a power of two in [1, 256]"
                ));
            }
        }
        (_, AxisValue::Int(n)) => {
            if n == 0 {
                return Err(format!("axis `{axis}` value must be non-zero"));
            }
            if u32::try_from(n).is_err() {
                return Err(format!("axis `{axis}` value {n} does not fit in 32 bits"));
            }
        }
    }
    Ok(())
}

/// Apply one axis value to a configuration. The `cores` axis rebuilds
/// dependent geometry (LLC slice count, mesh shape, per-core NoC and
/// DRAM bandwidth scaled from the base machine); `mesh` preserves total
/// bisection bandwidth across the new cross-section; `dram_controllers`
/// keeps per-controller bandwidth.
fn apply_axis(cfg: &mut SystemConfig, base: &SystemConfig, axis: &str, v: AxisValue) {
    match (axis, v) {
        ("cores", AxisValue::Int(n)) => {
            let c = n as u32;
            cfg.num_cores = c;
            cfg.llc.num_slices = c;
            let (cols, rows) = mesh_dims(c);
            cfg.noc.mesh_cols = cols;
            cfg.noc.mesh_rows = rows;
            let csls = cross_section_links(cols, rows);
            cfg.noc.cross_section_links = csls;
            // Preserve the base machine's per-core bisection bandwidth.
            let base_csls = base.noc.cross_section_links.max(1);
            let per_core_bisection = base.noc.link_bandwidth_gbps * f64::from(base_csls)
                / f64::from(base.num_cores.max(1));
            cfg.noc.link_bandwidth_gbps =
                per_core_bisection * f64::from(c) / f64::from(csls.max(1));
            // Preserve per-core DRAM bandwidth, scaling controller count
            // with integer math so keys stay exact.
            let base_mcs = base.dram.num_controllers.max(1);
            let mcs = ((u64::from(base_mcs) * u64::from(c)) / u64::from(base.num_cores.max(1)))
                .max(1) as u32;
            let total_bw = base.dram.controller_bandwidth_gbps * f64::from(base_mcs)
                / f64::from(base.num_cores.max(1))
                * f64::from(c);
            cfg.dram.num_controllers = mcs;
            cfg.dram.controller_bandwidth_gbps = total_bw / f64::from(mcs);
        }
        ("rob_size", AxisValue::Int(n)) => cfg.core.rob_size = n as u32,
        ("issue_width", AxisValue::Int(n)) => cfg.core.issue_width = n as u32,
        ("l2_kib", AxisValue::Int(n)) => cfg.l2.capacity_bytes = n * 1024,
        ("llc_slice_kib", AxisValue::Int(n)) => cfg.llc.slice.capacity_bytes = n * 1024,
        ("llc_assoc", AxisValue::Int(n)) => cfg.llc.slice.associativity = n as u32,
        ("dram_controllers", AxisValue::Int(n)) => cfg.dram.num_controllers = n as u32,
        ("mesh", AxisValue::Mesh(cols, rows)) => {
            let old_csls = cfg.noc.cross_section_links.max(1);
            let bisection = cfg.noc.link_bandwidth_gbps * f64::from(old_csls);
            cfg.noc.mesh_cols = cols;
            cfg.noc.mesh_rows = rows;
            let csls = cross_section_links(cols, rows);
            cfg.noc.cross_section_links = csls;
            cfg.noc.link_bandwidth_gbps = bisection / f64::from(csls.max(1));
        }
        // parse_axis/check_axis_value reject every other combination.
        _ => {}
    }
}

impl GridSpec {
    /// True when no axis is declared.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Number of design points the grid expands to (product of axis
    /// lengths; 0 for an empty grid).
    pub fn num_points(&self) -> usize {
        if self.axes.is_empty() {
            0
        } else {
            self.axes
                .values()
                .map(Vec::len)
                .fold(1usize, usize::saturating_mul)
        }
    }

    /// Expand the grid against `base` into validated design points,
    /// sorted by key.
    ///
    /// # Errors
    ///
    /// Returns one [`SpecError`] per invalid point (its path names the
    /// point key) or a single error when the grid exceeds [`MAX_POINTS`].
    pub fn expand(&self, base: &SystemConfig) -> Result<Vec<DesignPoint>, Vec<SpecError>> {
        let n = self.num_points();
        if n > MAX_POINTS {
            return Err(vec![SpecError {
                path: "grid".to_owned(),
                message: format!("grid expands to {n} points (max {MAX_POINTS})"),
            }]);
        }
        let axes: Vec<(&String, &Vec<AxisValue>)> = self.axes.iter().collect();
        let mut points = Vec::with_capacity(n);
        let mut errors = Vec::new();
        let mut idx = vec![0usize; axes.len()];
        loop {
            let values: BTreeMap<String, AxisValue> = axes
                .iter()
                .zip(&idx)
                .map(|((name, vals), &i)| ((*name).clone(), vals[i]))
                .collect();
            let key = values
                .iter()
                .map(|(a, v)| format!("{a}={v}"))
                .collect::<Vec<_>>()
                .join(",");
            let mut config = base.clone();
            // BTreeMap order applies `cores` before `dram_controllers`
            // and `mesh`, so explicit axes override the geometry the
            // cores rebuild derives.
            for (axis, v) in &values {
                apply_axis(&mut config, base, axis, *v);
            }
            match config.validate() {
                Ok(()) => points.push(DesignPoint {
                    key,
                    values,
                    config,
                }),
                Err(e) => errors.push(SpecError {
                    path: format!("grid[{key}]"),
                    message: e.to_string(),
                }),
            }
            // Odometer increment over the axis indices.
            let mut carry = true;
            for (i, (_, vals)) in axes.iter().enumerate().rev() {
                if !carry {
                    break;
                }
                idx[i] += 1;
                if idx[i] < vals.len() {
                    carry = false;
                } else {
                    idx[i] = 0;
                }
            }
            if carry || axes.is_empty() {
                break;
            }
        }
        if errors.is_empty() {
            points.sort_by(|a, b| a.key.cmp(&b.key));
            Ok(points)
        } else {
            Err(errors)
        }
    }
}

/// Encode a design-point configuration as the feature vector the pruning
/// forest trains on. Capacities and core count enter as log2 so the
/// forest splits on doublings; bandwidths enter as totals.
pub fn features(cfg: &SystemConfig) -> Vec<f64> {
    let log2 = |n: u64| (n.max(1) as f64).log2();
    vec![
        log2(u64::from(cfg.num_cores)),
        f64::from(cfg.core.rob_size),
        f64::from(cfg.core.issue_width),
        log2(cfg.l2.capacity_bytes),
        log2(cfg.llc.slice.capacity_bytes),
        f64::from(cfg.llc.slice.associativity),
        log2(
            cfg.llc
                .slice
                .capacity_bytes
                .saturating_mul(u64::from(cfg.llc.num_slices)),
        ),
        f64::from(cfg.noc.mesh_cols),
        f64::from(cfg.noc.mesh_rows),
        f64::from(cfg.dram.num_controllers),
        cfg.dram.controller_bandwidth_gbps * f64::from(cfg.dram.num_controllers),
        cfg.noc.link_bandwidth_gbps * f64::from(cfg.noc.cross_section_links),
    ]
}

/// Number of entries [`features`] produces.
pub const NUM_FEATURES: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use sms_core::scaling::target_config;

    fn grid(pairs: &[(&str, Value)]) -> GridSpec {
        let mut axes = BTreeMap::new();
        for (axis, v) in pairs {
            axes.insert((*axis).to_owned(), parse_axis(axis, v).unwrap());
        }
        GridSpec { axes }
    }

    #[test]
    fn ranges_expand_geometric_and_arithmetic() {
        assert_eq!(
            parse_axis("rob_size", &json!("16..=128:*2")).unwrap(),
            vec![
                AxisValue::Int(16),
                AxisValue::Int(32),
                AxisValue::Int(64),
                AxisValue::Int(128)
            ]
        );
        assert_eq!(
            parse_axis("issue_width", &json!("1..=4:+1")).unwrap(),
            (1..=4).map(AxisValue::Int).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lists_sort_and_dedup() {
        assert_eq!(
            parse_axis("l2_kib", &json!([512, 128, 512])).unwrap(),
            vec![AxisValue::Int(128), AxisValue::Int(512)]
        );
    }

    #[test]
    fn bad_axis_values_rejected() {
        assert!(parse_axis("cores", &json!([3])).is_err());
        assert!(parse_axis("cores", &json!([512])).is_err());
        assert!(parse_axis("rob_size", &json!([0])).is_err());
        assert!(parse_axis("rob_size", &json!([])).is_err());
        assert!(parse_axis("rob_size", &json!("16..=8:*2")).is_err());
        assert!(parse_axis("rob_size", &json!("16..=128:*1")).is_err());
        assert!(parse_axis("mesh", &json!([8])).is_err());
        assert!(parse_axis("mesh", &json!(["8y4"])).is_err());
        assert!(parse_axis("mesh", &json!("1..=4:+1")).is_err());
    }

    #[test]
    fn mesh_values_parse() {
        assert_eq!(
            parse_axis("mesh", &json!(["8x4", "4x4"])).unwrap(),
            vec![AxisValue::Mesh(4, 4), AxisValue::Mesh(8, 4)]
        );
    }

    #[test]
    fn expansion_is_sorted_cartesian_product_with_stable_keys() {
        let g = grid(&[
            ("rob_size", json!([128, 16])),
            ("llc_slice_kib", json!([256, 1024])),
        ]);
        assert_eq!(g.num_points(), 4);
        let points = g.expand(&target_config(2)).unwrap();
        let keys: Vec<&str> = points.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "llc_slice_kib=1024,rob_size=128",
                "llc_slice_kib=1024,rob_size=16",
                "llc_slice_kib=256,rob_size=128",
                "llc_slice_kib=256,rob_size=16",
            ]
        );
        let p = &points[3];
        assert_eq!(p.config.core.rob_size, 16);
        assert_eq!(p.config.llc.slice.capacity_bytes, 256 * 1024);
        // Untouched fields come from the base machine.
        assert_eq!(p.config.num_cores, 2);
    }

    #[test]
    fn cores_axis_rebuilds_geometry() {
        let base = target_config(32);
        let g = grid(&[("cores", json!([2, 32]))]);
        let points = g.expand(&base).unwrap();
        let p2 = &points[0].config;
        assert_eq!(points[0].key, "cores=2");
        assert_eq!(p2.num_cores, 2);
        assert_eq!(p2.llc.num_slices, 2);
        assert_eq!((p2.noc.mesh_cols, p2.noc.mesh_rows), mesh_dims(2));
        // Scaling down to 2 cores and back to 32 preserves the base.
        assert_eq!(points[1].config, base);
        // Per-core DRAM bandwidth is preserved.
        let per_core = |c: &SystemConfig| {
            c.dram.controller_bandwidth_gbps * f64::from(c.dram.num_controllers)
                / f64::from(c.num_cores)
        };
        assert!((per_core(p2) - per_core(&base)).abs() < 1e-9);
    }

    #[test]
    fn mesh_axis_preserves_bisection_bandwidth() {
        let base = target_config(32);
        let g = grid(&[("mesh", json!(["4x8", "16x2"]))]);
        let points = g.expand(&base).unwrap();
        for p in &points {
            let bisection =
                p.config.noc.link_bandwidth_gbps * f64::from(p.config.noc.cross_section_links);
            let base_bisection =
                base.noc.link_bandwidth_gbps * f64::from(base.noc.cross_section_links);
            assert!((bisection - base_bisection).abs() < 1e-9, "{}", p.key);
        }
    }

    #[test]
    fn invalid_points_report_their_keys() {
        // associativity 3 with a 256 KiB slice: sets = 256KiB/64/3 not a
        // power of two -> invalid geometry at that point.
        let g = grid(&[("llc_assoc", json!([3, 8]))]);
        let errs = g.expand(&target_config(2)).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].path.contains("llc_assoc=3"), "{}", errs[0]);
    }

    #[test]
    fn oversized_grid_rejected() {
        let g = grid(&[
            ("rob_size", json!("1..=5000:+1")),
            ("issue_width", json!([1, 2])),
        ]);
        let errs = g.expand(&target_config(2)).unwrap_err();
        assert!(errs[0].message.contains("max"), "{}", errs[0]);
    }

    #[test]
    fn features_shape_and_determinism() {
        let f = features(&target_config(32));
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(f, features(&target_config(32)));
        assert_eq!(f[0], 5.0); // log2(32)
    }
}
