//! The explore driver: grid → executor → Pareto front, with ML pruning.
//!
//! `run_explore` drives every design point of a [`MachineSpec`] grid
//! through the fault-tolerant `sms-bench` executor, so explore inherits
//! the result cache, fsync'd journal, retry/quarantine policy, and
//! watchdog — kill an explore and `sms resume` finishes it with a
//! bit-identical manifest.
//!
//! Pruning (on by default, `--no-prune` to disable) evaluates a seeded
//! bootstrap sample of the grid, trains an `sms-ml` random forest on
//! (design-point features → observed throughput), and skips points whose
//! *predicted* throughput is beaten with margin by an already-observed
//! point that is no more expensive on either cost axis. Every skip is
//! recorded with its prediction and the dominating point, and a holdout
//! slice of the bootstrap is audited (predicted vs actual) in the
//! manifest, so pruning is deterministic and checkable after the fact.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use serde_json::Value;
use sms_bench::{
    execute_plan, execute_plan_with_profiles, profiles_dir, records_to_profile, CachedSim,
    JournalLine, PhaseStatRecord, PlanHeader, PlanJournal, ProfileFile, JOURNAL_SCHEMA_VERSION,
};
use sms_ml::{Dataset, ForestParams, Matrix, RandomForest, Regressor, TreeParams};
use sms_sim::system::RunSpec;
use sms_workloads::mix::MixSpec;

use crate::grid::{features, DesignPoint};
use crate::machine::{MachineSpec, SpecError};
use crate::pareto::{pareto_front, render_table, PointOutcome};

/// Explore manifest format version; bump when manifest fields change.
pub const EXPLORE_SCHEMA_VERSION: u32 = 1;

/// ML-pruning knobs. Defaults: enabled, seed 43, half the grid
/// bootstrapped, 10% dominance margin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruneParams {
    /// Whether pruning runs at all (`--no-prune` clears it).
    pub enabled: bool,
    /// Seed for the bootstrap shuffle and the forest.
    pub seed: u64,
    /// Fraction of the grid evaluated before training (clamped so at
    /// least two and at most all-but-one points are bootstrapped).
    pub bootstrap_fraction: f64,
    /// Safety margin: a point is pruned only when an observed, no-more-
    /// expensive point beats its *prediction* by this relative margin.
    pub margin: f64,
}

impl Default for PruneParams {
    fn default() -> Self {
        Self {
            enabled: true,
            seed: 43,
            bootstrap_fraction: 0.5,
            margin: 0.10,
        }
    }
}

/// Parameters of one explore invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreParams {
    /// Label for the journal, manifests, and cache bookkeeping.
    pub label: String,
    /// Executor worker threads.
    pub threads: usize,
    /// Per-simulation window threads.
    pub sim_threads: u32,
    /// Attach a phase profiler to every simulated run and attribute the
    /// merged profile to each design point in the manifest (`--profile`).
    /// Off by default: profiles hold host timings, so a profiled explore
    /// manifest is *excluded* from the bit-identical-rerun guarantee.
    pub profile: bool,
}

/// Everything `sms resume` needs to replay an explore exactly: the fully
/// resolved spec and the pruning knobs. Serialized (canonical JSON) into
/// the [`PlanHeader`]'s `explore` field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedExplore {
    /// The resolved machine spec (machine + workloads + grid).
    pub spec: MachineSpec,
    /// The pruning knobs in effect.
    pub prune: PruneParams,
}

/// Why an explore failed.
#[derive(Debug)]
pub enum ExploreError {
    /// The spec's grid or workloads are unusable for exploration.
    Spec(Vec<SpecError>),
    /// An injected or real planning fault.
    Fault(String),
    /// Filesystem trouble writing the manifest.
    Io(std::io::Error),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Spec(errors) => {
                writeln!(f, "cannot explore this spec:")?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "  {e}")?;
                }
                Ok(())
            }
            Self::Fault(msg) => write!(f, "explore planning failed: {msg}"),
            Self::Io(e) => write!(f, "cannot write explore manifest: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<std::io::Error> for ExploreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One design point's record in the explore manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointRecord {
    /// The point's deterministic key.
    pub key: String,
    /// `evaluated`, `pruned`, or `quarantined`. (The run-vs-cached
    /// distinction is deliberately absent: it differs between a resumed
    /// and an uninterrupted explore, and the manifest must not.)
    pub status: String,
    /// Core count of the point.
    pub cores: u32,
    /// Total LLC bytes of the point.
    pub llc_bytes: u64,
    /// Observed throughput (absent for pruned points; quarantined points
    /// record what partial data produced, usually nothing).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub throughput: Option<f64>,
    /// Forest-predicted throughput (pruned points, and bootstrap holdout
    /// points for the audit).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub predicted: Option<f64>,
    /// Key of the observed point whose throughput beat this point's
    /// prediction with margin (pruned points only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dominated_by: Option<String>,
    /// Merged phase profile across the point's mixes (present only when
    /// the explore ran with `--profile`; host timings, so not covered by
    /// the bit-identical-rerun guarantee).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profile: Option<Vec<PhaseStatRecord>>,
}

/// One holdout point's predicted-vs-actual audit line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoldoutAudit {
    /// The audited point's key.
    pub key: String,
    /// Forest prediction for the point.
    pub predicted: f64,
    /// Observed throughput of the point.
    pub actual: f64,
    /// `|predicted - actual| / max(|actual|, eps)`.
    pub abs_rel_error: f64,
}

/// The pruning section of the explore manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruneReport {
    /// Whether pruning was requested.
    pub enabled: bool,
    /// Seed used for the shuffle and forest.
    pub seed: u64,
    /// Requested bootstrap fraction.
    pub bootstrap_fraction: f64,
    /// Dominance margin.
    pub margin: f64,
    /// Keys evaluated in the bootstrap sample, in evaluation order.
    pub bootstrap: Vec<String>,
    /// Keys skipped by the forest.
    pub pruned: Vec<String>,
    /// Predicted-vs-actual audit over the bootstrap holdout slice.
    pub holdout_audit: Vec<HoldoutAudit>,
    /// Mean of the holdout `abs_rel_error`s (None when no holdout).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mean_abs_rel_error: Option<f64>,
    /// Why pruning did not run despite being enabled (fault injection,
    /// grid too small, too few successful bootstrap points).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub disabled_reason: Option<String>,
}

/// The result of a completed explore.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// The canonical-JSON manifest, as written.
    pub manifest: Value,
    /// Where the manifest was written (`<cache>/explore/<label>.json`).
    pub manifest_path: PathBuf,
    /// The Pareto front, sorted.
    pub front: Vec<PointOutcome>,
    /// The front rendered as an aligned text table.
    pub table: String,
    /// Points evaluated (simulated now or already cached).
    pub evaluated: usize,
    /// Points skipped by pruning.
    pub pruned: usize,
    /// Points with at least one quarantined mix.
    pub quarantined: usize,
}

/// Directory explore manifests are written to.
pub fn explore_dir(cache_dir: &Path) -> PathBuf {
    cache_dir.join("explore")
}

fn count_point(status: &str) {
    sms_obs::registry()
        .counter_family(
            "sms_explore_points_total",
            "Explore design points by outcome",
            &["status"],
        )
        .with(&[status])
        .inc();
}

/// Mean over the declared mixes of the point's aggregate IPC (sum of
/// per-core IPC); NaN when any mix is missing from the cache
/// (quarantined or not yet run).
fn observed_throughput(
    cache: &CachedSim,
    point: &DesignPoint,
    mixes: &[MixSpec],
    spec: RunSpec,
) -> f64 {
    let mut total = 0.0;
    for mix in mixes {
        match cache.lookup(&point.config, mix, spec) {
            Some(result) => total += result.cores.iter().map(|c| c.ipc).sum::<f64>(),
            None => return f64::NAN,
        }
    }
    total / mixes.len() as f64
}

fn total_llc_bytes(point: &DesignPoint) -> u64 {
    point
        .config
        .llc
        .slice
        .capacity_bytes
        .saturating_mul(u64::from(point.config.llc.num_slices))
}

/// Deterministic Fisher-Yates shuffle of `0..n` seeded from `seed`.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = sms_ml::rng::SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        idx.swap(i, rng.next_below(i + 1));
    }
    idx
}

struct PruneDecision {
    pruned: BTreeMap<String, (f64, String)>,
    holdout: Vec<HoldoutAudit>,
    disabled_reason: Option<String>,
}

/// Train the forest on the bootstrap observations and decide which
/// remaining points to skip. A point is pruned only when some *observed*
/// point that costs no more (cores and LLC bytes both <=) out-throughputs
/// its prediction by the margin — a conservative rule: a wrong prune
/// needs the forest to under-predict by more than the margin.
fn decide_prunes(
    points: &[DesignPoint],
    order: &[usize],
    n_boot: usize,
    observed: &BTreeMap<String, f64>,
    llc: &BTreeMap<String, u64>,
    prune: &PruneParams,
) -> PruneDecision {
    let boot: Vec<&DesignPoint> = order[..n_boot].iter().map(|&i| &points[i]).collect();
    let ok: Vec<&DesignPoint> = boot
        .iter()
        .copied()
        .filter(|p| observed.get(&p.key).is_some_and(|t| t.is_finite()))
        .collect();
    let n_hold = (ok.len() / 5).max(1);
    if ok.len().saturating_sub(n_hold) < 2 {
        return PruneDecision {
            pruned: BTreeMap::new(),
            holdout: Vec::new(),
            disabled_reason: Some(format!(
                "too few successful bootstrap points to train on ({} ok)",
                ok.len()
            )),
        };
    }
    let (train, hold) = ok.split_at(ok.len() - n_hold);
    let rows: Vec<Vec<f64>> = train.iter().map(|p| features(&p.config)).collect();
    let y: Vec<f64> = train.iter().map(|p| observed[&p.key]).collect();
    let data = Dataset::new(Matrix::from_vecs(&rows), y);
    let params = ForestParams {
        num_trees: 48,
        tree: TreeParams {
            max_depth: Some(8),
            ..TreeParams::default()
        },
        bootstrap: true,
    };
    let forest = RandomForest::fit(&data, &params, prune.seed);
    let holdout: Vec<HoldoutAudit> = hold
        .iter()
        .map(|p| {
            let predicted = forest.predict(&features(&p.config));
            let actual = observed[&p.key];
            HoldoutAudit {
                key: p.key.clone(),
                predicted,
                actual,
                abs_rel_error: (predicted - actual).abs() / actual.abs().max(1e-12),
            }
        })
        .collect();
    let mut pruned = BTreeMap::new();
    for &i in &order[n_boot..] {
        let p = &points[i];
        let predicted = forest.predict(&features(&p.config));
        let beater = ok.iter().find(|q| {
            q.config.num_cores <= p.config.num_cores
                && llc[&q.key] <= llc[&p.key]
                && observed[&q.key]
                    .total_cmp(&(predicted * (1.0 + prune.margin)))
                    .is_ge()
        });
        if let Some(q) = beater {
            pruned.insert(p.key.clone(), (predicted, q.key.clone()));
        }
    }
    PruneDecision {
        pruned,
        holdout,
        disabled_reason: None,
    }
}

/// Run (or resume) a design-space exploration.
///
/// The cache lives under `<results_dir>/cache`; the manifest is written
/// to `<cache>/explore/<label>.json` as canonical sorted-key JSON with
/// no wall-clock content, so an interrupted-then-resumed explore is
/// bit-identical to an uninterrupted one.
///
/// # Errors
///
/// Returns [`ExploreError::Spec`] when the spec has no grid or no mixes,
/// [`ExploreError::Fault`] on an injected `explore.plan` fault, or
/// [`ExploreError::Io`] when the manifest cannot be written. Individual
/// simulation failures do not error: the executor quarantines them and
/// the manifest records the point as `quarantined`.
pub fn run_explore(
    results_dir: &Path,
    resolved: &ResolvedExplore,
    params: &ExploreParams,
) -> Result<ExploreOutcome, ExploreError> {
    let plan_span = sms_obs::tracer()
        .span("explore.plan", "explore")
        .arg("label", &params.label)
        .arg("spec", &resolved.spec.name);
    sms_faults::check("explore.plan").map_err(|e| ExploreError::Fault(e.to_string()))?;
    let spec = &resolved.spec;
    let mut spec_errors = Vec::new();
    if spec.grid.is_empty() {
        spec_errors.push(SpecError {
            path: "grid".to_owned(),
            message: "explore needs a non-empty [grid] section".to_owned(),
        });
    }
    if spec.workloads.mixes.is_empty() {
        spec_errors.push(SpecError {
            path: "workloads.mixes".to_owned(),
            message: "explore needs at least one declared mix".to_owned(),
        });
    }
    if !spec_errors.is_empty() {
        return Err(ExploreError::Spec(spec_errors));
    }
    let points = spec
        .grid
        .expand(&spec.machine)
        .map_err(ExploreError::Spec)?;
    let run_spec = RunSpec::with_default_warmup(spec.workloads.budget);
    let mixes_for = |p: &DesignPoint| -> Vec<MixSpec> {
        spec.workloads
            .mixes
            .iter()
            .map(|names| MixSpec::fill(names, p.config.num_cores as usize, spec.workloads.seed))
            .collect()
    };
    let plan_for = |pts: &[&DesignPoint]| -> Vec<(sms_sim::config::SystemConfig, MixSpec)> {
        pts.iter()
            .flat_map(|p| {
                let mut cfg = p.config.clone();
                cfg.sim_threads = params.sim_threads.max(1);
                mixes_for(p).into_iter().map(move |m| (cfg.clone(), m))
            })
            .collect()
    };

    let cache = CachedSim::open(results_dir.join("cache"))?;
    // Journal the plan header first so a kill at any later moment leaves
    // enough on disk for `sms resume` to rebuild this exact explore.
    let header = PlanHeader {
        schema_version: JOURNAL_SCHEMA_VERSION,
        label: params.label.clone(),
        bench: spec
            .workloads
            .mixes
            .iter()
            .map(|m| m.join("+"))
            .collect::<Vec<_>>()
            .join(","),
        target_cores: spec.machine.num_cores,
        budget: spec.workloads.budget,
        seed: spec.workloads.seed,
        threads: params.threads,
        timelines: false,
        explore: Some(
            serde_json::to_string(&serde_json::to_value(resolved).unwrap_or_default())
                .unwrap_or_default(),
        ),
    };
    let journal = PlanJournal::open_append(cache.dir(), &params.label)?;
    journal.append_best_effort(&JournalLine::Plan(header));
    drop(journal);

    // Snapshot what is cached before executing, for the run/cached metric
    // split (metrics only — never the manifest, which must not depend on
    // where a resume picked up).
    let cached_before: BTreeSet<String> = points
        .iter()
        .filter(|p| {
            mixes_for(p)
                .iter()
                .all(|m| cache.lookup(&p.config, m, run_spec).is_some())
        })
        .map(|p| p.key.clone())
        .collect();

    // Summaries are advisory at every call site; quarantines surface as
    // NaN throughput when outcomes are collected below.
    let exec = |plan: &[(sms_sim::config::SystemConfig, MixSpec)]| {
        if params.profile {
            let _ =
                execute_plan_with_profiles(&cache, plan, run_spec, params.threads, &params.label);
        } else {
            let _ = execute_plan(&cache, plan, run_spec, params.threads, &params.label);
        }
    };

    let order = shuffled_indices(points.len(), resolved.prune.seed);
    let mut prune_enabled = resolved.prune.enabled;
    let mut disabled_reason: Option<String> = None;
    if prune_enabled && points.len() < 4 {
        prune_enabled = false;
        disabled_reason = Some(format!("grid too small to prune ({} points)", points.len()));
    }
    if prune_enabled {
        if let Err(e) = sms_faults::check("explore.prune") {
            // A pruning fault degrades to a full sweep instead of losing
            // the explore: correctness first, savings second.
            prune_enabled = false;
            disabled_reason = Some(e.to_string());
        }
    }

    let mut bootstrap_keys: Vec<String> = Vec::new();
    let mut prune_map: BTreeMap<String, (f64, String)> = BTreeMap::new();
    let mut holdout: Vec<HoldoutAudit> = Vec::new();

    if prune_enabled {
        // points.len() >= 4 here, so the clamp bounds are ordered.
        let n_boot = ((points.len() as f64 * resolved.prune.bootstrap_fraction).ceil() as usize)
            .clamp(2, points.len() - 1);
        let boot: Vec<&DesignPoint> = order[..n_boot].iter().map(|&i| &points[i]).collect();
        bootstrap_keys = boot.iter().map(|p| p.key.clone()).collect();
        exec(&plan_for(&boot));
        let observed: BTreeMap<String, f64> = boot
            .iter()
            .map(|p| {
                (
                    p.key.clone(),
                    observed_throughput(&cache, p, &mixes_for(p), run_spec),
                )
            })
            .collect();
        let llc: BTreeMap<String, u64> = points
            .iter()
            .map(|p| (p.key.clone(), total_llc_bytes(p)))
            .collect();
        let decision = decide_prunes(&points, &order, n_boot, &observed, &llc, &resolved.prune);
        prune_map = decision.pruned;
        holdout = decision.holdout;
        disabled_reason = decision.disabled_reason;
        let rest: Vec<&DesignPoint> = order[n_boot..]
            .iter()
            .map(|&i| &points[i])
            .filter(|p| !prune_map.contains_key(&p.key))
            .collect();
        exec(&plan_for(&rest));
    } else {
        let all: Vec<&DesignPoint> = points.iter().collect();
        exec(&plan_for(&all));
    }

    // Per-point profile attribution: merge the per-run profile files the
    // executor left under `<cache>/profiles/` for each of the point's
    // mixes. Best-effort — a dropped profile write simply leaves that
    // run unattributed.
    let point_profile = |p: &DesignPoint| -> Option<Vec<PhaseStatRecord>> {
        if !params.profile {
            return None;
        }
        let dir = profiles_dir(cache.dir());
        let mut merged = sms_obs::PhaseProfile::default();
        let mut cfg = p.config.clone();
        cfg.sim_threads = params.sim_threads.max(1);
        for mix in mixes_for(p) {
            let hash = sms_bench::key_hash_hex(&sms_bench::cache_key(&cfg, &mix, run_spec));
            if let Ok(file) = ProfileFile::load(dir.join(format!("{hash}.json"))) {
                merged.merge(&records_to_profile(&file.phases));
            }
        }
        if merged.is_empty() {
            None
        } else {
            Some(sms_bench::phase_records(&merged))
        }
    };

    // Collect outcomes per point, in key order.
    let mut records: Vec<PointRecord> = Vec::with_capacity(points.len());
    let mut outcomes: Vec<PointOutcome> = Vec::new();
    let mut evaluated = 0usize;
    let mut pruned_count = 0usize;
    let mut quarantined = 0usize;
    for p in &points {
        let _span = sms_obs::tracer()
            .span("explore.point", "explore")
            .arg("key", &p.key);
        let llc_bytes = total_llc_bytes(p);
        if let Some((predicted, by)) = prune_map.get(&p.key) {
            pruned_count += 1;
            count_point("pruned");
            records.push(PointRecord {
                key: p.key.clone(),
                status: "pruned".to_owned(),
                cores: p.config.num_cores,
                llc_bytes,
                throughput: None,
                predicted: Some(*predicted),
                dominated_by: Some(by.clone()),
                profile: None,
            });
            continue;
        }
        let thr = observed_throughput(&cache, p, &mixes_for(p), run_spec);
        let predicted = holdout.iter().find(|h| h.key == p.key).map(|h| h.predicted);
        if thr.is_finite() {
            evaluated += 1;
            count_point(if cached_before.contains(&p.key) {
                "cached"
            } else {
                "run"
            });
            outcomes.push(PointOutcome {
                key: p.key.clone(),
                cores: p.config.num_cores,
                llc_bytes,
                throughput: thr,
            });
            records.push(PointRecord {
                key: p.key.clone(),
                status: "evaluated".to_owned(),
                cores: p.config.num_cores,
                llc_bytes,
                throughput: Some(thr),
                predicted,
                dominated_by: None,
                profile: point_profile(p),
            });
        } else {
            quarantined += 1;
            count_point("quarantined");
            records.push(PointRecord {
                key: p.key.clone(),
                status: "quarantined".to_owned(),
                cores: p.config.num_cores,
                llc_bytes,
                throughput: None,
                predicted,
                dominated_by: None,
                profile: None,
            });
        }
    }
    drop(plan_span);

    let front = pareto_front(&outcomes);
    let table = render_table(&front);
    let mean_err = if holdout.is_empty() {
        None
    } else {
        Some(holdout.iter().map(|h| h.abs_rel_error).sum::<f64>() / holdout.len() as f64)
    };
    let prune_report = PruneReport {
        enabled: resolved.prune.enabled,
        seed: resolved.prune.seed,
        bootstrap_fraction: resolved.prune.bootstrap_fraction,
        margin: resolved.prune.margin,
        bootstrap: bootstrap_keys,
        pruned: prune_map.keys().cloned().collect(),
        holdout_audit: holdout,
        mean_abs_rel_error: mean_err,
        disabled_reason,
    };
    let grid_axes: BTreeMap<String, Vec<String>> = spec
        .grid
        .axes
        .iter()
        .map(|(a, vs)| (a.clone(), vs.iter().map(ToString::to_string).collect()))
        .collect();
    // serde_json's default map preserves insertion order per struct, but
    // Value objects sort keys, so serializing through Value canonicalizes.
    let manifest = serde_json::json!({
        "schema_version": EXPLORE_SCHEMA_VERSION,
        "label": params.label,
        "spec_name": spec.name,
        "machine": spec.machine.summary(),
        "grid_axes": grid_axes,
        "workloads": {
            "mixes": spec.workloads.mixes,
            "seed": spec.workloads.seed,
            "budget": spec.workloads.budget,
        },
        "points": records,
        "pareto": front,
        "pruning": prune_report,
    });
    let dir = explore_dir(cache.dir());
    std::fs::create_dir_all(&dir)?;
    let manifest_path = dir.join(format!(
        "{}.json",
        sms_bench::telemetry::sanitize_label(&params.label)
    ));
    let mut text = serde_json::to_string_pretty(&manifest).unwrap_or_default();
    text.push('\n');
    std::fs::write(&manifest_path, text)?;

    Ok(ExploreOutcome {
        manifest,
        manifest_path,
        front,
        table,
        evaluated,
        pruned: pruned_count,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    const SMOKE: &str = r#"
schema = 1
name = "unit-smoke"

[machine]
cores = 1

[workloads]
mixes = [["leela_r"]]
seed = 7
budget = 4000

[grid]
rob_size = [16, 128]
llc_slice_kib = [256, 1024]
"#;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sms-explore-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn resolved(prune: PruneParams) -> ResolvedExplore {
        ResolvedExplore {
            spec: MachineSpec::from_toml(SMOKE).unwrap(),
            prune,
        }
    }

    fn params(label: &str) -> ExploreParams {
        ExploreParams {
            label: label.to_owned(),
            threads: 2,
            sim_threads: 1,
            profile: false,
        }
    }

    #[test]
    fn shuffle_is_deterministic_and_a_permutation() {
        let a = shuffled_indices(16, 43);
        let b = shuffled_indices(16, 43);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert_ne!(a, shuffled_indices(16, 44));
    }

    #[test]
    fn explore_unpruned_produces_front_and_manifest() {
        let dir = tmp("noprune");
        let r = resolved(PruneParams {
            enabled: false,
            ..PruneParams::default()
        });
        let out = run_explore(&dir, &r, &params("t-noprune")).unwrap();
        assert_eq!(out.evaluated, 4);
        assert_eq!(out.pruned, 0);
        assert!(!out.front.is_empty());
        assert!(out.manifest_path.exists());
        // Deterministic rerun: manifest is bit-identical.
        let first = std::fs::read(&out.manifest_path).unwrap();
        let out2 = run_explore(&dir, &r, &params("t-noprune")).unwrap();
        let second = std::fs::read(&out2.manifest_path).unwrap();
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_grid_disables_pruning_with_reason() {
        let dir = tmp("tiny");
        // 4-point grid is the boundary: < 4 disables. Shrink to 2 points.
        let two = SMOKE.replace("rob_size = [16, 128]\n", "");
        let r = ResolvedExplore {
            spec: MachineSpec::from_toml(&two).unwrap(),
            prune: PruneParams::default(),
        };
        let out = run_explore(&dir, &r, &params("t-tiny")).unwrap();
        assert_eq!(out.pruned, 0);
        assert_eq!(out.evaluated, 2);
        let reason = &out.manifest["pruning"]["disabled_reason"];
        assert!(
            reason.as_str().is_some_and(|s| s.contains("too small")),
            "{reason}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profiled_explore_attributes_phases_to_evaluated_points() {
        let dir = tmp("profiled");
        let r = resolved(PruneParams {
            enabled: false,
            ..PruneParams::default()
        });
        let mut p = params("t-profiled");
        p.profile = true;
        let out = run_explore(&dir, &r, &p).unwrap();
        assert_eq!(out.evaluated, 4);
        let points = out.manifest["points"].as_array().unwrap();
        for point in points {
            let profile = point["profile"]
                .as_array()
                .expect("every evaluated point carries a profile");
            assert!(
                profile
                    .iter()
                    .any(|ph| ph["path"] == "sim.run" && ph["total_nanos"].as_u64() > Some(0)),
                "root phase attributed: {point}"
            );
        }
        // An unprofiled explore into the same cache leaves the field out
        // even though profile files exist on disk (opt-in per invocation).
        let plain = run_explore(&dir, &r, &params("t-profiled-off")).unwrap();
        for point in plain.manifest["points"].as_array().unwrap() {
            assert!(point.get("profile").is_none(), "{point}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_grid_and_missing_mixes_are_spec_errors() {
        let dir = tmp("badspec");
        let r = ResolvedExplore {
            spec: MachineSpec::from_toml("schema = 1\n").unwrap(),
            prune: PruneParams::default(),
        };
        let err = run_explore(&dir, &r, &params("t-bad")).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("grid"), "{text}");
        assert!(text.contains("workloads.mixes"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolved_explore_round_trips_through_json() {
        let r = resolved(PruneParams::default());
        let text = serde_json::to_string(&r).unwrap();
        let back: ResolvedExplore = serde_json::from_str(&text).unwrap();
        assert_eq!(r, back);
    }
}
