//! Hand-rolled parser for the TOML subset machine specs use.
//!
//! The workspace is std-only (no `toml` crate), so machine specs are
//! written in a small, strictly defined TOML subset that parses into a
//! [`serde_json::Value`] tree — the same shape a `.json` spec
//! deserializes to, so the decoder in [`machine`](crate::machine) is
//! format-agnostic.
//!
//! Supported syntax (documented in DESIGN.md "Design-space exploration"):
//!
//! * `#` comments (full-line or trailing) and blank lines,
//! * `[section]` and `[dotted.section]` table headers,
//! * `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`),
//! * values: integers, floats, booleans, basic `"strings"` (escapes
//!   `\\`, `\"`, `\n`, `\t`), and single-line (possibly nested) arrays.
//!
//! Deliberately *not* supported: dotted keys, arrays of tables,
//! multi-line arrays/strings, literal strings, datetimes. A spec needing
//! those is out of scope for machine descriptions.

use serde_json::{Map, Value};

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Strip a trailing `#` comment, respecting `"` string boundaries.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => escaped = true,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Navigate (creating as needed) to the table at `path`, rooted at `root`.
fn table_at<'a>(
    root: &'a mut Map<String, Value>,
    path: &[String],
    line: usize,
) -> Result<&'a mut Map<String, Value>, TomlError> {
    let mut cur = root;
    for seg in path {
        let entry = cur
            .entry(seg.clone())
            .or_insert_with(|| Value::Object(Map::new()));
        cur = entry
            .as_object_mut()
            .ok_or_else(|| err(line, format!("`{seg}` is both a value and a table")))?;
    }
    Ok(cur)
}

/// Parse one value expression (the right-hand side of `key = ...`).
fn parse_value(text: &str, line: usize) -> Result<Value, TomlError> {
    let mut chars: Vec<char> = text.chars().collect();
    let (v, used) = parse_value_at(&mut chars, 0, line)?;
    let rest: String = chars[used..].iter().collect();
    if !rest.trim().is_empty() {
        return Err(err(line, format!("trailing garbage after value: `{rest}`")));
    }
    Ok(v)
}

/// Recursive-descent value parser; returns the value and the index just
/// past it.
fn parse_value_at(chars: &mut [char], at: usize, line: usize) -> Result<(Value, usize), TomlError> {
    let mut i = at;
    while i < chars.len() && chars[i].is_whitespace() {
        i += 1;
    }
    let Some(&c) = chars.get(i) else {
        return Err(err(line, "missing value"));
    };
    match c {
        '"' => parse_string_at(chars, i, line),
        '[' => parse_array_at(chars, i, line),
        _ => {
            // Scalar token: ends at whitespace, `,` or `]`.
            let start = i;
            while i < chars.len() && !chars[i].is_whitespace() && chars[i] != ',' && chars[i] != ']'
            {
                i += 1;
            }
            let token: String = chars[start..i].iter().collect();
            let v = match token.as_str() {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                _ => {
                    if let Ok(n) = token.parse::<i64>() {
                        Value::from(n)
                    } else if let Ok(f) = token.parse::<f64>() {
                        if !f.is_finite() {
                            return Err(err(line, format!("non-finite number `{token}`")));
                        }
                        serde_json::Number::from_f64(f)
                            .map(Value::Number)
                            .ok_or_else(|| err(line, format!("unrepresentable number `{token}`")))?
                    } else {
                        return Err(err(
                            line,
                            format!("cannot parse value `{token}` (bare strings must be quoted)"),
                        ));
                    }
                }
            };
            Ok((v, i))
        }
    }
}

fn parse_string_at(chars: &[char], at: usize, line: usize) -> Result<(Value, usize), TomlError> {
    debug_assert_eq!(chars[at], '"');
    let mut out = String::new();
    let mut i = at + 1;
    while i < chars.len() {
        match chars[i] {
            '"' => return Ok((Value::String(out), i + 1)),
            '\\' => {
                let esc = chars
                    .get(i + 1)
                    .ok_or_else(|| err(line, "dangling escape at end of string"))?;
                out.push(match esc {
                    '\\' => '\\',
                    '"' => '"',
                    'n' => '\n',
                    't' => '\t',
                    other => return Err(err(line, format!("unsupported escape `\\{other}`"))),
                });
                i += 2;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err(err(line, "unterminated string"))
}

fn parse_array_at(chars: &mut [char], at: usize, line: usize) -> Result<(Value, usize), TomlError> {
    debug_assert_eq!(chars[at], '[');
    let mut items = Vec::new();
    let mut i = at + 1;
    loop {
        while i < chars.len() && (chars[i].is_whitespace() || chars[i] == ',') {
            i += 1;
        }
        match chars.get(i) {
            None => return Err(err(line, "unterminated array (arrays are single-line)")),
            Some(']') => return Ok((Value::Array(items), i + 1)),
            Some(_) => {
                let (v, next) = parse_value_at(chars, i, line)?;
                items.push(v);
                i = next;
            }
        }
    }
}

/// Parse a TOML-subset document into a JSON object tree.
///
/// # Errors
///
/// Returns a [`TomlError`] naming the first offending line: syntax
/// outside the subset, duplicate keys, or conflicting table/value paths.
pub fn parse(text: &str) -> Result<Value, TomlError> {
    let mut root = Map::new();
    let mut current_path: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated table header"))?
                .trim();
            if header.starts_with('[') {
                return Err(err(lineno, "arrays of tables ([[...]]) are not supported"));
            }
            let segments: Vec<String> = header.split('.').map(|s| s.trim().to_owned()).collect();
            if segments.iter().any(|s| !is_bare_key(s)) {
                return Err(err(lineno, format!("invalid table header `[{header}]`")));
            }
            // Materialize the table (so empty sections still exist) and
            // reject re-opening a path already used by a value.
            table_at(&mut root, &segments, lineno)?;
            current_path = segments;
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if !is_bare_key(key) {
                return Err(err(
                    lineno,
                    format!("invalid key `{key}` (dotted/quoted keys are not supported)"),
                ));
            }
            let v = parse_value(value.trim(), lineno)?;
            let table = table_at(&mut root, &current_path, lineno)?;
            if table.insert(key.to_owned(), v).is_some() {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
        } else {
            return Err(err(lineno, format!("cannot parse line `{line}`")));
        }
    }
    Ok(Value::Object(root))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let v = parse(
            "# spec\nschema = 1\nname = \"m1\"\n\n[machine]\ncores = 8 # eight\nratio = 2.5\n\
             flag = true\n\n[machine.core]\nrob_size = 128\n\n[grid]\nrob_size = [16, 128]\n\
             mixes = [[\"a\", \"b\"], [\"c\"]]\n",
        )
        .unwrap();
        assert_eq!(v["schema"], 1);
        assert_eq!(v["name"], "m1");
        assert_eq!(v["machine"]["cores"], 8);
        assert_eq!(v["machine"]["ratio"], 2.5);
        assert_eq!(v["machine"]["flag"], true);
        assert_eq!(v["machine"]["core"]["rob_size"], 128);
        assert_eq!(v["grid"]["rob_size"], serde_json::json!([16, 128]));
        assert_eq!(v["grid"]["mixes"], serde_json::json!([["a", "b"], ["c"]]));
    }

    #[test]
    fn string_escapes_and_comment_hash_in_string() {
        let v = parse("s = \"a # not a comment\\n\\\"q\\\" \\\\ t\\tx\"\n").unwrap();
        assert_eq!(v["s"], "a # not a comment\n\"q\" \\ t\tx");
    }

    #[test]
    fn negative_and_float_numbers() {
        let v = parse("a = -3\nb = 0.125\nc = -1.5\n").unwrap();
        assert_eq!(v["a"], -3);
        assert_eq!(v["b"], 0.125);
        assert_eq!(v["c"], -1.5);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken line\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"), "{e}");

        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");

        let e = parse("s = \"unterminated\n").unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");

        let e = parse("x = [1, 2\n").unwrap_err();
        assert!(e.message.contains("array"), "{e}");

        let e = parse("x = nope\n").unwrap_err();
        assert!(e.message.contains("quoted"), "{e}");

        let e = parse("[[tables]]\nx = 1\n").unwrap_err();
        assert!(e.message.contains("not supported"), "{e}");
    }

    #[test]
    fn value_table_conflicts_rejected() {
        let e = parse("a = 1\n[a]\nb = 2\n").unwrap_err();
        assert!(e.message.contains("both a value and a table"), "{e}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = parse("a = 1 2\n").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn empty_sections_materialize() {
        let v = parse("[grid]\n").unwrap();
        assert!(v["grid"].as_object().unwrap().is_empty());
    }
}
