//! Property-based tests for the simulator substrate's core invariants.

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sms_sim::cache::Cache;
use sms_sim::config::{CacheConfig, DramConfig, NocConfig};
use sms_sim::dram::Dram;
use sms_sim::noc::Noc;
use sms_sim::prefetch::{PrefetchConfig, StridePrefetcher};
use sms_sim::queue::HistoryQueue;

fn small_cache() -> impl Strategy<Value = Cache> {
    (1u32..=4, 0u32..=3).prop_map(|(assoc_bits, set_bits)| {
        let assoc = 1 << assoc_bits;
        let sets = 1u64 << set_bits;
        Cache::new(&CacheConfig {
            capacity_bytes: sets * u64::from(assoc) * 64,
            associativity: assoc,
            access_latency: 4,
            policy: Default::default(),
        })
    })
}

proptest! {
    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        cache in small_cache(),
        lines in proptest::collection::vec(0u64..10_000, 1..500),
    ) {
        let mut cache = cache;
        for line in lines {
            if !cache.access(line, false) {
                cache.fill(line, false, 0);
            }
        }
        prop_assert!(cache.occupancy() <= cache.capacity_lines());
    }

    #[test]
    fn filled_line_is_immediately_present(
        cache in small_cache(),
        lines in proptest::collection::vec(0u64..10_000, 1..200),
    ) {
        let mut cache = cache;
        for line in lines {
            cache.fill(line, false, 0);
            prop_assert!(cache.probe(line), "line {line} missing right after fill");
        }
    }

    #[test]
    fn eviction_victim_was_resident_and_leaves(
        cache in small_cache(),
        lines in proptest::collection::vec(0u64..64, 1..300),
    ) {
        let mut cache = cache;
        for line in lines {
            if !cache.access(line, false) {
                if let Some(ev) = cache.fill(line, false, 0) {
                    prop_assert_ne!(ev.line, line, "cannot evict the filled line");
                    prop_assert!(!cache.probe(ev.line), "victim still present");
                }
            }
        }
    }

    #[test]
    fn cache_stats_are_consistent(
        cache in small_cache(),
        ops in proptest::collection::vec((0u64..256, proptest::bool::ANY), 1..400),
    ) {
        let mut cache = cache;
        for (line, write) in ops {
            if !cache.access(line, write) {
                cache.fill(line, write, 0);
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses(), s.accesses);
        prop_assert!(s.dirty_evictions <= s.evictions);
        prop_assert!(s.evictions <= s.fills);
    }

    #[test]
    fn dram_latency_at_least_base_plus_service(
        requests in proptest::collection::vec((0u64..100_000, 0u64..1024), 1..200),
    ) {
        let mut d = Dram::new(&DramConfig {
            num_controllers: 4,
            controller_bandwidth_gbps: 16.0,
            base_latency: 200,
            row_buffer: None,
        });
        let floor = 200 + d.service_cycles() as u64;
        for (now, line) in requests {
            let a = d.read(line, now);
            prop_assert!(a.latency >= floor);
            prop_assert_eq!(a.latency, floor + a.queue_wait);
        }
    }

    #[test]
    fn dram_total_bytes_equals_requests_times_line(
        requests in proptest::collection::vec(0u64..4096, 1..300),
    ) {
        let mut d = Dram::new(&DramConfig {
            num_controllers: 2,
            controller_bandwidth_gbps: 8.0,
            base_latency: 100,
            row_buffer: None,
        });
        for (i, line) in requests.iter().enumerate() {
            d.read(*line, i as u64 * 3);
        }
        prop_assert_eq!(d.total_bytes(), requests.len() as u64 * 64);
    }

    #[test]
    fn noc_hops_are_symmetric_and_triangle(
        a in 0u32..32, b in 0u32..32, c in 0u32..32,
    ) {
        let n = Noc::new(&NocConfig {
            mesh_cols: 8,
            mesh_rows: 4,
            hop_latency: 2,
            cross_section_links: 4,
            link_bandwidth_gbps: 32.0,
        });
        prop_assert_eq!(n.hops(a, b), n.hops(b, a));
        prop_assert!(n.hops(a, c) <= n.hops(a, b) + n.hops(b, c));
        prop_assert_eq!(n.hops(a, a), 0);
    }

    #[test]
    fn noc_crossing_is_symmetric(a in 0u32..32, b in 0u32..32) {
        let n = Noc::new(&NocConfig {
            mesh_cols: 8,
            mesh_rows: 4,
            hop_latency: 2,
            cross_section_links: 4,
            link_bandwidth_gbps: 32.0,
        });
        prop_assert_eq!(n.crosses_bisection(a, b), n.crosses_bisection(b, a));
    }

    #[test]
    fn history_queue_serialization_conserves_busy_time(
        requests in proptest::collection::vec(0u32..10_000u32, 1..300),
    ) {
        let mut q = HistoryQueue::new();
        let service = 10.0;
        for now in requests.iter() {
            q.request(f64::from(*now), service);
        }
        prop_assert!((q.busy_time() - service * requests.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn prefetcher_output_follows_detected_stride(
        base in 0u64..1_000_000,
        stride in 1i64..8,
        degree in 1u32..8,
    ) {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            degree,
            ..PrefetchConfig::default()
        });
        let line = |k: i64| base.checked_add_signed(stride * k).unwrap();
        p.train(line(0));
        p.train(line(1));
        let out = p.train(line(2));
        prop_assert_eq!(out.len(), degree as usize);
        for (i, l) in out.iter().enumerate() {
            prop_assert_eq!(*l, line(3 + i as i64));
        }
    }
}
