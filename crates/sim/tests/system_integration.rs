//! System-level integration tests: multi-core invariants that unit tests
//! of individual components cannot see.

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_sim::trace::{InstructionSource, MicroOp, VecSource};

fn cfg(cores: u32) -> SystemConfig {
    let mut cfg = SystemConfig::target_32core();
    cfg.num_cores = cores;
    cfg.llc.num_slices = cores.next_power_of_two();
    let cols = cores.next_power_of_two().min(8);
    cfg.noc.mesh_cols = cols;
    cfg.noc.mesh_rows = cores.next_power_of_two().div_ceil(cols).max(1);
    cfg.dram.num_controllers = (cores / 4).max(1).next_power_of_two();
    cfg
}

/// An element-granular stream (8-byte stride, like the real generators:
/// eight loads share a cache line) over `span_lines` lines, starting at a
/// per-instance `offset` so co-running copies are decorrelated — the
/// paper's "slightly different offsets".
fn stream_source(
    label: &str,
    base: u64,
    span_lines: u64,
    offset_lines: u64,
) -> Box<dyn InstructionSource> {
    let span_bytes = span_lines * 64;
    let start = (offset_lines * 64) % span_bytes;
    let ops: Vec<MicroOp> = (0..span_lines * 8)
        .flat_map(|i| {
            [
                MicroOp::Compute { count: 3 },
                MicroOp::Load {
                    addr: base + (start + i * 8) % span_bytes,
                    dependent: false,
                },
            ]
        })
        .collect();
    Box::new(VecSource::new(label, ops))
}

fn spec(n: u64) -> RunSpec {
    RunSpec {
        warmup_instructions: n / 5,
        measure_instructions: n,
    }
}

#[test]
fn symmetric_cores_get_symmetric_performance() {
    // Four identical streams in disjoint address windows: the rotating
    // quantum order must keep per-core IPC near-identical.
    let sources: Vec<Box<dyn InstructionSource>> = (0..4u64)
        .map(|i| stream_source("s", i << 40, 1 << 14, i * 997))
        .collect();
    let mut sys = MulticoreSystem::new(cfg(4), sources).unwrap();
    let r = sys.run(spec(400_000)).unwrap();
    let ipcs: Vec<f64> = r.cores.iter().map(|c| c.ipc).collect();
    let min = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ipcs.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 1.15,
        "identical workloads diverge: {ipcs:?} (no core should be systematically biased)"
    );
}

#[test]
fn inclusive_mode_is_strictly_harsher_for_victims() {
    // A small hot workload co-runs with an LLC-thrashing stream. Under the
    // inclusive LLC the victim's private caches are invalidated by the
    // stream's evictions; non-inclusive protects them.
    let run = |inclusive: bool| -> f64 {
        let mut c = cfg(2);
        c.inclusive_llc = inclusive;
        // Make the LLC small so the stream actually thrashes it.
        c.llc.slice.capacity_bytes = 128 * 1024;
        let hot = stream_source("hot", 0, 256, 0); // 16 KB: L1-resident
        let stream = stream_source("stream", 1 << 40, 1 << 16, 7); // 4 MB
        let mut sys = MulticoreSystem::new(c, vec![hot, stream]).unwrap();
        let r = sys.run(spec(300_000)).unwrap();
        r.cores[0].ipc
    };
    let non_inclusive = run(false);
    let inclusive = run(true);
    assert!(
        inclusive <= non_inclusive * 1.02,
        "inclusion cannot help the victim: inclusive={inclusive:.3} non={non_inclusive:.3}"
    );
}

#[test]
fn sixtyfour_core_machine_simulates() {
    let mut c = cfg(64);
    c.noc.mesh_cols = 8;
    c.noc.mesh_rows = 8;
    let sources: Vec<Box<dyn InstructionSource>> = (0..64u64)
        .map(|i| stream_source("s", i << 40, 1 << 10, i * 31))
        .collect();
    let mut sys = MulticoreSystem::new(c, sources).unwrap();
    let r = sys.run(spec(20_000)).unwrap();
    assert_eq!(r.cores.len(), 64);
    assert!(r.cores.iter().all(|c| c.ipc > 0.0));
}

#[test]
fn quantum_granularity_changes_results_only_slightly() {
    let run = |quantum: u64| -> f64 {
        let mut c = cfg(4);
        c.sync_quantum = quantum;
        let sources: Vec<Box<dyn InstructionSource>> = (0..4u64)
            .map(|i| stream_source("s", i << 40, 1 << 14, i * 997))
            .collect();
        let mut sys = MulticoreSystem::new(c, sources).unwrap();
        let r = sys.run(spec(400_000)).unwrap();
        r.cores.iter().map(|c| c.ipc).sum::<f64>() / 4.0
    };
    let fine = run(200);
    let default = run(1_000);
    assert!(
        (fine - default).abs() / fine < 0.08,
        "quantum sensitivity too high: {fine:.4} vs {default:.4}"
    );
}

#[test]
fn prefetcher_disabled_slows_streamers() {
    let run = |enabled: bool| -> f64 {
        let mut c = cfg(1);
        c.prefetch.enabled = enabled;
        // 4 GB/s per-core share, like the PRS scale model.
        c.dram.controller_bandwidth_gbps = 4.0;
        let src = stream_source("s", 0, 1 << 16, 0); // 4 MB stream, misses LLC
        let mut sys = MulticoreSystem::new(c, vec![src]).unwrap();
        let r = sys.run(spec(400_000)).unwrap();
        r.cores[0].ipc
    };
    let with_pf = run(true);
    let without = run(false);
    // At one miss per 32 instructions the MSHRs already cover much of the
    // latency, so the prefetcher's edge here is real but moderate.
    assert!(
        with_pf > without * 1.15,
        "prefetching must speed a line stream: on={with_pf:.3} off={without:.3}"
    );
}

#[test]
fn post_warmup_stats_cover_measured_phase_only() {
    // Guards the warm-up snapshot-subtract contract (`reset_stats` on the
    // private caches / uncore plus the DRAM/NoC queue `rebase`): a run
    // with a heavy warm-up must report DRAM and NoC traffic from the
    // measured phase only. With deterministic sources, a full run over
    // [0, W+M) decomposes into a prefix run over [0, W) plus the measured
    // phase of a warmed run (warmup W, measure M), so the warmed run's
    // totals must match full-minus-prefix, not the full totals.
    // 4 MB streams (vs a 2 MB LLC): the measured phase always has DRAM
    // traffic, so the decomposition is over steady-state streaming.
    let make = || -> Vec<Box<dyn InstructionSource>> {
        (0..2u64)
            .map(|i| stream_source("s", i << 40, 1 << 16, i * 997))
            .collect()
    };
    let w = 400_000u64;
    let m = 100_000u64;
    let run = |spec: RunSpec| {
        let mut sys = MulticoreSystem::new(cfg(2), make()).unwrap();
        sys.run(spec).unwrap()
    };
    let full = run(RunSpec {
        warmup_instructions: 0,
        measure_instructions: w + m,
    });
    let prefix = run(RunSpec {
        warmup_instructions: 0,
        measure_instructions: w,
    });
    let warmed = run(RunSpec {
        warmup_instructions: w,
        measure_instructions: m,
    });

    // The measured phase retires ~M instructions per core, not W+M.
    for c in &warmed.cores {
        assert!(
            c.instructions >= m && c.instructions < w,
            "measured-phase retire count {} must be ~{m}, far below the warmup {w}",
            c.instructions
        );
    }

    // Warm-up traffic must be excluded from every uncore counter.
    assert!(warmed.total_dram_bytes > 0, "stream must still miss");
    assert!(warmed.total_dram_bytes < full.total_dram_bytes);
    assert!(warmed.noc_transfers < full.noc_transfers);
    assert!(warmed.llc_accesses < full.llc_accesses);

    // Decomposition: prefix + warmed ≈ full (warm-up rounds up to a
    // synchronization boundary, so allow a small tolerance).
    let close = |a: u64, b: u64, what: &str| {
        let (a, b) = (a as f64, b as f64);
        assert!(
            (a - b).abs() <= 0.05 * b.max(1.0),
            "{what}: prefix+warmed = {a} vs full = {b}"
        );
    };
    close(
        prefix.total_dram_bytes + warmed.total_dram_bytes,
        full.total_dram_bytes,
        "DRAM bytes",
    );
    close(
        prefix.noc_transfers + warmed.noc_transfers,
        full.noc_transfers,
        "NoC transfers",
    );

    // Utilization-style rates are computed against measured-phase cycles
    // only: the warmed run's bandwidth must reflect its own phase, within
    // the same tolerance as the traffic decomposition.
    assert!(warmed.elapsed_cycles < full.elapsed_cycles);
    assert!(warmed.total_bandwidth_gbps > 0.0);
}

#[test]
fn total_instructions_conserved_across_stop_rule() {
    // Whatever the stop rule does, every core's retired count must be
    // consistent with its reported IPC and cycles.
    let sources: Vec<Box<dyn InstructionSource>> = (0..4u64)
        .map(|i| stream_source("s", i << 40, (1 << 10) << i, 0))
        .collect();
    let mut sys = MulticoreSystem::new(cfg(4), sources).unwrap();
    let r = sys.run(spec(100_000)).unwrap();
    for c in &r.cores {
        let implied = c.ipc * c.cycles as f64;
        assert!(
            (implied - c.instructions as f64).abs() < 1.0,
            "ipc*cycles must equal instructions for {}",
            c.label
        );
    }
    assert!(r.cores.iter().any(|c| c.instructions == 100_000));
}
