//! Bit-identity of parallel windowed simulation: for any `sim_threads`
//! setting, both the final [`SimResult`] and the per-epoch sample stream
//! must be indistinguishable from the sequential run — equal by value,
//! by `Debug` rendering, and (when a real serializer is available) byte
//! for byte as JSON.

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_sim::trace::{InstructionSource, MicroOp, VecSource};
use sms_sim::{EpochSample, RecordingSink, SimResult};

fn cfg(cores: u32) -> SystemConfig {
    let mut cfg = SystemConfig::target_32core();
    cfg.num_cores = cores;
    cfg.llc.num_slices = cores.next_power_of_two();
    let cols = cores.next_power_of_two().min(8);
    cfg.noc.mesh_cols = cols;
    cfg.noc.mesh_rows = cores.next_power_of_two().div_ceil(cols).max(1);
    cfg.dram.num_controllers = (cores / 4).max(1).next_power_of_two();
    // A short quantum so the run crosses many fork/merge barriers.
    cfg.sync_quantum = 2_000;
    cfg
}

/// A deliberately heterogeneous per-core workload: each core gets a
/// different blend of strided loads, pointer-chasing loads, stores (for
/// writeback traffic), and compute runs, over address windows sized so
/// some cores are LLC-resident and others stream through DRAM.
fn mixed_source(core: u64) -> Box<dyn InstructionSource> {
    let span_lines = 1u64 << (8 + core % 5); // 256..4096 lines
    let span_bytes = span_lines * 64;
    let base = core * (1 << 30);
    let stride = 8 + 8 * (core % 3);
    let ops: Vec<MicroOp> = (0..span_lines * 4)
        .flat_map(|i| {
            let addr = base + (i * stride) % span_bytes;
            [
                MicroOp::Compute {
                    count: 1 + (core as u32 % 4),
                },
                if i % 7 == core % 7 {
                    MicroOp::Store { addr }
                } else {
                    MicroOp::Load {
                        addr,
                        dependent: i % 3 == 0,
                    }
                },
            ]
        })
        .collect();
    Box::new(VecSource::new(format!("mix{core}"), ops))
}

fn sources(cores: u32) -> Vec<Box<dyn InstructionSource>> {
    (0..u64::from(cores)).map(mixed_source).collect()
}

const SPEC: RunSpec = RunSpec {
    warmup_instructions: 4_000,
    measure_instructions: 60_000,
};

/// Run at the given thread count and return the result (wall-clock field
/// zeroed — host time legitimately differs per run) plus the epoch
/// stream (empty when `with_sink` is false).
fn run_at(cores: u32, threads: u32, with_sink: bool) -> (SimResult, Vec<EpochSample>) {
    let mut machine = cfg(cores);
    machine.sim_threads = threads;
    let mut sys = MulticoreSystem::new(machine, sources(cores)).unwrap();
    let (mut r, samples) = if with_sink {
        let mut sink = RecordingSink::new();
        let r = sys.run_with_sink(SPEC, &mut sink).unwrap();
        (r, sink.into_samples())
    } else {
        (sys.run(SPEC).unwrap(), Vec::new())
    };
    r.host_seconds = 0.0;
    (r, samples)
}

/// Equality strong enough to call "bit-identical": structural, textual,
/// and — when the serializer is functional — serialized JSON bytes.
fn assert_identical(
    a: &(SimResult, Vec<EpochSample>),
    b: &(SimResult, Vec<EpochSample>),
    what: &str,
) {
    assert_eq!(a.0, b.0, "{what}: SimResult differs");
    assert_eq!(a.1, b.1, "{what}: epoch stream differs");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}: Debug differs");
    if let (Ok(ja), Ok(jb)) = (serde_json::to_string(&a.0), serde_json::to_string(&b.0)) {
        assert_eq!(ja, jb, "{what}: serialized SimResult differs");
    }
    if let (Ok(ja), Ok(jb)) = (serde_json::to_string(&a.1), serde_json::to_string(&b.1)) {
        assert_eq!(ja, jb, "{what}: serialized epoch stream differs");
    }
}

#[test]
fn parallel_runs_are_bit_identical_with_sink() {
    let baseline = run_at(8, 1, true);
    assert!(
        baseline.1.len() > 3,
        "expected several epochs, got {}",
        baseline.1.len()
    );
    for threads in [2u32, 8] {
        let parallel = run_at(8, threads, true);
        assert_identical(
            &baseline,
            &parallel,
            &format!("{threads} threads, sink attached"),
        );
    }
}

#[test]
fn parallel_runs_are_bit_identical_without_sink() {
    let baseline = run_at(8, 1, false);
    for threads in [2u32, 8] {
        let parallel = run_at(8, threads, false);
        assert_identical(&baseline, &parallel, &format!("{threads} threads, no sink"));
    }
}

#[test]
fn sink_attachment_does_not_perturb_results() {
    // The epoch sink is observation only: attaching it must not change
    // the simulation outcome at any thread count.
    for threads in [1u32, 2, 8] {
        let with = run_at(8, threads, true);
        let without = run_at(8, threads, false);
        assert_eq!(
            with.0, without.0,
            "sink attachment changed the result at {threads} threads"
        );
    }
}

#[test]
fn more_threads_than_cores_is_bit_identical() {
    // Oversubscription (8 worker threads, 4 cores) must degrade to the
    // same answer, not a different schedule-dependent one.
    let baseline = run_at(4, 1, true);
    let oversubscribed = run_at(4, 8, true);
    assert_identical(&baseline, &oversubscribed, "8 threads on 4 cores");
}
