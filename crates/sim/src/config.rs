//! System configuration types.
//!
//! A [`SystemConfig`] fully describes the simulated machine: the cores, the
//! private cache hierarchy, the shared NUCA last-level cache, the mesh NoC
//! and the DRAM subsystem. The paper's 32-core target system (Table II) is
//! available as [`SystemConfig::target_32core`]; scale models are derived
//! from it by the `sms-core` crate's scaling policies.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::prefetch::PrefetchConfig;

/// Cache-line size in bytes, fixed across the whole hierarchy.
pub const LINE_SIZE: u64 = 64;

/// Core frequency in GHz. Bandwidths expressed in GB/s are converted to
/// bytes/cycle using this frequency (e.g. 128 GB/s at 4 GHz = 32 B/cycle).
pub const CORE_FREQ_GHZ: f64 = 4.0;

/// Maximum simulated core count: core ids travel through the hierarchy as
/// `u8` (cache owner tags, invalidation queues), so 256 is a hard ceiling.
pub const MAX_CORES: u32 = 256;

/// Convert a bandwidth in GB/s into bytes per core cycle.
///
/// # Examples
///
/// ```
/// let bpc = sms_sim::config::gbps_to_bytes_per_cycle(128.0);
/// assert!((bpc - 32.0).abs() < 1e-9);
/// ```
pub fn gbps_to_bytes_per_cycle(gbps: f64) -> f64 {
    gbps / CORE_FREQ_GHZ
}

/// Out-of-order core parameters (paper Table II, "Processor").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Dispatch/issue width in instructions per cycle.
    pub issue_width: u32,
    /// Reorder-buffer size in entries; bounds the miss-overlap window.
    pub rob_size: u32,
    /// Maximum outstanding loads (paper: 48).
    pub max_outstanding_loads: u32,
    /// Maximum outstanding stores (paper: 32).
    pub max_outstanding_stores: u32,
    /// Maximum outstanding L1-D misses (paper: 10); bounds the MLP that the
    /// memory subsystem can extract.
    pub max_outstanding_l1d_misses: u32,
    /// Branch-misprediction flush penalty in cycles.
    pub branch_miss_penalty: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            issue_width: 4,
            rob_size: 128,
            max_outstanding_loads: 48,
            max_outstanding_stores: 32,
            max_outstanding_l1d_misses: 10,
            branch_miss_penalty: 15,
        }
    }
}

/// Geometry and latency of one set-associative cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Access latency in cycles (hit time).
    pub access_latency: u32,
    /// Replacement policy (default: true LRU).
    #[serde(default)]
    pub policy: crate::cache::ReplacementPolicy,
}

impl CacheConfig {
    /// Create a cache geometry, expressing capacity in KiB.
    pub fn new_kib(kib: u64, associativity: u32, access_latency: u32) -> Self {
        Self {
            capacity_bytes: kib * 1024,
            associativity,
            access_latency,
            policy: crate::cache::ReplacementPolicy::default(),
        }
    }

    /// Number of sets implied by capacity, line size and associativity.
    pub fn num_sets(&self) -> u64 {
        self.capacity_bytes / LINE_SIZE / u64::from(self.associativity)
    }

    /// Validate that the geometry is internally consistent.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if capacity is not an exact multiple of
    /// `associativity * LINE_SIZE`, or if the set count is not a power of
    /// two (required by the index function), or any field is zero.
    pub fn validate(&self, what: &'static str) -> Result<(), ConfigError> {
        if self.capacity_bytes == 0 || self.associativity == 0 {
            return Err(ConfigError::ZeroField(what));
        }
        if !self
            .capacity_bytes
            .is_multiple_of(LINE_SIZE * u64::from(self.associativity))
        {
            return Err(ConfigError::CacheGeometry(what));
        }
        let sets = self.num_sets();
        if sets == 0 || !sets.is_power_of_two() {
            return Err(ConfigError::CacheGeometry(what));
        }
        Ok(())
    }
}

/// Shared NUCA last-level cache: one slice per core, address-interleaved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Number of NUCA slices (one per core in the paper's design).
    pub num_slices: u32,
    /// Geometry of each individual slice.
    pub slice: CacheConfig,
}

impl LlcConfig {
    /// Total LLC capacity across all slices, in bytes.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.slice.capacity_bytes * u64::from(self.num_slices)
    }
}

/// Mesh on-chip network with explicit cross-section (bisection) links.
///
/// The paper scales NoC bandwidth via the number of cross-section links
/// (CSLs) and the bandwidth per CSL (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh width (columns). The 32-core target is a 4x8 mesh.
    pub mesh_cols: u32,
    /// Mesh height (rows).
    pub mesh_rows: u32,
    /// Per-hop router+link latency in cycles.
    pub hop_latency: u32,
    /// Number of cross-section links crossing the bisection.
    pub cross_section_links: u32,
    /// Bandwidth per cross-section link in GB/s.
    pub link_bandwidth_gbps: f64,
}

impl NocConfig {
    /// Aggregate bisection bandwidth in GB/s.
    pub fn bisection_bandwidth_gbps(&self) -> f64 {
        f64::from(self.cross_section_links) * self.link_bandwidth_gbps
    }

    /// Average hop count between a core and a uniformly random slice on an
    /// `rows x cols` mesh (Manhattan distance, uniform endpoints).
    pub fn average_hops(&self) -> f64 {
        // E|x1-x2| for independent uniforms over {0..n-1} is (n^2-1)/(3n).
        let e = |n: u32| -> f64 {
            let n = f64::from(n);
            (n * n - 1.0) / (3.0 * n)
        };
        e(self.mesh_cols) + e(self.mesh_rows)
    }
}

/// DRAM subsystem: address-interleaved memory controllers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of memory controllers.
    pub num_controllers: u32,
    /// Bandwidth per controller in GB/s.
    pub controller_bandwidth_gbps: f64,
    /// Uncontended DRAM access latency in cycles (row access + channel).
    pub base_latency: u32,
    /// Optional open-page row-buffer model (default: off; the flat-latency
    /// model is what the reference experiments use).
    #[serde(default)]
    pub row_buffer: Option<crate::dram::RowBufferConfig>,
}

impl DramConfig {
    /// Aggregate DRAM bandwidth in GB/s.
    pub fn total_bandwidth_gbps(&self) -> f64 {
        f64::from(self.num_controllers) * self.controller_bandwidth_gbps
    }
}

/// Complete description of a simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores (= number of co-running benchmark instances).
    pub num_cores: u32,
    /// Core microarchitecture, identical across cores.
    pub core: CoreConfig,
    /// Private L1 instruction cache.
    pub l1i: CacheConfig,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared NUCA LLC.
    pub llc: LlcConfig,
    /// On-chip network.
    pub noc: NocConfig,
    /// Main memory.
    pub dram: DramConfig,
    /// Barrier-synchronization quantum in cycles (simulator knob, not a
    /// hardware parameter). Cores run ahead at most this far between
    /// synchronizations with the shared-resource models.
    pub sync_quantum: u64,
    /// Whether the LLC is inclusive of the private caches (evictions
    /// back-invalidate private copies) or non-inclusive (private copies
    /// survive LLC evictions, as in recent server parts).
    pub inclusive_llc: bool,
    /// Per-core stride prefetcher.
    pub prefetch: PrefetchConfig,
    /// Host threads used to run per-core interval simulations inside each
    /// sync window (simulator knob, not a hardware parameter). Results are
    /// bit-identical at any value; only host wall time changes. Excluded
    /// from serialization so cache keys and experiment artifacts are
    /// unaffected by the host execution strategy.
    #[serde(skip, default = "default_sim_threads")]
    pub sim_threads: u32,
}

/// Serde default for [`SystemConfig::sim_threads`]: sequential execution.
fn default_sim_threads() -> u32 {
    1
}

impl SystemConfig {
    /// The paper's Table II 32-core target system.
    ///
    /// 4-wide OoO cores at 4 GHz, 128-entry ROB, 32 KB L1-I/L1-D, 256 KB L2,
    /// 32 MB NUCA LLC (32 slices of 1 MB), 4x8 mesh with 128 GB/s bisection
    /// bandwidth (4 CSLs at 32 GB/s) and 8 memory controllers totalling
    /// 128 GB/s.
    ///
    /// # Examples
    ///
    /// ```
    /// use sms_sim::config::SystemConfig;
    /// let t = SystemConfig::target_32core();
    /// assert_eq!(t.num_cores, 32);
    /// assert_eq!(t.llc.total_capacity_bytes(), 32 * 1024 * 1024);
    /// assert!((t.dram.total_bandwidth_gbps() - 128.0).abs() < 1e-9);
    /// ```
    pub fn target_32core() -> Self {
        Self {
            num_cores: 32,
            core: CoreConfig::default(),
            l1i: CacheConfig::new_kib(32, 4, 4),
            l1d: CacheConfig::new_kib(32, 8, 4),
            l2: CacheConfig::new_kib(256, 8, 8),
            llc: LlcConfig {
                num_slices: 32,
                slice: CacheConfig::new_kib(1024, 64, 30),
            },
            noc: NocConfig {
                mesh_cols: 8,
                mesh_rows: 4,
                hop_latency: 2,
                cross_section_links: 4,
                link_bandwidth_gbps: 32.0,
            },
            dram: DramConfig {
                num_controllers: 8,
                controller_bandwidth_gbps: 16.0,
                base_latency: 240,
                row_buffer: None,
            },
            sync_quantum: 1_000,
            inclusive_llc: false,
            prefetch: PrefetchConfig::default(),
            sim_threads: default_sim_threads(),
        }
    }

    /// Validate the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency found:
    /// zero-sized structures, non-power-of-two cache sets, a mesh that does
    /// not cover `num_cores`, or an LLC slice count that is not a power of
    /// two (required for address interleaving).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_cores == 0 {
            return Err(ConfigError::ZeroField("num_cores"));
        }
        if self.num_cores > MAX_CORES {
            return Err(ConfigError::TooManyCores(self.num_cores));
        }
        if self.sim_threads == 0 {
            return Err(ConfigError::ZeroField("sim_threads"));
        }
        self.l1i.validate("l1i")?;
        self.l1d.validate("l1d")?;
        self.l2.validate("l2")?;
        self.llc.slice.validate("llc slice")?;
        if self.llc.num_slices == 0 || !self.llc.num_slices.is_power_of_two() {
            return Err(ConfigError::SliceCount(self.llc.num_slices));
        }
        if self.noc.mesh_cols * self.noc.mesh_rows < self.num_cores {
            return Err(ConfigError::MeshTooSmall {
                cols: self.noc.mesh_cols,
                rows: self.noc.mesh_rows,
                cores: self.num_cores,
            });
        }
        if self.noc.cross_section_links == 0 {
            return Err(ConfigError::ZeroField("cross_section_links"));
        }
        if self.noc.link_bandwidth_gbps <= 0.0 {
            return Err(ConfigError::NonPositiveBandwidth("noc link"));
        }
        if self.dram.num_controllers == 0 || !self.dram.num_controllers.is_power_of_two() {
            return Err(ConfigError::ControllerCount(self.dram.num_controllers));
        }
        if self.dram.controller_bandwidth_gbps <= 0.0 {
            return Err(ConfigError::NonPositiveBandwidth("dram controller"));
        }
        if self.core.issue_width == 0 || self.core.rob_size == 0 {
            return Err(ConfigError::ZeroField("core"));
        }
        if self.sync_quantum == 0 {
            return Err(ConfigError::ZeroField("sync_quantum"));
        }
        if self.prefetch.enabled && (self.prefetch.degree == 0 || self.prefetch.streams == 0) {
            return Err(ConfigError::ZeroField("prefetch degree/streams"));
        }
        if let Some(rb) = &self.dram.row_buffer {
            if rb.banks == 0 || rb.row_bytes < crate::config::LINE_SIZE {
                return Err(ConfigError::ZeroField("row_buffer banks/row_bytes"));
            }
        }
        Ok(())
    }

    /// One-line human-readable summary, convenient for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "{} cores | LLC {} MB ({} slices) | NoC {:.0} GB/s ({} CSLs x {:.0} GB/s) | DRAM {:.0} GB/s ({} MCs x {:.0} GB/s)",
            self.num_cores,
            self.llc.total_capacity_bytes() / (1024 * 1024),
            self.llc.num_slices,
            self.noc.bisection_bandwidth_gbps(),
            self.noc.cross_section_links,
            self.noc.link_bandwidth_gbps,
            self.dram.total_bandwidth_gbps(),
            self.dram.num_controllers,
            self.dram.controller_bandwidth_gbps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_system_matches_table_ii() {
        let t = SystemConfig::target_32core();
        t.validate().expect("target config must validate");
        assert_eq!(t.num_cores, 32);
        assert_eq!(t.core.issue_width, 4);
        assert_eq!(t.core.rob_size, 128);
        assert_eq!(t.l1i.capacity_bytes, 32 * 1024);
        assert_eq!(t.l1i.associativity, 4);
        assert_eq!(t.l1d.capacity_bytes, 32 * 1024);
        assert_eq!(t.l1d.associativity, 8);
        assert_eq!(t.l2.capacity_bytes, 256 * 1024);
        assert_eq!(t.llc.num_slices, 32);
        assert_eq!(t.llc.slice.capacity_bytes, 1024 * 1024);
        assert_eq!(t.llc.slice.associativity, 64);
        assert!((t.noc.bisection_bandwidth_gbps() - 128.0).abs() < 1e-9);
        assert_eq!(t.dram.num_controllers, 8);
        assert!((t.dram.total_bandwidth_gbps() - 128.0).abs() < 1e-9);
        assert_eq!(t.noc.mesh_cols * t.noc.mesh_rows, 32);
    }

    #[test]
    fn cache_sets_power_of_two() {
        let c = CacheConfig::new_kib(32, 8, 4);
        assert_eq!(c.num_sets(), 64);
        c.validate("l1d").unwrap();
    }

    #[test]
    fn invalid_geometry_rejected() {
        let c = CacheConfig {
            capacity_bytes: 3000,
            associativity: 8,
            access_latency: 4,
            policy: Default::default(),
        };
        assert!(c.validate("bad").is_err());
    }

    #[test]
    fn zero_cores_rejected() {
        let mut t = SystemConfig::target_32core();
        t.num_cores = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn zero_associativity_is_a_zero_field_error() {
        let c = CacheConfig {
            capacity_bytes: 32 * 1024,
            associativity: 0,
            access_latency: 4,
            policy: Default::default(),
        };
        assert_eq!(c.validate("l1d"), Err(ConfigError::ZeroField("l1d")));
        let mut t = SystemConfig::target_32core();
        t.l2.associativity = 0;
        assert_eq!(t.validate(), Err(ConfigError::ZeroField("l2")));
    }

    #[test]
    fn non_power_of_two_set_count_is_a_geometry_error() {
        // 48 KiB at 8 ways and 64-byte lines gives 96 sets: an exact
        // way-size multiple, but not a power of two.
        let c = CacheConfig::new_kib(48, 8, 4);
        assert_eq!(c.num_sets(), 96);
        assert_eq!(c.validate("l2"), Err(ConfigError::CacheGeometry("l2")));
    }

    #[test]
    fn zero_capacity_llc_slice_rejected() {
        let mut t = SystemConfig::target_32core();
        t.llc.slice.capacity_bytes = 0;
        assert_eq!(t.validate(), Err(ConfigError::ZeroField("llc slice")));
        assert_eq!(t.llc.total_capacity_bytes(), 0);
    }

    #[test]
    fn non_power_of_two_llc_slice_count_rejected() {
        let mut t = SystemConfig::target_32core();
        t.llc.num_slices = 12;
        assert_eq!(t.validate(), Err(ConfigError::SliceCount(12)));
    }

    #[test]
    fn mesh_must_cover_cores() {
        let mut t = SystemConfig::target_32core();
        t.noc.mesh_cols = 2;
        t.noc.mesh_rows = 2;
        assert!(t.validate().is_err());
    }

    #[test]
    fn prefetch_and_row_buffer_validated() {
        let mut t = SystemConfig::target_32core();
        t.prefetch.degree = 0;
        assert!(t.validate().is_err());
        let mut t = SystemConfig::target_32core();
        t.dram.row_buffer = Some(crate::dram::RowBufferConfig {
            banks: 0,
            ..Default::default()
        });
        assert!(t.validate().is_err());
        let mut t = SystemConfig::target_32core();
        t.dram.row_buffer = Some(Default::default());
        t.validate().unwrap();
    }

    #[test]
    fn bandwidth_conversion() {
        assert!((gbps_to_bytes_per_cycle(4.0) - 1.0).abs() < 1e-12);
        assert!((gbps_to_bytes_per_cycle(16.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn average_hops_reasonable() {
        let t = SystemConfig::target_32core();
        let h = t.noc.average_hops();
        // 4x8 mesh: E[hops] = (64-1)/24 + (16-1)/12 = 2.625 + 1.25 = 3.875.
        assert!((h - 3.875).abs() < 1e-9, "got {h}");
    }

    #[test]
    fn serde_round_trip() {
        let t = SystemConfig::target_32core();
        let s = serde_json::to_string(&t).unwrap();
        let back: SystemConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn too_many_cores_rejected() {
        let mut t = SystemConfig::target_32core();
        t.num_cores = 257;
        t.noc.mesh_cols = 32;
        t.noc.mesh_rows = 32;
        assert_eq!(t.validate(), Err(ConfigError::TooManyCores(257)));
    }

    #[test]
    fn zero_sim_threads_rejected() {
        let mut t = SystemConfig::target_32core();
        t.sim_threads = 0;
        assert_eq!(t.validate(), Err(ConfigError::ZeroField("sim_threads")));
    }

    #[test]
    fn sim_threads_never_serialized() {
        let mut t = SystemConfig::target_32core();
        t.sim_threads = 8;
        let s = serde_json::to_string(&t).unwrap();
        assert!(
            !s.contains("sim_threads"),
            "host execution strategy must not leak into cache keys"
        );
        let back: SystemConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back.sim_threads, 1, "deserialization restores the default");
    }
}
