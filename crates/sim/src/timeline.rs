//! Epoch-resolved simulation timelines.
//!
//! Every synchronization window ("epoch") of the measured phase the run
//! loop can emit one [`EpochSample`] — cumulative per-core progress plus
//! LLC / NoC / DRAM state, all relative to the start of the measured
//! phase — through any [`TimelineSink`]. With the default
//! [`NullSink`] the loop skips sample construction entirely, so a
//! non-recording run pays one virtual `enabled()` call per quantum.
//!
//! [`SimTimeline`] wraps a recorded sample stream with enough metadata
//! to interpret it and derives the per-epoch rate series (IPC, LLC hit
//! rate, DRAM bandwidth, queue delay) that `sms timeline` renders.

use serde::{Deserialize, Serialize};

pub use sms_obs::{NullSink, RecordingSink, TimelineSink};

use crate::config::CORE_FREQ_GHZ;

/// One sample taken at a synchronization-window boundary of the measured
/// phase. Counters are cumulative since the start of the measured phase
/// (epoch deltas come from subtracting consecutive samples); occupancy is
/// instantaneous.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochSample {
    /// Zero-based index of the sync window this sample closes.
    pub epoch: u64,
    /// Global cycle at the window barrier, relative to measure start.
    pub cycle: u64,
    /// Retired instructions per core.
    pub instructions: Vec<u64>,
    /// Elapsed core cycles per core (cores sleep once finished, so these
    /// can trail `cycle`).
    pub core_cycles: Vec<u64>,
    /// LLC demand accesses.
    pub llc_accesses: u64,
    /// LLC demand hits.
    pub llc_hits: u64,
    /// Valid LLC lines right now (instantaneous).
    pub llc_occupancy: u64,
    /// NoC transfers routed.
    pub noc_transfers: u64,
    /// NoC bisection crossings.
    pub noc_crossings: u64,
    /// DRAM bytes transferred (reads + writebacks).
    pub dram_bytes: u64,
    /// DRAM requests per memory controller.
    pub dram_requests: Vec<u64>,
    /// Summed DRAM queue-wait cycles per memory controller (divide a
    /// delta by the epoch's cycles for the mean queue depth, per
    /// Little's law).
    pub dram_queue_wait: Vec<u64>,
}

/// A recorded epoch timeline: metadata plus samples in epoch order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTimeline {
    /// Synchronization quantum (cycles per epoch) the run used.
    pub sync_quantum: u64,
    /// Number of cores in the simulated system.
    pub num_cores: u32,
    /// Samples, one per sync window, in time order.
    pub samples: Vec<EpochSample>,
}

/// Per-epoch derived rates between consecutive samples (the first epoch
/// is measured against the zero state at measure start).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRates {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Global cycle at the end of the epoch.
    pub cycle: u64,
    /// Aggregate instructions per global cycle over the epoch.
    pub ipc: f64,
    /// LLC demand hit rate over the epoch (0 when no accesses).
    pub llc_hit_rate: f64,
    /// LLC lines valid at the end of the epoch.
    pub llc_occupancy: u64,
    /// NoC transfers per kilo-cycle over the epoch.
    pub noc_transfers_per_kcycle: f64,
    /// Aggregate DRAM bandwidth in GB/s over the epoch.
    pub dram_gbps: f64,
    /// Mean DRAM queue depth per controller over the epoch
    /// (queue-wait cycles accumulated / cycles elapsed).
    pub queue_depth: Vec<f64>,
}

fn delta_vec(after: &[u64], before: &[u64]) -> Vec<u64> {
    after
        .iter()
        .zip(before)
        .map(|(a, b)| a.saturating_sub(*b))
        .collect()
}

impl SimTimeline {
    /// Derived per-epoch rates; empty when no samples were recorded.
    pub fn epoch_rates(&self) -> Vec<EpochRates> {
        let zero = |s: &EpochSample| EpochSample {
            epoch: 0,
            cycle: 0,
            instructions: vec![0; s.instructions.len()],
            core_cycles: vec![0; s.core_cycles.len()],
            llc_accesses: 0,
            llc_hits: 0,
            llc_occupancy: 0,
            noc_transfers: 0,
            noc_crossings: 0,
            dram_bytes: 0,
            dram_requests: vec![0; s.dram_requests.len()],
            dram_queue_wait: vec![0; s.dram_queue_wait.len()],
        };
        let mut rates = Vec::with_capacity(self.samples.len());
        for (i, s) in self.samples.iter().enumerate() {
            let baseline = if i == 0 {
                zero(s)
            } else {
                self.samples[i - 1].clone()
            };
            // Zero-cycle epochs (duplicate or out-of-order samples) have no
            // meaningful rates: report 0.0 instead of letting a zero
            // denominator leak NaN/inf into renders and CSV exports.
            let dcycles = s.cycle.saturating_sub(baseline.cycle);
            let rate = |delta: u64| {
                if dcycles == 0 {
                    0.0
                } else {
                    delta as f64 / dcycles as f64
                }
            };
            let di: u64 = delta_vec(&s.instructions, &baseline.instructions)
                .iter()
                .sum();
            let da = s.llc_accesses - baseline.llc_accesses;
            let dh = s.llc_hits - baseline.llc_hits;
            rates.push(EpochRates {
                epoch: s.epoch,
                cycle: s.cycle,
                ipc: rate(di),
                llc_hit_rate: if da == 0 { 0.0 } else { dh as f64 / da as f64 },
                llc_occupancy: s.llc_occupancy,
                noc_transfers_per_kcycle: rate(s.noc_transfers - baseline.noc_transfers) * 1000.0,
                dram_gbps: rate(s.dram_bytes - baseline.dram_bytes) * CORE_FREQ_GHZ,
                queue_depth: delta_vec(&s.dram_queue_wait, &baseline.dram_queue_wait)
                    .iter()
                    .map(|&w| rate(w))
                    .collect(),
            });
        }
        rates
    }

    /// Render the timeline as a human-readable table: one line per epoch
    /// with IPC, LLC hit rate and occupancy, NoC activity, DRAM bandwidth
    /// and the worst per-controller mean queue depth.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:>6} {:>12} {:>7} {:>7} {:>9} {:>9} {:>8} {:>9}\n",
            "epoch", "cycle", "IPC", "LLC%", "LLCocc", "NoC/kc", "BW GB/s", "maxQdep"
        );
        for r in self.epoch_rates() {
            let max_q = r.queue_depth.iter().cloned().fold(0.0f64, f64::max);
            out.push_str(&format!(
                "{:>6} {:>12} {:>7.3} {:>7.1} {:>9} {:>9.1} {:>8.2} {:>9.2}\n",
                r.epoch,
                r.cycle,
                r.ipc,
                r.llc_hit_rate * 100.0,
                r.llc_occupancy,
                r.noc_transfers_per_kcycle,
                r.dram_gbps,
                max_q
            ));
        }
        out.push_str(&format!(
            "{} epochs of {} cycles, {} cores",
            self.samples.len(),
            self.sync_quantum,
            self.num_cores
        ));
        out
    }

    /// Render as CSV (header plus one row per epoch; queue depth is the
    /// per-controller maximum).
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "epoch,cycle,ipc,llc_hit_rate,llc_occupancy,noc_transfers_per_kcycle,dram_gbps,max_queue_depth\n",
        );
        for r in self.epoch_rates() {
            let max_q = r.queue_depth.iter().cloned().fold(0.0f64, f64::max);
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                r.epoch,
                r.cycle,
                r.ipc,
                r.llc_hit_rate,
                r.llc_occupancy,
                r.noc_transfers_per_kcycle,
                r.dram_gbps,
                max_q
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64, cycle: u64, instrs: u64, bytes: u64) -> EpochSample {
        EpochSample {
            epoch,
            cycle,
            instructions: vec![instrs],
            core_cycles: vec![cycle],
            llc_accesses: 10 * (epoch + 1),
            llc_hits: 5 * (epoch + 1),
            llc_occupancy: 100,
            noc_transfers: 2 * (epoch + 1),
            noc_crossings: epoch + 1,
            dram_bytes: bytes,
            dram_requests: vec![epoch + 1],
            dram_queue_wait: vec![(epoch + 1) * 500],
        }
    }

    fn timeline() -> SimTimeline {
        SimTimeline {
            sync_quantum: 1000,
            num_cores: 1,
            samples: vec![sample(0, 1000, 2000, 6400), sample(1, 2000, 4000, 12800)],
        }
    }

    #[test]
    fn epoch_rates_are_deltas() {
        let rates = timeline().epoch_rates();
        assert_eq!(rates.len(), 2);
        // Both epochs retire 2000 instructions in 1000 cycles.
        for r in &rates {
            assert!((r.ipc - 2.0).abs() < 1e-12, "ipc {}", r.ipc);
            assert!((r.llc_hit_rate - 0.5).abs() < 1e-12);
            // 500 wait-cycles accumulated over 1000 cycles -> depth 0.5.
            assert!((r.queue_depth[0] - 0.5).abs() < 1e-12);
        }
        assert!((rates[0].dram_gbps - rates[1].dram_gbps).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_epochs_yield_finite_zero_rates() {
        // A duplicate sample (no cycles elapsed) must not produce NaN/inf.
        let tl = SimTimeline {
            sync_quantum: 1000,
            num_cores: 1,
            samples: vec![sample(0, 1000, 2000, 6400), sample(1, 1000, 2500, 9000)],
        };
        let rates = tl.epoch_rates();
        let r = &rates[1];
        assert_eq!(r.ipc, 0.0);
        assert_eq!(r.noc_transfers_per_kcycle, 0.0);
        assert_eq!(r.dram_gbps, 0.0);
        assert!(r.queue_depth.iter().all(|q| *q == 0.0));
        let csv = tl.render_csv();
        assert!(!csv.contains("NaN") && !csv.contains("inf"), "{csv}");
    }

    #[test]
    fn render_lists_every_epoch() {
        let text = timeline().render();
        assert!(text.contains("epoch"));
        assert!(text.contains("2 epochs of 1000 cycles, 1 cores"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = timeline().render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("epoch,cycle,ipc"));
        assert!(lines[1].starts_with("0,1000,2,"));
    }

    #[test]
    fn serde_round_trip() {
        let tl = timeline();
        let s = serde_json::to_string(&tl).unwrap();
        let back: SimTimeline = serde_json::from_str(&s).unwrap();
        assert_eq!(tl, back);
    }
}
