//! # sms-sim — multicore architectural simulator substrate
//!
//! A trace-driven, windowed-synchronization multicore simulator in the
//! spirit of Sniper/Graphite, built as the simulation substrate for the
//! *Scale-Model Architectural Simulation* methodology (Liu et al.,
//! ISPASS 2022):
//!
//! * interval-style out-of-order core timing model ([`core_model`]),
//! * private L1-I/L1-D/L2 caches and a shared, line-interleaved NUCA LLC
//!   with inclusive back-invalidation ([`cache`], [`nuca`], [`hierarchy`]),
//! * a mesh NoC with explicit cross-section-link bandwidth queueing
//!   ([`noc`]),
//! * DRAM with per-memory-controller bandwidth queues ([`dram`]),
//! * a quantum-synchronized multiprogram run loop with the paper's
//!   "first benchmark finishes" stop rule ([`system`]).
//!
//! # Example
//!
//! Simulate two synthetic instruction streams on a 2-core machine:
//!
//! ```
//! use sms_sim::config::SystemConfig;
//! use sms_sim::system::{MulticoreSystem, RunSpec};
//! use sms_sim::trace::{InstructionSource, MicroOp, VecSource};
//!
//! # fn main() -> Result<(), sms_sim::error::SimError> {
//! let mut cfg = SystemConfig::target_32core();
//! cfg.num_cores = 2;
//! cfg.llc.num_slices = 2;
//! cfg.noc.mesh_cols = 2;
//! cfg.noc.mesh_rows = 1;
//!
//! let sources: Vec<Box<dyn InstructionSource>> = (0..2)
//!     .map(|i| {
//!         Box::new(VecSource::new(
//!             format!("stream-{i}"),
//!             vec![MicroOp::Compute { count: 8 }, MicroOp::Load { addr: 64 * i, dependent: false }],
//!         )) as Box<dyn InstructionSource>
//!     })
//!     .collect();
//!
//! let mut system = MulticoreSystem::new(cfg, sources)?;
//! let result = system.run(RunSpec::with_default_warmup(100_000))?;
//! assert!(result.cores[0].ipc > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod config;
pub mod core_model;
pub mod dram;
pub mod error;
pub mod hierarchy;
pub mod noc;
pub mod nuca;
pub mod prefetch;
pub mod profile;
pub mod queue;
pub mod shard;
pub mod stats;
pub mod system;
pub mod timeline;
pub mod trace;

pub use config::SystemConfig;
pub use error::{ConfigError, SimError};
pub use profile::SimProf;
pub use stats::{CoreResult, SimResult};
pub use system::{MulticoreSystem, RunSpec};
pub use timeline::{EpochSample, NullSink, RecordingSink, SimTimeline, TimelineSink};
pub use trace::{InstructionSource, MicroOp};
