//! Bandwidth queue tolerant of out-of-order request timestamps.
//!
//! Windowed-synchronization simulators deliver requests to shared queues
//! with timestamps that are only loosely ordered across cores (each core
//! runs ahead within its quantum). A naive single-`next_free` server
//! punishes a late-arriving early timestamp with the full backlog of
//! requests that were *recorded* earlier but *happen* later. The standard
//! fix (Sniper's `QueueModelHistoryList`) keeps a list of busy intervals
//! and lets each request claim the earliest idle gap at or after its
//! arrival time.

/// A single-server queue tracked as a sorted list of busy intervals.
#[derive(Debug, Clone)]
pub struct HistoryQueue {
    /// Disjoint, sorted `(start, end)` busy intervals.
    intervals: Vec<(f64, f64)>,
    /// Total busy time recorded (for utilization statistics).
    busy_time: f64,
}

/// Maximum number of remembered busy intervals; beyond this the oldest are
/// forgotten (their gaps can no longer be filled, a harmless approximation).
const MAX_INTERVALS: usize = 256;

/// Gap (in cycles) below which two busy intervals are considered touching
/// and coalesced. Interval endpoints are built from independently
/// accumulated `f64` sums (per-core timestamps vs. chained service times),
/// so logically adjacent intervals differ by rounding error and exact
/// equality almost never merges them; the list then fragments until
/// [`MAX_INTERVALS`] silently drops history. A sub-cycle epsilon merges
/// those while leaving genuine idle gaps (>= 1 cycle) alone.
const COALESCE_EPS: f64 = 1e-6;

impl HistoryQueue {
    /// An initially idle queue.
    pub fn new() -> Self {
        Self {
            intervals: Vec::with_capacity(64),
            busy_time: 0.0,
        }
    }

    /// Request `service` units of the server at time `now`; returns the
    /// wait until service begins (0 when an idle gap is available
    /// immediately).
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `service` is not positive.
    pub fn request(&mut self, now: f64, service: f64) -> f64 {
        debug_assert!(service > 0.0, "service time must be positive");
        self.busy_time += service;

        // Find the first interval that could conflict: the earliest with
        // end > now. Intervals are disjoint and sorted, so both starts and
        // ends are increasing and we can binary-search on end.
        let mut idx = self.intervals.partition_point(|iv| iv.1 <= now);
        let mut t = now;
        while idx < self.intervals.len() {
            let (s, e) = self.intervals[idx];
            if t + service <= s {
                break; // fits in the gap before interval idx
            }
            t = t.max(e);
            idx += 1;
        }

        // Claim [t, t + service), coalescing with touching neighbours.
        let end = t + service;
        // `t >= intervals[idx-1].1` and `end <= intervals[idx].0` hold by
        // construction, so the gap widths below are non-negative.
        let touches_prev = idx > 0 && t - self.intervals[idx - 1].1 <= COALESCE_EPS;
        let touches_next =
            idx < self.intervals.len() && self.intervals[idx].0 - end <= COALESCE_EPS;
        match (touches_prev, touches_next) {
            (true, true) => {
                self.intervals[idx - 1].1 = self.intervals[idx].1;
                self.intervals.remove(idx);
            }
            (true, false) => self.intervals[idx - 1].1 = end,
            (false, true) => self.intervals[idx].0 = t,
            (false, false) => self.intervals.insert(idx, (t, end)),
        }

        if self.intervals.len() > MAX_INTERVALS {
            let drop = self.intervals.len() - MAX_INTERVALS;
            self.intervals.drain(..drop);
        }

        t - now
    }

    /// Shift all interval timestamps down by `origin`, clamping at zero
    /// (post-warmup clock rebase).
    pub fn rebase(&mut self, origin: f64) {
        for iv in &mut self.intervals {
            iv.0 = (iv.0 - origin).max(0.0);
            iv.1 = (iv.1 - origin).max(0.0);
        }
        self.intervals.retain(|iv| iv.1 > iv.0);
    }

    /// Total busy time ever recorded.
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }

    /// Number of remembered busy intervals (diagnostics).
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }
}

impl Default for HistoryQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_serves_immediately() {
        let mut q = HistoryQueue::new();
        assert_eq!(q.request(100.0, 16.0), 0.0);
    }

    #[test]
    fn back_to_back_requests_queue_in_order() {
        let mut q = HistoryQueue::new();
        assert_eq!(q.request(0.0, 16.0), 0.0);
        assert_eq!(q.request(0.0, 16.0), 16.0);
        assert_eq!(q.request(0.0, 16.0), 32.0);
    }

    #[test]
    fn late_early_timestamp_fills_idle_gap() {
        let mut q = HistoryQueue::new();
        // A request recorded first but timestamped far in the future...
        assert_eq!(q.request(8000.0, 16.0), 0.0);
        // ...must not delay a request that actually happens earlier.
        assert_eq!(q.request(100.0, 16.0), 0.0);
        assert_eq!(q.interval_count(), 2);
    }

    #[test]
    fn gap_too_small_pushes_past_interval() {
        let mut q = HistoryQueue::new();
        q.request(0.0, 16.0); // busy [0,16)
        q.request(20.0, 16.0); // busy [20,36)
                               // A 10-cycle service fits the [16,20) gap only if <= 4 wide; it is
                               // not, so it lands after 36.
        let wait = q.request(10.0, 10.0);
        assert_eq!(wait, 26.0); // starts at 36
    }

    #[test]
    fn small_service_fits_interior_gap() {
        let mut q = HistoryQueue::new();
        q.request(0.0, 16.0); // [0,16)
        q.request(20.0, 16.0); // [20,36)
        let wait = q.request(10.0, 4.0); // fits exactly in [16,20)
        assert_eq!(wait, 6.0);
    }

    #[test]
    fn coalescing_keeps_list_compact() {
        let mut q = HistoryQueue::new();
        for _ in 0..100 {
            q.request(0.0, 16.0);
        }
        // All requests chain back to back into one busy interval.
        assert_eq!(q.interval_count(), 1);
        assert_eq!(q.busy_time(), 1600.0);
    }

    #[test]
    fn saturation_wait_grows_linearly() {
        let mut q = HistoryQueue::new();
        let mut last = 0.0;
        for i in 0..100 {
            last = q.request(i as f64 * 8.0, 16.0); // offered 2x capacity
        }
        assert!(last > 700.0, "expected heavy queueing, got {last}");
    }

    #[test]
    fn rebase_shifts_and_drops_stale() {
        let mut q = HistoryQueue::new();
        q.request(100.0, 16.0);
        q.request(1000.0, 16.0);
        q.rebase(500.0);
        // First interval collapsed to zero-length and was dropped; second
        // shifted to [500, 516).
        assert_eq!(q.interval_count(), 1);
        let w = q.request(500.0, 16.0);
        assert_eq!(w, 16.0);
    }

    #[test]
    fn interval_cap_bounds_memory() {
        let mut q = HistoryQueue::new();
        // Widely separated intervals cannot coalesce.
        for i in 0..1000 {
            q.request(i as f64 * 100.0, 1.0);
        }
        assert!(q.interval_count() <= MAX_INTERVALS);
    }

    #[test]
    fn float_drift_adjacent_intervals_coalesce() {
        // Regression: arrival timestamps computed by multiplication
        // (`i * dt`) and interval ends accumulated by addition drift apart
        // by rounding error, so adjacent intervals used to fail the exact
        // `==` coalescing check and fragment the list until MAX_INTERVALS
        // dropped history. With epsilon coalescing the saturated queue
        // collapses to a handful of intervals.
        let mut q = HistoryQueue::new();
        let dt = 1.0 / 3.0;
        for i in 0..5_000 {
            // Offered load exactly matches capacity: every request lands
            // flush against the previous one, modulo float error.
            q.request(i as f64 * dt, dt);
        }
        assert!(
            q.interval_count() <= 4,
            "drifted back-to-back intervals must coalesce, got {} intervals",
            q.interval_count()
        );
        // Sanity: the queue is still a correct server — a request at time
        // zero waits behind the whole backlog.
        let wait = q.request(0.0, 1.0);
        assert!(wait > 1000.0, "expected full backlog wait, got {wait}");
    }

    #[test]
    fn genuine_idle_gaps_are_not_absorbed() {
        let mut q = HistoryQueue::new();
        q.request(0.0, 16.0); // [0,16)
        q.request(17.0, 16.0); // [17,33): a 1-cycle gap, far above EPS
        assert_eq!(q.interval_count(), 2);
    }

    #[test]
    fn exact_fit_gap() {
        let mut q = HistoryQueue::new();
        q.request(0.0, 10.0); // [0,10)
        q.request(20.0, 10.0); // [20,30)
        let w = q.request(10.0, 10.0); // exactly [10,20)
        assert_eq!(w, 0.0);
        assert_eq!(q.interval_count(), 1, "all three coalesce");
    }
}
