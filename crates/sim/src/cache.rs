//! Set-associative cache with true-LRU replacement, write-back and
//! write-allocate policies, and per-line owner tracking.
//!
//! Addresses at this layer are *line* addresses (byte address divided by
//! [`LINE_SIZE`](crate::config::LINE_SIZE)); the hierarchy does the shift
//! once. The owner field records which core inserted a line so that the
//! shared LLC can back-invalidate private copies on eviction (inclusive
//! hierarchy).

use serde::{Deserialize, Serialize};

use crate::config::CacheConfig;

/// A line address: byte address right-shifted by `log2(LINE_SIZE)`.
pub type LineAddr = u64;

/// Replacement policy of a set-associative cache.
///
/// True LRU is the default and what the experiments use; the alternatives
/// exist for the `ablation_replacement` study and for users modelling
/// hardware that cannot afford full LRU state (as real LLCs cannot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// True least-recently-used (per-way timestamps).
    #[default]
    Lru,
    /// Tree pseudo-LRU (one bit per internal node of a binary tree).
    /// Requires a power-of-two associativity.
    TreePlru,
    /// Static re-reference interval prediction (SRRIP, 2-bit RRPV;
    /// Jaleel et al., ISCA 2010): scan-resistant approximation used by
    /// modern LLCs.
    Srrip,
    /// Uniform-random victim selection (deterministic xorshift stream).
    Random,
}

/// Statistics kept by every cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups (reads + writes).
    pub accesses: u64,
    /// Demand lookups that hit.
    pub hits: u64,
    /// Lines filled after a miss.
    pub fills: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Displaced lines that were dirty (caused a writeback).
    pub dirty_evictions: u64,
    /// Lines removed by external invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Demand misses.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// A line displaced from the cache, either by a fill or an invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line address of the victim.
    pub line: LineAddr,
    /// Whether the victim held modified data (must be written back).
    pub dirty: bool,
    /// Core that owned the victim.
    pub owner: u8,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    /// Policy metadata: LRU timestamp, or SRRIP re-reference value.
    lru: u32,
    valid: bool,
    dirty: bool,
    owner: u8,
}

const INVALID: Way = Way {
    tag: 0,
    lru: 0,
    valid: false,
    dirty: false,
    owner: 0,
};

/// A set-associative, true-LRU, write-back cache.
///
/// # Examples
///
/// ```
/// use sms_sim::cache::Cache;
/// use sms_sim::config::CacheConfig;
///
/// let mut c = Cache::new(&CacheConfig::new_kib(32, 8, 4));
/// assert!(!c.access(0x40, false));      // cold miss
/// c.fill(0x40, false, 0);
/// assert!(c.access(0x40, false));       // now hits
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    ways: Vec<Way>,
    assoc: usize,
    set_mask: u64,
    set_shift: u32,
    lru_clock: u32,
    stats: CacheStats,
    access_latency: u32,
    policy: ReplacementPolicy,
    /// Tree-PLRU bits, one word per set (bit `i` = internal node `i`).
    plru_bits: Vec<u64>,
    /// Xorshift state for the random policy.
    rng_state: u64,
}

impl Cache {
    /// Build a cache from a validated geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count;
    /// call [`CacheConfig::validate`] first for a recoverable error.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.num_sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "cache set count must be a non-zero power of two, got {sets}"
        );
        let assoc = cfg.associativity as usize;
        if cfg.policy == ReplacementPolicy::TreePlru {
            assert!(
                assoc.is_power_of_two(),
                "tree-PLRU requires a power-of-two associativity, got {assoc}"
            );
        }
        let plru_sets = if cfg.policy == ReplacementPolicy::TreePlru {
            sets as usize
        } else {
            0
        };
        Self {
            ways: vec![INVALID; sets as usize * assoc],
            assoc,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            lru_clock: 0,
            stats: CacheStats::default(),
            access_latency: cfg.access_latency,
            policy: cfg.policy,
            plru_bits: vec![0; plru_sets],
            rng_state: 0x9E37_79B9_97F4_A7C1,
        }
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Update policy metadata for a hit/fill on way `w` of set `set`.
    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        match self.policy {
            ReplacementPolicy::Lru => {
                let stamp = self.tick();
                self.ways[set * self.assoc + way].lru = stamp;
            }
            ReplacementPolicy::Srrip => {
                // Hit promotion to RRPV 0 (near re-reference).
                self.ways[set * self.assoc + way].lru = 0;
            }
            ReplacementPolicy::TreePlru => {
                // Flip internal nodes to point away from this way.
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = self.assoc;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let bits = &mut self.plru_bits[set];
                    if way < mid {
                        *bits |= 1 << node; // point right (away)
                        node = 2 * node + 1;
                        hi = mid;
                    } else {
                        *bits &= !(1 << node); // point left (away)
                        node = 2 * node + 2;
                        lo = mid;
                    }
                }
            }
            ReplacementPolicy::Random => {}
        }
    }

    /// Pick the victim way index within `set` (no invalid way exists).
    fn find_victim(&mut self, set: usize) -> usize {
        match self.policy {
            ReplacementPolicy::Lru => {
                let stamp = self.lru_clock;
                let base = set * self.assoc;
                let mut victim = 0;
                let mut best_age = 0u32;
                for i in 0..self.assoc {
                    let age = stamp.wrapping_sub(self.ways[base + i].lru);
                    if age >= best_age {
                        best_age = age;
                        victim = i;
                    }
                }
                victim
            }
            ReplacementPolicy::Srrip => {
                // Find an RRPV-3 way, aging the set until one exists.
                let base = set * self.assoc;
                loop {
                    for i in 0..self.assoc {
                        if self.ways[base + i].lru >= 3 {
                            return i;
                        }
                    }
                    for i in 0..self.assoc {
                        self.ways[base + i].lru += 1;
                    }
                }
            }
            ReplacementPolicy::TreePlru => {
                let bits = self.plru_bits[set];
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = self.assoc;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if bits & (1 << node) != 0 {
                        node = 2 * node + 2; // pointed right
                        lo = mid;
                    } else {
                        node = 2 * node + 1; // pointed left
                        hi = mid;
                    }
                }
                lo
            }
            ReplacementPolicy::Random => {
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                (self.rng_state % self.assoc as u64) as usize
            }
        }
    }

    /// Hit latency in cycles, from the configuration.
    pub fn access_latency(&self) -> u32 {
        self.access_latency
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (e.g. after a warm-up phase) without touching state.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> (usize, u64) {
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        (set * self.assoc, tag)
    }

    #[inline]
    fn tick(&mut self) -> u32 {
        // A wrapping 32-bit clock is fine: ordering only matters within a
        // set, and a set sees far fewer than 2^31 accesses between touches
        // of any resident line in practice; on wrap LRU degrades gracefully
        // to an arbitrary-but-valid victim choice.
        self.lru_clock = self.lru_clock.wrapping_add(1);
        self.lru_clock
    }

    /// Demand lookup. Returns `true` on hit; updates replacement metadata
    /// and, for writes, marks the line dirty. On miss the cache is
    /// unchanged (the caller fetches the line from the next level and then
    /// calls [`Cache::fill`]).
    #[inline]
    pub fn access(&mut self, line: LineAddr, write: bool) -> bool {
        self.stats.accesses += 1;
        let (base, tag) = self.set_range(line);
        for (i, w) in self.ways[base..base + self.assoc].iter_mut().enumerate() {
            if w.valid && w.tag == tag {
                w.dirty |= write;
                self.stats.hits += 1;
                let set = base / self.assoc;
                self.touch(set, i);
                return true;
            }
        }
        false
    }

    /// Probe without updating any state or statistics.
    pub fn probe(&self, line: LineAddr) -> bool {
        let (base, tag) = self.set_range(line);
        self.ways[base..base + self.assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Insert a line after a miss, evicting the LRU way if the set is full.
    ///
    /// If the line is already present (possible when two logical requests
    /// race within a synchronization quantum), the existing copy is updated
    /// instead and no eviction occurs.
    pub fn fill(&mut self, line: LineAddr, dirty: bool, owner: u8) -> Option<EvictedLine> {
        let (base, tag) = self.set_range(line);
        let set_idx = base / self.assoc;

        // Present already? Refresh in place.
        let mut invalid_way: Option<usize> = None;
        for i in 0..self.assoc {
            let w = &mut self.ways[base + i];
            if w.valid && w.tag == tag {
                w.dirty |= dirty;
                w.owner = owner;
                self.touch(set_idx, i);
                return None;
            }
            if !w.valid && invalid_way.is_none() {
                invalid_way = Some(i);
            }
        }

        let victim = invalid_way.unwrap_or_else(|| self.find_victim(set_idx));
        self.stats.fills += 1;
        let w = &mut self.ways[base + victim];
        let evicted = if w.valid {
            self.stats.evictions += 1;
            if w.dirty {
                self.stats.dirty_evictions += 1;
            }
            Some(EvictedLine {
                line: (w.tag << self.set_shift) | (line & self.set_mask),
                dirty: w.dirty,
                owner: w.owner,
            })
        } else {
            None
        };
        *w = Way {
            tag,
            // SRRIP inserts at distant-re-reference (2); other policies
            // overwrite this via touch() below.
            lru: if self.policy == ReplacementPolicy::Srrip {
                2
            } else {
                0
            },
            valid: true,
            dirty,
            owner,
        };
        if self.policy != ReplacementPolicy::Srrip {
            self.touch(set_idx, victim);
        }
        evicted
    }

    /// Remove a line if present, returning it (with its dirty state) so the
    /// caller can forward a writeback. Used for inclusion maintenance.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedLine> {
        let (base, tag) = self.set_range(line);
        for w in &mut self.ways[base..base + self.assoc] {
            if w.valid && w.tag == tag {
                w.valid = false;
                self.stats.invalidations += 1;
                return Some(EvictedLine {
                    line,
                    dirty: w.dirty,
                    owner: w.owner,
                });
            }
        }
        None
    }

    /// Number of currently valid lines (O(capacity); for tests/debugging).
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Total line slots.
    pub fn capacity_lines(&self) -> usize {
        self.ways.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512 B.
        Cache::new(&CacheConfig {
            capacity_bytes: 512,
            associativity: 2,
            access_latency: 1,
            policy: Default::default(),
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(10, false));
        assert!(c.fill(10, false, 0).is_none());
        assert!(c.access(10, false));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, false, 0);
        c.fill(4, false, 0);
        c.access(0, false); // 0 is now MRU; 4 is LRU
        let ev = c.fill(8, false, 0).expect("set full, must evict");
        assert_eq!(ev.line, 4);
        assert!(c.probe(0));
        assert!(c.probe(8));
        assert!(!c.probe(4));
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.fill(0, false, 3);
        assert!(c.access(0, true)); // dirty it
        c.fill(4, false, 0);
        let ev = c.fill(8, false, 0).unwrap();
        assert_eq!(ev.line, 0);
        assert!(ev.dirty);
        assert_eq!(ev.owner, 3);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn fill_of_present_line_updates_in_place() {
        let mut c = tiny();
        c.fill(0, false, 0);
        c.fill(4, false, 0);
        assert!(c.fill(0, true, 1).is_none(), "refresh must not evict");
        assert_eq!(c.occupancy(), 2);
        // Line 0 was refreshed by the second fill, so 4 is the LRU victim.
        let ev = c.fill(8, false, 0).unwrap();
        assert_eq!(ev.line, 4);
        assert!(c.probe(0));
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = tiny();
        c.fill(12, true, 2);
        let ev = c.invalidate(12).expect("line present");
        assert!(ev.dirty);
        assert_eq!(ev.owner, 2);
        assert!(!c.probe(12));
        assert!(c.invalidate(12).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // 4 sets: lines 0..4 land in distinct sets.
        for l in 0..4 {
            c.fill(l, false, 0);
        }
        assert_eq!(c.occupancy(), 4);
        for l in 0..4 {
            assert!(c.probe(l));
        }
    }

    #[test]
    fn miss_ratio_math() {
        let mut c = tiny();
        for l in 0..8 {
            if !c.access(l, false) {
                c.fill(l, false, 0);
            }
        }
        assert_eq!(c.stats().miss_ratio(), 1.0);
        for l in 0..4 {
            c.access(l, false);
        }
        // 8 misses, 4 hits in 12 accesses.
        assert!((c.stats().miss_ratio() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut c = tiny();
        c.fill(0, false, 0);
        let before = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(99));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn capacity_and_occupancy() {
        let c = tiny();
        assert_eq!(c.capacity_lines(), 8);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 8 lines
        let mut misses = 0;
        // Two passes over 16 distinct lines with LRU: every access misses.
        for _ in 0..2 {
            for l in 0..16 {
                if !c.access(l, false) {
                    misses += 1;
                    c.fill(l, false, 0);
                }
            }
        }
        assert_eq!(misses, 32);
    }

    fn with_policy(policy: ReplacementPolicy, sets: u64, assoc: u32) -> Cache {
        Cache::new(&CacheConfig {
            capacity_bytes: sets * u64::from(assoc) * 64,
            associativity: assoc,
            access_latency: 1,
            policy,
        })
    }

    #[test]
    fn tree_plru_victims_cycle_through_untouched_ways() {
        // 1 set x 4 ways. Fill all four, then touch 0 and 1; the victim
        // must come from {2, 3}.
        let mut c = with_policy(ReplacementPolicy::TreePlru, 1, 4);
        for l in 0..4 {
            c.fill(l, false, 0);
        }
        c.access(0, false);
        c.access(1, false);
        let ev = c.fill(10, false, 0).unwrap();
        assert!(
            ev.line == 2 || ev.line == 3,
            "victim {} not in cold half",
            ev.line
        );
    }

    #[test]
    fn tree_plru_hits_work_like_any_policy() {
        let mut c = with_policy(ReplacementPolicy::TreePlru, 4, 8);
        for l in 0..32 {
            c.fill(l, false, 0);
        }
        for l in 0..32 {
            assert!(c.access(l, false), "line {l} must hit");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two associativity")]
    fn tree_plru_rejects_non_power_of_two_assoc() {
        let _ = Cache::new(&CacheConfig {
            capacity_bytes: 3 * 64,
            associativity: 3,
            access_latency: 1,
            policy: ReplacementPolicy::TreePlru,
        });
    }

    #[test]
    fn srrip_resists_scans() {
        // 1 set x 4 ways. Build a hot working set of 2 lines (re-touched),
        // then scan 20 cold lines through; the hot lines must survive more
        // often than under LRU, which evicts them on every scan pass.
        let run = |policy: ReplacementPolicy| -> u32 {
            let mut c = with_policy(policy, 1, 4);
            let mut hot_hits = 0;
            for round in 0..40u64 {
                for hot in [0u64, 1] {
                    // Touch each hot line twice: SRRIP promotes a line to
                    // near-re-reference only on a hit, so a freshly filled
                    // line needs one more touch to be protected.
                    for _ in 0..2 {
                        if c.access(hot, false) {
                            hot_hits += 1;
                        } else {
                            c.fill(hot, false, 0);
                        }
                    }
                }
                // Three scan lines per round (never reused): enough to
                // displace a hot line under LRU but not under SRRIP.
                for k in 0..3u64 {
                    let line = 100 + round * 3 + k;
                    if !c.access(line, false) {
                        c.fill(line, false, 0);
                    }
                }
            }
            hot_hits
        };
        let srrip = run(ReplacementPolicy::Srrip);
        let lru = run(ReplacementPolicy::Lru);
        assert!(
            srrip > lru,
            "SRRIP ({srrip} hot hits) must beat LRU ({lru}) under scans"
        );
    }

    #[test]
    fn random_policy_is_deterministic_and_valid() {
        let mut a = with_policy(ReplacementPolicy::Random, 2, 4);
        let mut b = with_policy(ReplacementPolicy::Random, 2, 4);
        let mut evictions = Vec::new();
        for l in 0..64u64 {
            let ea = a.fill(l, false, 0);
            let eb = b.fill(l, false, 0);
            assert_eq!(ea, eb, "random stream must be deterministic");
            if let Some(e) = ea {
                evictions.push(e.line);
            }
        }
        assert!(!evictions.is_empty());
        assert!(a.occupancy() <= a.capacity_lines());
    }

    #[test]
    fn all_policies_satisfy_basic_invariants() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Srrip,
            ReplacementPolicy::Random,
        ] {
            let mut c = with_policy(policy, 4, 4);
            for l in 0..200u64 {
                if !c.access(l % 37, false) {
                    c.fill(l % 37, false, 0);
                }
            }
            let s = c.stats();
            assert_eq!(s.hits + s.misses(), s.accesses, "{policy:?}");
            assert!(c.occupancy() <= c.capacity_lines(), "{policy:?}");
        }
    }

    #[test]
    fn working_set_fitting_cache_hits_after_warmup() {
        let mut c = tiny();
        let mut misses = 0;
        for _ in 0..4 {
            for l in 0..8 {
                if !c.access(l, false) {
                    misses += 1;
                    c.fill(l, false, 0);
                }
            }
        }
        assert_eq!(misses, 8, "only cold misses expected");
    }
}
