//! Mesh on-chip network with explicit cross-section (bisection) link
//! bandwidth contention.
//!
//! The model charges per-hop latency from Manhattan distance on the mesh
//! and, for transfers whose source and destination lie in different halves
//! of the chip, queueing delay on one of the cross-section links (CSLs).
//! This mirrors the paper's NoC scaling knobs (Table I): number of CSLs and
//! bandwidth per CSL.

use crate::cache::LineAddr;
use crate::config::{gbps_to_bytes_per_cycle, NocConfig, LINE_SIZE};
use crate::queue::HistoryQueue;

/// Bytes of a request message (address + control).
pub const REQUEST_BYTES: u64 = 8;
/// Bytes of a data response message (cache line + header).
pub const RESPONSE_BYTES: u64 = LINE_SIZE + 8;

/// Statistics for the NoC.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NocStats {
    /// Transfers routed (request/response pairs counted once).
    pub transfers: u64,
    /// Transfers that crossed the bisection.
    pub bisection_crossings: u64,
    /// Bytes pushed across the bisection.
    pub bisection_bytes: u64,
    /// Total cycles spent queueing at cross-section links.
    pub total_link_wait: u64,
}

#[derive(Debug, Clone)]
struct Link {
    queue: HistoryQueue,
}

/// A node position on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodePos {
    /// Column index.
    pub col: u32,
    /// Row index.
    pub row: u32,
}

/// Mesh NoC model.
#[derive(Debug, Clone)]
pub struct Noc {
    cols: u32,
    rows: u32,
    hop_latency: u32,
    links: Vec<Link>,
    cycles_per_byte: f64,
    stats: NocStats,
}

/// Outcome of routing one round-trip transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocTransfer {
    /// Total round-trip network latency in cycles.
    pub latency: u64,
    /// Queue wait at a cross-section link (zero if not crossing).
    pub link_wait: u64,
}

impl Noc {
    /// Build the NoC model.
    ///
    /// # Panics
    ///
    /// Panics on a zero-size mesh, zero CSLs, or non-positive link
    /// bandwidth; run `SystemConfig::validate` first.
    pub fn new(cfg: &NocConfig) -> Self {
        assert!(
            cfg.mesh_cols > 0 && cfg.mesh_rows > 0,
            "mesh must be non-empty"
        );
        assert!(cfg.cross_section_links > 0, "need at least one CSL");
        let bpc = gbps_to_bytes_per_cycle(cfg.link_bandwidth_gbps);
        assert!(bpc > 0.0, "link bandwidth must be positive");
        Self {
            cols: cfg.mesh_cols,
            rows: cfg.mesh_rows,
            hop_latency: cfg.hop_latency,
            links: vec![
                Link {
                    queue: HistoryQueue::new()
                };
                cfg.cross_section_links as usize
            ],
            cycles_per_byte: 1.0 / bpc,
            stats: NocStats::default(),
        }
    }

    /// Position of mesh node `id` (row-major).
    pub fn node_pos(&self, id: u32) -> NodePos {
        NodePos {
            col: id % self.cols,
            row: id / self.cols,
        }
    }

    /// Manhattan hop count between two nodes.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let pa = self.node_pos(a);
        let pb = self.node_pos(b);
        pa.col.abs_diff(pb.col) + pa.row.abs_diff(pb.row)
    }

    /// Whether a route between the two nodes crosses the chip bisection.
    ///
    /// The bisection cuts the longer mesh dimension in half; with a single
    /// column/row (or a 1x1 mesh) nothing ever crosses.
    pub fn crosses_bisection(&self, a: u32, b: u32) -> bool {
        let (half, coord_a, coord_b) = if self.cols >= self.rows {
            (self.cols / 2, self.node_pos(a).col, self.node_pos(b).col)
        } else {
            (self.rows / 2, self.node_pos(a).row, self.node_pos(b).row)
        };
        if half == 0 {
            return false;
        }
        (coord_a < half) != (coord_b < half)
    }

    /// Route a round-trip transfer (request + data response) between nodes
    /// `src` and `dst`, starting at cycle `now`, for cache line `line`
    /// (used to pick the CSL deterministically).
    pub fn transfer(&mut self, src: u32, dst: u32, line: LineAddr, now: u64) -> NocTransfer {
        self.stats.transfers += 1;
        let hops = u64::from(self.hops(src, dst));
        // Round trip: request traverses the hops, response traverses back.
        let mut latency = 2 * hops * u64::from(self.hop_latency);
        let mut link_wait = 0;
        if self.crosses_bisection(src, dst) {
            let bytes = REQUEST_BYTES + RESPONSE_BYTES;
            let idx = (line as usize) % self.links.len();
            let serv = bytes as f64 * self.cycles_per_byte;
            let link = &mut self.links[idx];
            link_wait = link.queue.request(now as f64, serv) as u64;
            // Wormhole routing: per-message serialization overlaps with
            // flight, so only congestion (queueing for the link) adds
            // latency; the link occupancy above enforces the bandwidth.
            latency += link_wait;
            self.stats.bisection_crossings += 1;
            self.stats.bisection_bytes += bytes;
        }
        self.stats.total_link_wait += link_wait;
        NocTransfer { latency, link_wait }
    }

    /// Rebase link-queue timestamps after the caller rebased its clocks
    /// to zero (post-warmup), preserving any residual backlog.
    pub fn rebase(&mut self, origin: u64) {
        let o = origin as f64;
        for l in &mut self.links {
            l.queue.rebase(o);
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Mesh node hosting memory controller `mc` out of `num_mcs`.
    ///
    /// Controllers sit on the mesh perimeter: even indices along the top
    /// row, odd indices along the bottom row, spread across columns.
    pub fn mc_node(&self, mc: u32, num_mcs: u32) -> u32 {
        debug_assert!(num_mcs > 0);
        let per_row = num_mcs.div_ceil(2);
        let col_stride = (self.cols / per_row).max(1);
        let slot = mc / 2;
        let col = (slot * col_stride).min(self.cols - 1);
        if mc.is_multiple_of(2) {
            col // top row (row 0)
        } else {
            (self.rows - 1) * self.cols + col // bottom row
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc(cols: u32, rows: u32, csls: u32, gbps: f64) -> Noc {
        Noc::new(&NocConfig {
            mesh_cols: cols,
            mesh_rows: rows,
            hop_latency: 2,
            cross_section_links: csls,
            link_bandwidth_gbps: gbps,
        })
    }

    #[test]
    fn positions_row_major() {
        let n = noc(8, 4, 4, 32.0);
        assert_eq!(n.node_pos(0), NodePos { col: 0, row: 0 });
        assert_eq!(n.node_pos(7), NodePos { col: 7, row: 0 });
        assert_eq!(n.node_pos(8), NodePos { col: 0, row: 1 });
        assert_eq!(n.node_pos(31), NodePos { col: 7, row: 3 });
    }

    #[test]
    fn manhattan_hops() {
        let n = noc(8, 4, 4, 32.0);
        assert_eq!(n.hops(0, 0), 0);
        assert_eq!(n.hops(0, 7), 7);
        assert_eq!(n.hops(0, 31), 10);
        assert_eq!(n.hops(9, 18), 1 + 1);
    }

    #[test]
    fn bisection_detection_on_wide_mesh() {
        let n = noc(8, 4, 4, 32.0);
        // Columns 0-3 vs 4-7.
        assert!(!n.crosses_bisection(0, 3));
        assert!(n.crosses_bisection(0, 4));
        assert!(n.crosses_bisection(12, 3)); // col 4 vs col 3
    }

    #[test]
    fn single_node_mesh_never_crosses() {
        let n = noc(1, 1, 1, 4.0);
        assert!(!n.crosses_bisection(0, 0));
        let t = n.clone().transfer(0, 0, 0, 0);
        assert_eq!(t.latency, 0);
    }

    #[test]
    fn local_transfer_is_free_remote_costs_hops() {
        let mut n = noc(8, 4, 4, 32.0);
        let local = n.transfer(5, 5, 1, 0);
        assert_eq!(local.latency, 0);
        let same_half = n.transfer(0, 1, 1, 0);
        assert_eq!(same_half.latency, 2 * 2); // 2 cycles/hop, 1 hop, x2
        assert_eq!(same_half.link_wait, 0);
    }

    #[test]
    fn crossing_transfers_occupy_link_bandwidth() {
        let mut n = noc(8, 4, 1, 32.0); // 8 B/cyc -> 80B = 10 cycles occupancy
        let t = n.transfer(0, 7, 0, 0);
        assert_eq!(t.link_wait, 0);
        // Wormhole: only hop latency, no serialization in latency.
        assert_eq!(t.latency, 28);
        // A second crossing right behind queues for the link.
        let t2 = n.transfer(0, 7, 0, 0);
        assert_eq!(t2.link_wait, 10);
        assert_eq!(t2.latency, 28 + 10);
    }

    #[test]
    fn multiple_links_spread_crossing_traffic() {
        let mut n = noc(8, 4, 4, 32.0);
        for line in 0..4u64 {
            let t = n.transfer(0, 7, line, 0);
            assert_eq!(t.link_wait, 0, "line {line} should use its own CSL");
        }
        let t = n.transfer(0, 7, 4, 0);
        assert!(t.link_wait > 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut n = noc(8, 4, 4, 32.0);
        n.transfer(0, 7, 0, 0);
        n.transfer(0, 1, 0, 0);
        let s = n.stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bisection_crossings, 1);
        assert_eq!(s.bisection_bytes, REQUEST_BYTES + RESPONSE_BYTES);
    }

    #[test]
    fn mc_nodes_sit_on_perimeter() {
        let n = noc(8, 4, 4, 32.0);
        for mc in 0..8 {
            let node = n.mc_node(mc, 8);
            let pos = n.node_pos(node);
            assert!(
                pos.row == 0 || pos.row == 3,
                "mc {mc} at {pos:?} must be on top or bottom row"
            );
        }
        // All eight controllers get distinct nodes on the 8-wide mesh.
        let nodes: std::collections::HashSet<_> = (0..8).map(|m| n.mc_node(m, 8)).collect();
        assert_eq!(nodes.len(), 8);
    }

    #[test]
    fn mc_node_single_controller_mesh_1x1() {
        let n = noc(1, 1, 1, 4.0);
        assert_eq!(n.mc_node(0, 1), 0);
    }

    #[test]
    fn tall_mesh_bisects_rows() {
        let n = noc(1, 2, 1, 4.0);
        assert!(n.crosses_bisection(0, 1));
        assert!(!n.crosses_bisection(0, 0));
    }
}
