//! DRAM subsystem: address-interleaved memory controllers with explicit
//! bandwidth queueing.
//!
//! Each controller is a single-server FIFO queue: a 64-byte line transfer
//! occupies the controller for `LINE_SIZE / bytes_per_cycle` cycles, and a
//! request arriving while the controller is busy waits for the queue to
//! drain. This is the same history-based queue-contention approach used by
//! windowed-synchronization simulators (Sniper, Graphite): per-request
//! timestamps may arrive slightly out of order across cores within one
//! quantum, which the `max(now, next_free)` update absorbs.

use serde::{Deserialize, Serialize};

use crate::cache::LineAddr;
use crate::config::{gbps_to_bytes_per_cycle, DramConfig, LINE_SIZE};
use crate::queue::HistoryQueue;

/// Open-page row-buffer model (opt-in): banks keep their last-accessed
/// row open; hits to the open row are faster, switching rows costs a
/// precharge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowBufferConfig {
    /// Banks per memory controller.
    pub banks: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Cycles saved on an open-row hit relative to the base latency.
    pub hit_saving: u32,
    /// Extra cycles for closing a different open row (precharge).
    pub conflict_penalty: u32,
}

impl Default for RowBufferConfig {
    fn default() -> Self {
        Self {
            banks: 16,
            row_bytes: 2048,
            hit_saving: 100,
            conflict_penalty: 40,
        }
    }
}

/// Statistics for one memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControllerStats {
    /// Line transfers serviced (reads + writebacks).
    pub requests: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Total cycles requests spent waiting in the queue.
    pub total_queue_wait: u64,
}

#[derive(Debug, Clone)]
struct Controller {
    queue: HistoryQueue,
    stats: ControllerStats,
}

/// The DRAM subsystem: `num_controllers` queues, line-interleaved.
#[derive(Debug, Clone)]
pub struct Dram {
    controllers: Vec<Controller>,
    mc_mask: u64,
    mc_bits: u32,
    service_cycles: f64,
    base_latency: u32,
    row_buffer: Option<RowBufferConfig>,
    /// Open row per (controller, bank); indexed `mc * banks + bank`.
    open_rows: Vec<Option<u64>>,
    /// Row-buffer statistics: `(hits, conflicts)`.
    row_stats: (u64, u64),
}

/// Outcome of a DRAM access: total latency and the queue-wait component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramAccess {
    /// Total cycles from request issue to data return.
    pub latency: u64,
    /// Cycles of that spent queueing behind other requests.
    pub queue_wait: u64,
}

impl Dram {
    /// Build the DRAM model.
    ///
    /// # Panics
    ///
    /// Panics if the controller count is not a non-zero power of two or the
    /// per-controller bandwidth is non-positive; validate the
    /// [`DramConfig`] via `SystemConfig::validate` first.
    pub fn new(cfg: &DramConfig) -> Self {
        assert!(
            cfg.num_controllers > 0 && cfg.num_controllers.is_power_of_two(),
            "controller count must be a power of two"
        );
        let bpc = gbps_to_bytes_per_cycle(cfg.controller_bandwidth_gbps);
        assert!(bpc > 0.0, "controller bandwidth must be positive");
        let row_buffer = cfg.row_buffer.clone();
        let open_rows = match &row_buffer {
            Some(rb) => vec![None; (cfg.num_controllers * rb.banks.max(1)) as usize],
            None => Vec::new(),
        };
        Self {
            controllers: vec![
                Controller {
                    queue: HistoryQueue::new(),
                    stats: ControllerStats::default(),
                };
                cfg.num_controllers as usize
            ],
            mc_mask: u64::from(cfg.num_controllers) - 1,
            mc_bits: cfg.num_controllers.trailing_zeros(),
            service_cycles: LINE_SIZE as f64 / bpc,
            base_latency: cfg.base_latency,
            row_buffer,
            open_rows,
            row_stats: (0, 0),
        }
    }

    /// Row-buffer `(hits, conflicts)` counters (zero when disabled).
    pub fn row_buffer_stats(&self) -> (u64, u64) {
        self.row_stats
    }

    /// Latency adjustment (may be negative) from the row-buffer model for
    /// an access to `line` on controller `mc`, updating the open-row state.
    fn row_buffer_delta(&mut self, mc: usize, line: LineAddr) -> i64 {
        let Some(rb) = &self.row_buffer else {
            return 0;
        };
        // Lines on one controller are `num_controllers` apart globally;
        // the controller-local line index preserves streaming adjacency.
        let local_line = line >> self.mc_bits;
        let lines_per_row = (rb.row_bytes / LINE_SIZE).max(1);
        let row = local_line / lines_per_row;
        // Row-interleave banks so consecutive rows occupy distinct banks.
        let bank = (row % u64::from(rb.banks.max(1))) as usize;
        let slot = mc * rb.banks.max(1) as usize + bank;
        match self.open_rows[slot] {
            Some(open) if open == row => {
                self.row_stats.0 += 1;
                -i64::from(rb.hit_saving)
            }
            Some(_) => {
                self.row_stats.1 += 1;
                self.open_rows[slot] = Some(row);
                i64::from(rb.conflict_penalty)
            }
            None => {
                self.open_rows[slot] = Some(row);
                0
            }
        }
    }

    /// Controller index a line address maps to (line interleaving).
    #[inline]
    pub fn controller_for(&self, line: LineAddr) -> usize {
        (line & self.mc_mask) as usize
    }

    /// Cycles a single line transfer occupies a controller.
    pub fn service_cycles(&self) -> f64 {
        self.service_cycles
    }

    /// Issue a demand read for `line` at cycle `now`; returns the latency
    /// including queueing behind earlier traffic on the same controller.
    pub fn read(&mut self, line: LineAddr, now: u64) -> DramAccess {
        self.transfer(line, now, true)
    }

    /// Issue a writeback for `line` at cycle `now`. The writeback occupies
    /// controller bandwidth but the issuing core does not wait for it; the
    /// returned latency is informational.
    pub fn writeback(&mut self, line: LineAddr, now: u64) -> DramAccess {
        self.transfer(line, now, false)
    }

    fn transfer(&mut self, line: LineAddr, now: u64, _read: bool) -> DramAccess {
        let idx = self.controller_for(line);
        let row_delta = self.row_buffer_delta(idx, line);
        let mc = &mut self.controllers[idx];
        let wait = mc.queue.request(now as f64, self.service_cycles) as u64;
        mc.stats.requests += 1;
        mc.stats.bytes += LINE_SIZE;
        mc.stats.total_queue_wait += wait;
        let base = i64::from(self.base_latency) + row_delta;
        DramAccess {
            latency: base.max(1) as u64 + wait + self.service_cycles as u64,
            queue_wait: wait,
        }
    }

    /// Rebase queue timestamps after the caller rebased its clocks to
    /// zero (post-warmup): `next_free` times shift down by `origin`,
    /// preserving any residual backlog.
    pub fn rebase(&mut self, origin: u64) {
        let o = origin as f64;
        for c in &mut self.controllers {
            c.queue.rebase(o);
        }
    }

    /// Per-controller statistics.
    pub fn controller_stats(&self) -> Vec<ControllerStats> {
        self.controllers.iter().map(|c| c.stats).collect()
    }

    /// Total bytes transferred across all controllers.
    pub fn total_bytes(&self) -> u64 {
        self.controllers.iter().map(|c| c.stats.bytes).sum()
    }

    /// Aggregate achieved bandwidth in GB/s over `elapsed_cycles`.
    pub fn achieved_bandwidth_gbps(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let bytes_per_cycle = self.total_bytes() as f64 / elapsed_cycles as f64;
        bytes_per_cycle * crate::config::CORE_FREQ_GHZ
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(mcs: u32, gbps: f64) -> Dram {
        Dram::new(&DramConfig {
            num_controllers: mcs,
            controller_bandwidth_gbps: gbps,
            base_latency: 100,
            row_buffer: None,
        })
    }

    #[test]
    fn uncontended_read_pays_base_plus_service() {
        let mut d = dram(1, 16.0); // 4 B/cyc -> 16 cycles per line
        let a = d.read(0, 1000);
        assert_eq!(a.queue_wait, 0);
        assert_eq!(a.latency, 100 + 16);
    }

    #[test]
    fn back_to_back_reads_queue() {
        let mut d = dram(1, 16.0);
        let a0 = d.read(0, 0);
        let a1 = d.read(1 << 3, 0); // different line, same (only) controller
        assert_eq!(a0.queue_wait, 0);
        assert_eq!(a1.queue_wait, 16);
        let a2 = d.read(2 << 3, 0);
        assert_eq!(a2.queue_wait, 32);
    }

    #[test]
    fn interleaving_spreads_load_across_controllers() {
        let mut d = dram(4, 16.0);
        for line in 0..4u64 {
            let a = d.read(line, 0);
            assert_eq!(a.queue_wait, 0, "distinct controllers must not queue");
        }
        // Fifth request hits controller 0 again and queues.
        let a = d.read(4, 0);
        assert_eq!(a.queue_wait, 16);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut d = dram(1, 16.0);
        d.read(0, 0);
        // 20 cycles later the controller is idle again.
        let a = d.read(1, 20);
        assert_eq!(a.queue_wait, 0);
    }

    #[test]
    fn halving_bandwidth_doubles_service_time() {
        let d16 = dram(1, 16.0);
        let d8 = dram(1, 8.0);
        assert!((d16.service_cycles() * 2.0 - d8.service_cycles()).abs() < 1e-9);
    }

    #[test]
    fn writebacks_consume_bandwidth() {
        let mut d = dram(1, 16.0);
        d.writeback(0, 0);
        let a = d.read(1, 0);
        assert_eq!(a.queue_wait, 16, "writeback must delay the read");
        assert_eq!(d.total_bytes(), 128);
    }

    #[test]
    fn achieved_bandwidth_accounts_bytes_over_time() {
        let mut d = dram(2, 16.0);
        for line in 0..100u64 {
            d.read(line, line * 10);
        }
        // 6400 bytes over 1000 cycles = 6.4 B/cyc = 25.6 GB/s at 4 GHz.
        let bw = d.achieved_bandwidth_gbps(1000);
        assert!((bw - 25.6).abs() < 1e-9, "got {bw}");
        assert_eq!(d.achieved_bandwidth_gbps(0), 0.0);
    }

    #[test]
    fn controller_mapping_is_line_interleaved() {
        let d = dram(8, 16.0);
        for line in 0..32u64 {
            assert_eq!(d.controller_for(line), (line % 8) as usize);
        }
    }

    fn dram_with_rows() -> Dram {
        Dram::new(&DramConfig {
            num_controllers: 2,
            controller_bandwidth_gbps: 16.0,
            base_latency: 200,
            row_buffer: Some(RowBufferConfig {
                banks: 4,
                row_bytes: 2048, // 32 lines per row
                hit_saving: 100,
                conflict_penalty: 40,
            }),
        })
    }

    #[test]
    fn row_buffer_hits_are_faster() {
        let mut d = dram_with_rows();
        // First access opens the row (no penalty, no saving).
        let a0 = d.read(0, 0);
        assert_eq!(a0.latency, 200 + 16);
        // Next line on the same controller (global stride = #MCs) is in
        // the same row: open-row hit.
        let a1 = d.read(2, 1_000);
        assert_eq!(a1.latency, 100 + 16);
        assert_eq!(d.row_buffer_stats(), (1, 0));
    }

    #[test]
    fn row_conflicts_pay_precharge() {
        let mut d = dram_with_rows();
        d.read(0, 0); // opens row 0 of bank 0 on MC 0
                      // Same controller and bank, different row: rows alternate banks,
                      // so row 4 (banks=4) maps back to bank 0. Local line 4*32 = 128,
                      // global line = 128 << 1 = 256.
        let a = d.read(256, 1_000);
        assert_eq!(a.latency, 240 + 16);
        assert_eq!(d.row_buffer_stats(), (0, 1));
    }

    #[test]
    fn distinct_banks_keep_independent_rows() {
        let mut d = dram_with_rows();
        d.read(0, 0); // row 0, bank 0
        let a = d.read(64, 1_000); // local line 32 -> row 1 -> bank 1: empty
        assert_eq!(a.latency, 200 + 16);
        // Back to row 0: still open on bank 0.
        let b = d.read(2, 2_000);
        assert_eq!(b.latency, 100 + 16);
    }

    #[test]
    fn row_model_disabled_by_default() {
        let mut d = dram(1, 16.0);
        d.read(0, 0);
        d.read(1, 100);
        assert_eq!(d.row_buffer_stats(), (0, 0));
    }

    #[test]
    fn streaming_enjoys_row_locality() {
        let mut d = dram_with_rows();
        let mut hits = 0u64;
        for i in 0..256u64 {
            let before = d.row_buffer_stats().0;
            d.read(i, i * 100);
            if d.row_buffer_stats().0 > before {
                hits += 1;
            }
        }
        // 256 sequential lines over 2 MCs = 128 per MC = 4 rows of 32:
        // all but the 4 row-openings per MC hit.
        assert!(hits >= 240, "hits = {hits}");
    }

    #[test]
    fn saturation_grows_queue_linearly() {
        // Offered load 2x capacity: queue wait grows without bound.
        let mut d = dram(1, 16.0);
        let mut last_wait = 0;
        for i in 0..100u64 {
            let a = d.read(i, i * 8); // one request per 8 cycles, service 16
            last_wait = a.queue_wait;
        }
        assert!(last_wait > 700, "expected heavy queueing, got {last_wait}");
    }
}
