//! The multicore system: windowed-synchronization simulation loop.
//!
//! Cores advance independently within a synchronization quantum
//! ([`SystemConfig::sync_quantum`]); at quantum boundaries the deferred
//! inclusion back-invalidations are applied and the finish condition is
//! evaluated. Following the paper's methodology (§IV-2), a multiprogram
//! run ends as soon as the *first* benchmark in the mix retires its
//! instruction budget.
//!
//! # Parallel execution
//!
//! Each window runs in two phases. In the **fork** phase every core
//! advances to the quantum boundary against a *frozen* snapshot of the
//! shared uncore plus its private [`WindowShard`] (see [`crate::shard`]);
//! cores are fully independent here, so the phase can run on
//! [`SystemConfig::sim_threads`] scoped host threads. In the **merge**
//! phase the master replays every core's deferred events into the real
//! uncore in an order derived from the window index alone. Both the
//! sequential (`sim_threads = 1`) and parallel paths execute exactly this
//! algorithm, so `SimResult` and the epoch-sample stream are bit-identical
//! at any thread count.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, PoisonError, RwLock};
use std::time::Instant;

use crate::cache::CacheStats;
use crate::config::SystemConfig;
use crate::core_model::CoreModel;
use crate::dram::ControllerStats;
use crate::error::{ConfigError, SimError};
use crate::hierarchy::{MemoryBackend, PrivateCaches, Uncore};
use crate::noc::NocStats;
use crate::profile::SimProf;
use crate::shard::{DeferredOp, ShardBackend, WindowShard};
use crate::stats::{CoreResult, SimResult};
use crate::timeline::{EpochSample, NullSink, TimelineSink};
use crate::trace::InstructionSource;

/// Warm-up and measurement lengths for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RunSpec {
    /// Instructions per core executed before measurement starts (caches
    /// and queues warm up; counters are then reset).
    pub warmup_instructions: u64,
    /// Instructions per core in the measured phase; the run ends when the
    /// first core retires this many.
    pub measure_instructions: u64,
}

impl RunSpec {
    /// A spec with a warm-up of 25% of the measured length.
    ///
    /// # Examples
    ///
    /// ```
    /// let spec = sms_sim::system::RunSpec::with_default_warmup(1_000_000);
    /// assert_eq!(spec.warmup_instructions, 250_000);
    /// ```
    pub fn with_default_warmup(measure_instructions: u64) -> Self {
        Self {
            warmup_instructions: measure_instructions / 4,
            measure_instructions,
        }
    }
}

struct CoreCtx {
    model: CoreModel,
    privs: PrivateCaches,
    source: Box<dyn InstructionSource>,
    retired: u64,
    finished: bool,
}

/// One sample of a run timeline, taken at a synchronization boundary.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TimelineSample {
    /// Global cycle of the sample.
    pub cycle: u64,
    /// Cumulative retired instructions per core.
    pub instructions: Vec<u64>,
    /// Cumulative DRAM bytes transferred.
    pub dram_bytes: u64,
}

/// A sampled time series of a measured run (see
/// [`MulticoreSystem::run_with_timeline`]).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Timeline {
    /// Requested sampling interval in cycles (samples land on the first
    /// quantum boundary at or after each interval mark).
    pub interval_cycles: u64,
    /// Samples in time order.
    pub samples: Vec<TimelineSample>,
}

impl Timeline {
    /// Per-interval aggregate IPC between consecutive samples:
    /// `(cycle, ipc)` pairs.
    pub fn interval_ipc(&self) -> Vec<(u64, f64)> {
        self.samples
            .windows(2)
            .map(|w| {
                let dc = (w[1].cycle - w[0].cycle).max(1);
                let di: u64 = w[1]
                    .instructions
                    .iter()
                    .zip(&w[0].instructions)
                    .map(|(b, a)| b - a)
                    .sum();
                (w[1].cycle, di as f64 / dc as f64)
            })
            .collect()
    }

    /// Per-interval aggregate DRAM bandwidth in GB/s between samples.
    pub fn interval_bandwidth(&self) -> Vec<(u64, f64)> {
        self.samples
            .windows(2)
            .map(|w| {
                let dc = (w[1].cycle - w[0].cycle).max(1) as f64;
                let db = (w[1].dram_bytes - w[0].dram_bytes) as f64;
                (w[1].cycle, db / dc * crate::config::CORE_FREQ_GHZ)
            })
            .collect()
    }
}

/// A configured multicore system ready to simulate.
pub struct MulticoreSystem {
    cfg: SystemConfig,
    cores: Vec<CoreCtx>,
    shards: Vec<WindowShard>,
    uncore: Uncore,
    global_cycle: u64,
    /// Active timeline recorder: `(interval, next mark, samples)`.
    timeline: Option<(u64, u64, Vec<TimelineSample>)>,
    /// Phase-profiling handles; detached unless
    /// [`MulticoreSystem::attach_profiler`] was called. Timing only —
    /// never consulted by the simulation, so results are bit-identical
    /// attached or not.
    prof: SimProf,
}

impl std::fmt::Debug for MulticoreSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MulticoreSystem")
            .field("config", &self.cfg.summary())
            .field("cores", &self.cores.len())
            .field("global_cycle", &self.global_cycle)
            .finish()
    }
}

impl MulticoreSystem {
    /// Build a system from a configuration and one instruction source per
    /// core.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is invalid and
    /// [`SimError::SourceCountMismatch`] if the source count differs from
    /// `config.num_cores`.
    pub fn new(
        cfg: SystemConfig,
        sources: Vec<Box<dyn InstructionSource>>,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if sources.len() != cfg.num_cores as usize {
            return Err(SimError::SourceCountMismatch {
                sources: sources.len(),
                cores: cfg.num_cores,
            });
        }
        let uncore = Uncore::new(&cfg);
        let mut cores = Vec::with_capacity(sources.len());
        let mut shards = Vec::with_capacity(sources.len());
        for (i, source) in sources.into_iter().enumerate() {
            // Core ids travel the hierarchy as u8; validate() bounds
            // num_cores by MAX_CORES, so this conversion cannot truncate.
            let core_id = u8::try_from(i)
                .map_err(|_| SimError::Config(ConfigError::TooManyCores(cfg.num_cores)))?;
            cores.push(CoreCtx {
                model: CoreModel::new(cfg.core.clone(), core_id),
                privs: PrivateCaches::new(&cfg),
                source,
                retired: 0,
                finished: false,
            });
            shards.push(WindowShard::new(core_id, &uncore));
        }
        Ok(Self {
            cfg,
            cores,
            shards,
            uncore,
            global_cycle: 0,
            timeline: None,
            prof: SimProf::detached(),
        })
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Attach a phase profiler: subsequent runs time the `sim.run`,
    /// `window.fork`/`core.step` (with `l2`/`llc`/`noc`/`dram`
    /// component phases) and `window.merge` phases into `profiler`.
    ///
    /// Profiling is observation-only — scopes read the monotonic clock
    /// and bump atomic counters, never simulator state — so `SimResult`
    /// and the epoch-sample stream are bit-identical with or without a
    /// profiler attached, at any `sim_threads`.
    pub fn attach_profiler(&mut self, profiler: &sms_obs::Profiler) {
        self.set_prof(SimProf::attach(profiler));
    }

    /// Detach any attached profiler (scopes become no-ops again).
    pub fn detach_profiler(&mut self) {
        self.set_prof(SimProf::detached());
    }

    fn set_prof(&mut self, prof: SimProf) {
        self.uncore.set_prof(prof.clone());
        for ctx in &mut self.cores {
            ctx.privs.set_prof(prof.clone());
        }
        for shard in &mut self.shards {
            shard.set_prof(prof.clone());
        }
        self.prof = prof;
    }

    /// Execute until the first core retires `budget` instructions (or all
    /// cores do, whichever happens first per the stop rule), emitting one
    /// [`EpochSample`] per synchronization window into `sink` when it is
    /// enabled. Sampling only reads simulator state, so results are
    /// identical whether or not a recording sink is attached.
    ///
    /// Every window forks the cores against a frozen uncore snapshot
    /// (possibly on `sim_threads` scoped host threads) and merges their
    /// deferred events at the barrier; see the module docs for the
    /// determinism argument.
    fn run_phase(
        &mut self,
        budget: u64,
        sink: &mut dyn TimelineSink<EpochSample>,
    ) -> Result<(), SimError> {
        if budget == 0 {
            return Ok(());
        }
        let Self {
            cfg,
            cores,
            shards,
            uncore,
            global_cycle,
            timeline,
            prof,
        } = self;
        let prof = prof.clone();
        let n = cores.len();
        // Baselines so samples read relative to this phase's start; a
        // disabled sink skips all sampling work.
        let sampling = sink.enabled();
        let (cycle0, noc0, llc0, dram_bytes0, controllers0) = if sampling {
            (
                *global_cycle,
                uncore.noc.stats(),
                uncore.llc.stats(),
                uncore.dram.total_bytes(),
                uncore.dram.controller_stats(),
            )
        } else {
            (0, NocStats::default(), CacheStats::default(), 0, Vec::new())
        };
        let mut driver = PhaseDriver {
            quantum: cfg.sync_quantum,
            sampling,
            cycle0,
            noc0,
            llc0,
            dram_bytes0,
            controllers0,
            epoch: 0,
            window_index: 0,
            sink,
            global_cycle,
            timeline,
            prof: prof.clone(),
        };
        let threads = (cfg.sim_threads as usize).clamp(1, n);

        if threads == 1 {
            let mut pairs: Vec<(&mut CoreCtx, &mut WindowShard)> =
                cores.iter_mut().zip(shards.iter_mut()).collect();
            loop {
                let quantum_end = driver.next_quantum_end()?;
                {
                    let _fork = sms_obs::tracer().span("window.fork", "sim");
                    let _fork_phase = prof.fork();
                    for (ctx, shard) in &mut pairs {
                        run_core_window(ctx, shard, uncore, quantum_end, budget, &prof);
                    }
                }
                if driver.merge(uncore, &mut pairs, quantum_end)? {
                    return Ok(());
                }
            }
        }

        // Parallel path: one contiguous chunk of cores per worker thread.
        // Workers read the uncore through an RwLock and own their chunk
        // through a Mutex during the fork phase; the master takes the
        // write lock and all chunk locks for the merge. The two fork
        // barriers separate the phases, so no lock is ever contended.
        let mut chunk_locks: Vec<Mutex<(&mut [CoreCtx], &mut [WindowShard])>> =
            Vec::with_capacity(threads);
        {
            let mut cores_rest: &mut [CoreCtx] = cores;
            let mut shards_rest: &mut [WindowShard] = shards;
            for t in 0..threads {
                let take = n / threads + usize::from(t < n % threads);
                let (cores_head, cores_tail) = cores_rest.split_at_mut(take);
                let (shards_head, shards_tail) = shards_rest.split_at_mut(take);
                cores_rest = cores_tail;
                shards_rest = shards_tail;
                chunk_locks.push(Mutex::new((cores_head, shards_head)));
            }
        }
        let uncore_lock = RwLock::new(uncore);
        let barrier = Barrier::new(threads + 1);
        let quantum_end_cell = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let mut outcome = Ok(());
        std::thread::scope(|scope| {
            let barrier = &barrier;
            let done = &done;
            let quantum_end_cell = &quantum_end_cell;
            let uncore_lock = &uncore_lock;
            let prof = &prof;
            for chunk in &chunk_locks {
                scope.spawn(move || loop {
                    barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let quantum_end = quantum_end_cell.load(Ordering::Acquire);
                    let frozen = uncore_lock.read().unwrap_or_else(PoisonError::into_inner);
                    let mut guard = chunk.lock().unwrap_or_else(PoisonError::into_inner);
                    let (ctxs, shrds) = &mut *guard;
                    for (ctx, shard) in ctxs.iter_mut().zip(shrds.iter_mut()) {
                        run_core_window(ctx, shard, &frozen, quantum_end, budget, prof);
                    }
                    drop(guard);
                    drop(frozen);
                    barrier.wait();
                });
            }
            loop {
                let quantum_end = match driver.next_quantum_end() {
                    Ok(q) => q,
                    Err(e) => {
                        outcome = Err(e);
                        break;
                    }
                };
                quantum_end_cell.store(quantum_end, Ordering::Release);
                {
                    let _fork = sms_obs::tracer().span("window.fork", "sim");
                    let _fork_phase = prof.fork();
                    barrier.wait(); // release the workers into the window
                    barrier.wait(); // wait for every core to reach the barrier
                }
                let mut uncore_guard = uncore_lock.write().unwrap_or_else(PoisonError::into_inner);
                let mut chunk_guards: Vec<_> = chunk_locks
                    .iter()
                    .map(|chunk| chunk.lock().unwrap_or_else(PoisonError::into_inner))
                    .collect();
                // Flatten back into core-index order (chunks are contiguous
                // and in order) so the merge sees the same layout as the
                // sequential path.
                let mut pairs: Vec<(&mut CoreCtx, &mut WindowShard)> = Vec::with_capacity(n);
                for guard in &mut chunk_guards {
                    let (ctxs, shrds) = &mut **guard;
                    pairs.extend(ctxs.iter_mut().zip(shrds.iter_mut()));
                }
                match driver.merge(&mut uncore_guard, &mut pairs, quantum_end) {
                    Ok(true) => break,
                    Ok(false) => {}
                    Err(e) => {
                        outcome = Err(e);
                        break;
                    }
                }
            }
            done.store(true, Ordering::Release);
            barrier.wait();
        });
        outcome
    }

    /// Like [`MulticoreSystem::run`], additionally sampling cumulative
    /// per-core progress and DRAM traffic every `interval_cycles` of the
    /// measured phase (rounded up to synchronization boundaries).
    ///
    /// # Errors
    ///
    /// As [`MulticoreSystem::run`]; additionally rejects a zero interval.
    pub fn run_with_timeline(
        &mut self,
        spec: RunSpec,
        interval_cycles: u64,
    ) -> Result<(SimResult, Timeline), SimError> {
        if interval_cycles == 0 {
            return Err(SimError::EmptyBudget);
        }
        self.timeline = Some((interval_cycles, interval_cycles, Vec::new()));
        let result = self.run(spec);
        // sms-lint: allow(E1): set two lines above, and run() never clears it
        let (interval, _, samples) = self.timeline.take().expect("set above");
        let result = result?;
        Ok((
            result,
            Timeline {
                interval_cycles: interval,
                samples,
            },
        ))
    }

    /// Run the warm-up phase then the measured phase, returning results
    /// for the measured phase only.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyBudget`] if the measured instruction count
    /// is zero.
    pub fn run(&mut self, spec: RunSpec) -> Result<SimResult, SimError> {
        self.run_with_sink(spec, &mut NullSink)
    }

    /// Like [`MulticoreSystem::run`], additionally emitting one
    /// [`EpochSample`] per synchronization window of the *measured* phase
    /// into `sink` (the warm-up is never sampled). With a [`NullSink`]
    /// this is exactly `run`; the `SimResult` is identical either way
    /// because sampling only reads simulator state.
    ///
    /// # Errors
    ///
    /// As [`MulticoreSystem::run`].
    pub fn run_with_sink(
        &mut self,
        spec: RunSpec,
        sink: &mut dyn TimelineSink<EpochSample>,
    ) -> Result<SimResult, SimError> {
        if spec.measure_instructions == 0 {
            return Err(SimError::EmptyBudget);
        }

        // Root phase scope spanning warm-up and the measured phase (a
        // no-op when detached). Scoped to a local clone so the guard's
        // borrow does not pin `self`.
        let root_prof = self.prof.clone();
        let _run_phase_scope = root_prof.run();

        // Warm-up: run, then reset all measurement state.
        if spec.warmup_instructions > 0 {
            self.run_phase(spec.warmup_instructions, &mut NullSink)?;
            for ctx in &mut self.cores {
                ctx.model.reset_counters();
                ctx.retired = 0;
                ctx.finished = false;
                ctx.privs.l1i.reset_stats();
                ctx.privs.l1d.reset_stats();
                ctx.privs.l2.reset_stats();
            }
            self.uncore.reset_stats();
            self.uncore.dram.rebase(self.global_cycle);
            self.uncore.noc.rebase(self.global_cycle);
            self.global_cycle = 0;
            if let Some((interval, next_mark, samples)) = &mut self.timeline {
                *next_mark = *interval;
                samples.clear();
            }
        }

        // Snapshot cumulative uncore stats so the measured phase reports
        // deltas.
        let noc_before = self.uncore.noc.stats();
        let llc_before = self.uncore.llc.stats();
        let dram_bytes_before = self.uncore.dram.total_bytes();

        // sms-lint: allow(D1): host wall-time telemetry only; never feeds simulated state
        let wall = Instant::now();
        self.run_phase(spec.measure_instructions, sink)?;
        let host_seconds = wall.elapsed().as_secs_f64();

        let elapsed_cycles = self
            .cores
            .iter()
            .map(|c| c.model.counters().cycles)
            .max()
            .unwrap_or(0);

        let cores: Vec<CoreResult> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, ctx)| {
                CoreResult::from_counts(
                    ctx.source.label(),
                    ctx.model.counters(),
                    self.uncore.dram_bytes_per_core[i],
                    ctx.privs.prefetcher.issued(),
                )
            })
            .collect();

        let noc_after = self.uncore.noc.stats();
        let llc_after = self.uncore.llc.stats();
        let total_dram_bytes = self.uncore.dram.total_bytes() - dram_bytes_before;

        Ok(SimResult {
            cores,
            elapsed_cycles,
            total_dram_bytes,
            total_bandwidth_gbps: if elapsed_cycles == 0 {
                0.0
            } else {
                total_dram_bytes as f64 / elapsed_cycles as f64 * crate::config::CORE_FREQ_GHZ
            },
            noc_transfers: noc_after.transfers - noc_before.transfers,
            noc_crossings: noc_after.bisection_crossings - noc_before.bisection_crossings,
            llc_accesses: llc_after.accesses - llc_before.accesses,
            llc_hits: llc_after.hits - llc_before.hits,
            host_seconds,
        })
    }
}

/// Advance one core to `quantum_end` (or until its budget is exhausted)
/// against the frozen uncore snapshot, accumulating deferred shared-memory
/// events in its shard. Pure per-core work: safe to run concurrently for
/// different cores.
fn run_core_window(
    ctx: &mut CoreCtx,
    shard: &mut WindowShard,
    frozen: &Uncore,
    quantum_end: u64,
    budget: u64,
    prof: &SimProf,
) {
    if ctx.finished {
        return;
    }
    let _step = prof.core_step();
    shard.begin_window();
    let mut backend = ShardBackend { frozen, shard };
    while ctx.model.cycle < quantum_end && ctx.retired < budget {
        let left = budget - ctx.retired;
        ctx.retired +=
            ctx.model
                .run_window(ctx.source.as_mut(), &mut ctx.privs, &mut backend, left);
    }
    if ctx.retired >= budget {
        ctx.finished = true;
    }
}

/// Master-side state for one `run_phase` call: the sampling baselines, the
/// sink, and the window counter that drives the merge ordering. Shared by
/// the sequential and parallel paths so they execute the same barrier code.
struct PhaseDriver<'a> {
    quantum: u64,
    sampling: bool,
    cycle0: u64,
    noc0: NocStats,
    llc0: CacheStats,
    dram_bytes0: u64,
    controllers0: Vec<ControllerStats>,
    epoch: u64,
    window_index: u64,
    sink: &'a mut dyn TimelineSink<EpochSample>,
    global_cycle: &'a mut u64,
    timeline: &'a mut Option<(u64, u64, Vec<TimelineSample>)>,
    prof: SimProf,
}

impl PhaseDriver<'_> {
    /// The next window's end cycle; checked so a `sync_quantum` near the
    /// `u64` boundary fails loudly instead of wrapping the global clock.
    fn next_quantum_end(&self) -> Result<u64, SimError> {
        self.global_cycle
            .checked_add(self.quantum)
            .ok_or(SimError::Config(ConfigError::Overflow(
                "global_cycle + sync_quantum",
            )))
    }

    /// The quantum barrier: replay every core's deferred events into the
    /// real uncore, apply inclusion back-invalidations, advance the global
    /// clock, sample, and evaluate the stop rule. Returns `true` when the
    /// phase is finished.
    ///
    /// `pairs` must be in core-index order; the replay order rotates with
    /// the window index — a pure function of it, never mutable round-robin
    /// state — so no core is systematically first to stamp the shared
    /// queues, and the merged state is independent of the host thread
    /// count. The failpoint fires once per window on the master thread,
    /// keeping fault decisions thread-count independent too.
    fn merge(
        &mut self,
        uncore: &mut Uncore,
        pairs: &mut [(&mut CoreCtx, &mut WindowShard)],
        quantum_end: u64,
    ) -> Result<bool, SimError> {
        if let Err(e) = sms_faults::check("sim.window.merge") {
            return Err(SimError::Injected(e.to_string()));
        }
        let _merge = sms_obs::tracer().span("window.merge", "sim");
        let _merge_phase = self.prof.merge();
        let n = pairs.len();
        let start = (self.window_index % n as u64) as usize;
        for k in 0..n {
            let (_, shard) = &mut pairs[(start + k) % n];
            let core = shard.core;
            let mut events = std::mem::take(&mut shard.events);
            for ev in events.drain(..) {
                match ev {
                    DeferredOp::Demand { line, now } => {
                        let _ = uncore.access(core, line, now);
                    }
                    DeferredOp::Writeback { line, now } => {
                        uncore.shared_writeback(core, line, now);
                    }
                }
            }
            // Hand the (now empty) buffer back to keep its allocation.
            shard.events = events;
        }
        // Apply deferred inclusion invalidations at the barrier.
        let pending = std::mem::take(&mut uncore.pending_invalidations);
        for (owner, line) in pending {
            let (ctx, _) = &mut pairs[owner as usize];
            let p = &mut ctx.privs;
            let mut dirty = false;
            if let Some(ev) = p.l1d.invalidate(line) {
                dirty |= ev.dirty;
            }
            p.l1i.invalidate(line);
            if let Some(ev) = p.l2.invalidate(line) {
                dirty |= ev.dirty;
            }
            if dirty {
                uncore.writeback_to_dram(line, owner, quantum_end);
            }
        }
        *self.global_cycle = quantum_end;
        self.window_index += 1;
        if let Some((interval, next_mark, samples)) = self.timeline.as_mut() {
            if quantum_end >= *next_mark {
                samples.push(TimelineSample {
                    cycle: quantum_end,
                    instructions: pairs.iter().map(|(c, _)| c.retired).collect(),
                    dram_bytes: uncore.dram.total_bytes(),
                });
                while *next_mark <= quantum_end {
                    *next_mark += *interval;
                }
            }
        }
        if self.sampling {
            let noc = uncore.noc.stats();
            let llc = uncore.llc.stats();
            let controllers = uncore.dram.controller_stats();
            self.sink.record(EpochSample {
                epoch: self.epoch,
                cycle: quantum_end - self.cycle0,
                instructions: pairs.iter().map(|(c, _)| c.retired).collect(),
                core_cycles: pairs
                    .iter()
                    .map(|(c, _)| c.model.counters().cycles)
                    .collect(),
                llc_accesses: llc.accesses - self.llc0.accesses,
                llc_hits: llc.hits - self.llc0.hits,
                llc_occupancy: uncore.llc.occupancy() as u64,
                noc_transfers: noc.transfers - self.noc0.transfers,
                noc_crossings: noc.bisection_crossings - self.noc0.bisection_crossings,
                dram_bytes: uncore.dram.total_bytes() - self.dram_bytes0,
                dram_requests: controllers
                    .iter()
                    .zip(&self.controllers0)
                    .map(|(c, c0)| c.requests - c0.requests)
                    .collect(),
                dram_queue_wait: controllers
                    .iter()
                    .zip(&self.controllers0)
                    .map(|(c, c0)| c.total_queue_wait - c0.total_queue_wait)
                    .collect(),
            });
            self.epoch += 1;
        }
        Ok(pairs.iter().any(|(c, _)| c.finished))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MicroOp, VecSource};

    fn compute_source(label: &str) -> Box<dyn InstructionSource> {
        Box::new(VecSource::new(label, vec![MicroOp::Compute { count: 64 }]))
    }

    fn memory_source(label: &str, span_lines: u64) -> Box<dyn InstructionSource> {
        memory_source_at(label, span_lines, 0)
    }

    /// One load per 4 instructions over `span_lines` lines, based at
    /// `base` so that co-running instances occupy disjoint address spaces
    /// (as separate processes do).
    fn memory_source_at(label: &str, span_lines: u64, base: u64) -> Box<dyn InstructionSource> {
        let ops: Vec<MicroOp> = (0..span_lines)
            .flat_map(|i| {
                [
                    MicroOp::Compute { count: 3 },
                    MicroOp::Load {
                        addr: base + (i * 67 % span_lines) * 64,
                        dependent: false,
                    },
                ]
            })
            .collect();
        Box::new(VecSource::new(label, ops))
    }

    fn small_cfg(n: u32) -> SystemConfig {
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = n;
        cfg.llc.num_slices = n.next_power_of_two();
        cfg.noc.mesh_cols = n.next_power_of_two();
        cfg.noc.mesh_rows = 1;
        cfg.dram.num_controllers = 1;
        cfg.dram.controller_bandwidth_gbps = 4.0 * f64::from(n);
        cfg
    }

    #[test]
    fn source_count_must_match() {
        let cfg = small_cfg(2);
        let err = MulticoreSystem::new(cfg, vec![compute_source("a")]).unwrap_err();
        assert!(matches!(err, SimError::SourceCountMismatch { .. }));
    }

    #[test]
    fn zero_budget_rejected() {
        let cfg = small_cfg(1);
        let mut sys = MulticoreSystem::new(cfg, vec![compute_source("a")]).unwrap();
        let err = sys
            .run(RunSpec {
                warmup_instructions: 0,
                measure_instructions: 0,
            })
            .unwrap_err();
        assert_eq!(err, SimError::EmptyBudget);
    }

    #[test]
    fn single_core_compute_run() {
        let cfg = small_cfg(1);
        let mut sys = MulticoreSystem::new(cfg, vec![compute_source("calc")]).unwrap();
        let r = sys
            .run(RunSpec {
                warmup_instructions: 1000,
                measure_instructions: 100_000,
            })
            .unwrap();
        assert_eq!(r.cores.len(), 1);
        assert_eq!(r.cores[0].label, "calc");
        assert_eq!(r.cores[0].instructions, 100_000);
        assert!(r.cores[0].ipc > 3.0, "ipc = {}", r.cores[0].ipc);
    }

    #[test]
    fn run_stops_when_first_core_finishes() {
        let cfg = small_cfg(2);
        let fast = compute_source("fast");
        let slow = memory_source("slow", 1 << 18); // far beyond LLC
        let mut sys = MulticoreSystem::new(cfg, vec![fast, slow]).unwrap();
        let r = sys
            .run(RunSpec {
                warmup_instructions: 0,
                measure_instructions: 200_000,
            })
            .unwrap();
        assert_eq!(r.cores[0].instructions, 200_000);
        assert!(
            r.cores[1].instructions < 200_000,
            "slow core must not have finished: {}",
            r.cores[1].instructions
        );
        assert!(r.cores[1].ipc < r.cores[0].ipc);
    }

    #[test]
    fn contention_lowers_ipc_versus_running_alone() {
        // One memory-bound benchmark alone on a 1-core system with 4 GB/s...
        let cfg1 = small_cfg(1);
        let mut alone = MulticoreSystem::new(cfg1, vec![memory_source("m", 1 << 16)]).unwrap();
        let spec = RunSpec {
            warmup_instructions: 50_000,
            measure_instructions: 200_000,
        };
        let r_alone = alone.run(spec).unwrap();

        // ...versus four copies sharing 4x the bandwidth but one LLC of 4x
        // slices (same per-core share) — IPC should be in the same
        // ballpark; versus four copies sharing only 1x bandwidth — IPC
        // must drop.
        let mut cfg4_starved = small_cfg(4);
        cfg4_starved.dram.controller_bandwidth_gbps = 4.0;
        let sources: Vec<Box<dyn InstructionSource>> = (0..4u64)
            .map(|i| memory_source_at("m", 1 << 16, i << 32))
            .collect();
        let mut starved = MulticoreSystem::new(cfg4_starved, sources).unwrap();
        let r_starved = starved.run(spec).unwrap();

        let ipc_alone = r_alone.cores[0].ipc;
        let ipc_starved = r_starved.cores[0].ipc;
        assert!(
            ipc_starved < ipc_alone * 0.8,
            "bandwidth starvation must hurt: alone={ipc_alone:.3} starved={ipc_starved:.3}"
        );
    }

    #[test]
    fn results_are_deterministic() {
        let spec = RunSpec {
            warmup_instructions: 10_000,
            measure_instructions: 50_000,
        };
        let run = || {
            let cfg = small_cfg(2);
            let mut sys = MulticoreSystem::new(
                cfg,
                vec![memory_source("a", 1 << 12), memory_source("b", 1 << 14)],
            )
            .unwrap();
            sys.run(spec).unwrap()
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.cores[0].cycles, r2.cores[0].cycles);
        assert_eq!(r1.cores[1].cycles, r2.cores[1].cycles);
        assert_eq!(r1.total_dram_bytes, r2.total_dram_bytes);
    }

    #[test]
    fn timeline_samples_measured_phase() {
        let cfg = small_cfg(1);
        let mut sys = MulticoreSystem::new(cfg, vec![compute_source("calc")]).unwrap();
        let (r, tl) = sys
            .run_with_timeline(
                RunSpec {
                    warmup_instructions: 5_000,
                    measure_instructions: 50_000,
                },
                2_000,
            )
            .unwrap();
        assert!(!tl.samples.is_empty());
        // Samples are strictly increasing in time and monotone in progress.
        for w in tl.samples.windows(2) {
            assert!(w[1].cycle > w[0].cycle);
            assert!(w[1].instructions[0] >= w[0].instructions[0]);
            assert!(w[1].dram_bytes >= w[0].dram_bytes);
        }
        // Warm-up must not appear: the first sample's instruction count is
        // part of the measured 50k, and the last does not exceed it.
        assert!(tl.samples.last().unwrap().instructions[0] <= r.cores[0].instructions);
        // Interval IPC is near the aggregate IPC for a steady workload.
        let ipcs = tl.interval_ipc();
        assert!(!ipcs.is_empty());
        for (_, ipc) in &ipcs {
            assert!((ipc - r.cores[0].ipc).abs() < 0.5, "interval ipc {ipc}");
        }
    }

    #[test]
    fn timeline_rejects_zero_interval() {
        let cfg = small_cfg(1);
        let mut sys = MulticoreSystem::new(cfg, vec![compute_source("calc")]).unwrap();
        assert!(sys
            .run_with_timeline(
                RunSpec {
                    warmup_instructions: 0,
                    measure_instructions: 1_000,
                },
                0,
            )
            .is_err());
    }

    #[test]
    fn timeline_bandwidth_series_reflects_traffic() {
        let cfg = small_cfg(1);
        let mut sys = MulticoreSystem::new(cfg, vec![memory_source("mem", 1 << 16)]).unwrap();
        let (_, tl) = sys
            .run_with_timeline(
                RunSpec {
                    warmup_instructions: 5_000,
                    measure_instructions: 50_000,
                },
                5_000,
            )
            .unwrap();
        let bw = tl.interval_bandwidth();
        assert!(!bw.is_empty());
        assert!(
            bw.iter().any(|(_, b)| *b > 0.1),
            "memory workload moves data"
        );
    }

    #[test]
    fn epoch_sink_samples_every_sync_window() {
        let cfg = small_cfg(2);
        let quantum = cfg.sync_quantum;
        let mut sys = MulticoreSystem::new(
            cfg,
            vec![memory_source("a", 1 << 12), memory_source("b", 1 << 14)],
        )
        .unwrap();
        let mut sink = crate::timeline::RecordingSink::new();
        let spec = RunSpec {
            warmup_instructions: 5_000,
            measure_instructions: 50_000,
        };
        let r = sys.run_with_sink(spec, &mut sink).unwrap();
        let samples = sink.into_samples();
        assert!(!samples.is_empty());
        // One sample per sync window: the k-th barrier lands at
        // (k+1) * quantum cycles from measure start.
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.epoch, i as u64);
            assert_eq!(s.cycle, (i as u64 + 1) * quantum);
            assert_eq!(s.instructions.len(), 2, "one entry per core");
            assert_eq!(s.core_cycles.len(), 2);
        }
        let last = samples.last().unwrap();
        assert_eq!(samples.len() as u64, last.cycle / quantum);
        // Epoch timestamps and cumulative counters are monotone.
        for w in samples.windows(2) {
            assert!(w[1].cycle > w[0].cycle);
            assert!(w[1].llc_accesses >= w[0].llc_accesses);
            assert!(w[1].dram_bytes >= w[0].dram_bytes);
            for core in 0..2 {
                assert!(w[1].instructions[core] >= w[0].instructions[core]);
            }
        }
        // The final sample agrees with the end-of-run result: the winning
        // core retired exactly the measured budget.
        assert_eq!(
            *last.instructions.iter().max().unwrap(),
            r.cores.iter().map(|c| c.instructions).max().unwrap()
        );
    }

    #[test]
    fn recording_sink_does_not_perturb_results() {
        let spec = RunSpec {
            warmup_instructions: 10_000,
            measure_instructions: 50_000,
        };
        let build = || {
            MulticoreSystem::new(
                small_cfg(2),
                vec![memory_source("a", 1 << 12), memory_source("b", 1 << 14)],
            )
            .unwrap()
        };
        let plain = build().run(spec).unwrap();
        let mut sink = crate::timeline::RecordingSink::new();
        let recorded = build().run_with_sink(spec, &mut sink).unwrap();
        // Bit-identical apart from host wall time: sampling is read-only.
        let strip = |mut r: SimResult| {
            r.host_seconds = 0.0;
            r
        };
        assert_eq!(strip(plain), strip(recorded));
        assert!(!sink.is_empty());
    }

    #[test]
    fn profiler_does_not_perturb_results_at_any_thread_count() {
        // The profiler-on/off analogue of
        // `recording_sink_does_not_perturb_results`, at 1 and 4
        // `sim_threads`: SimResult and the EpochSample stream must be
        // bit-identical because profiling only reads host time.
        let spec = RunSpec {
            warmup_instructions: 10_000,
            measure_instructions: 50_000,
        };
        for sim_threads in [1u32, 4] {
            let build = || {
                let mut cfg = small_cfg(4);
                cfg.sim_threads = sim_threads;
                let sources: Vec<Box<dyn InstructionSource>> = (0..4u64)
                    .map(|i| memory_source_at("m", 1 << 12, i << 32))
                    .collect();
                MulticoreSystem::new(cfg, sources).unwrap()
            };
            let strip = |mut r: SimResult| {
                r.host_seconds = 0.0;
                r
            };

            let mut plain_sink = crate::timeline::RecordingSink::new();
            let plain = build().run_with_sink(spec, &mut plain_sink).unwrap();

            let profiler = sms_obs::Profiler::new();
            let mut sys = build();
            sys.attach_profiler(&profiler);
            let mut prof_sink = crate::timeline::RecordingSink::new();
            let profiled = sys.run_with_sink(spec, &mut prof_sink).unwrap();

            assert_eq!(
                strip(plain),
                strip(profiled),
                "SimResult must not depend on profiling (sim_threads={sim_threads})"
            );
            assert_eq!(
                plain_sink.into_samples(),
                prof_sink.into_samples(),
                "epoch stream must not depend on profiling (sim_threads={sim_threads})"
            );

            // And the profile itself is real: the run phase fired once,
            // cores stepped, and windows merged.
            let snap = profiler.snapshot();
            let count = |path: &str| {
                snap.phases
                    .iter()
                    .find(|p| p.path == path)
                    .map_or(0, |p| p.count)
            };
            assert_eq!(count("sim.run"), 1);
            assert!(count("sim.run;window.fork;core.step") > 0);
            assert!(count("sim.run;window.merge") > 0);
        }
    }

    #[test]
    fn profiler_overhead_is_small() {
        // Measured-overhead smoke test: attaching a profiler may cost at
        // most 5% wall time (plus a small absolute grace for scheduler
        // noise on shared runners). Uses `host_seconds` so this crate
        // never reads a raw clock (lint rule D1); best-of-5 on each side
        // to shed one-off descheduling blips.
        let spec = RunSpec {
            warmup_instructions: 10_000,
            measure_instructions: 150_000,
        };
        let build = || {
            MulticoreSystem::new(
                small_cfg(2),
                vec![
                    memory_source_at("a", 1 << 12, 0),
                    memory_source_at("b", 1 << 14, 1 << 32),
                ],
            )
            .unwrap()
        };
        let best_of = |attach: bool| {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let mut sys = build();
                let profiler = sms_obs::Profiler::new();
                if attach {
                    sys.attach_profiler(&profiler);
                }
                let secs = sys.run(spec).unwrap().host_seconds;
                if secs < best {
                    best = secs;
                }
            }
            best
        };
        let off = best_of(false);
        let on = best_of(true);
        assert!(
            on <= off * 1.05 + 0.010,
            "profiler-on best {on:.4}s exceeds profiler-off best {off:.4}s by more than 5% + 10ms"
        );
    }

    #[test]
    fn epoch_sink_never_samples_warmup() {
        let cfg = small_cfg(1);
        let mut sys = MulticoreSystem::new(cfg, vec![compute_source("calc")]).unwrap();
        let mut sink = crate::timeline::RecordingSink::new();
        let r = sys
            .run_with_sink(
                RunSpec {
                    warmup_instructions: 40_000,
                    measure_instructions: 10_000,
                },
                &mut sink,
            )
            .unwrap();
        let samples = sink.into_samples();
        // Cumulative instruction counts stay within the measured budget
        // even though warm-up retired 4x as much.
        assert!(samples
            .iter()
            .all(|s| s.instructions[0] <= r.cores[0].instructions));
        assert_eq!(samples[0].epoch, 0);
    }

    #[test]
    fn bandwidth_accounting_is_consistent() {
        let cfg = small_cfg(2);
        let mut sys = MulticoreSystem::new(
            cfg,
            vec![memory_source("a", 1 << 16), memory_source("b", 1 << 16)],
        )
        .unwrap();
        let r = sys
            .run(RunSpec {
                warmup_instructions: 0,
                measure_instructions: 100_000,
            })
            .unwrap();
        let per_core_sum: u64 = r.cores.iter().map(|c| c.dram_bytes).sum();
        assert_eq!(per_core_sum, r.total_dram_bytes);
        assert!(r.total_bandwidth_gbps > 0.0);
    }
}
