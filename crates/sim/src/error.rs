//! Error types for configuration validation and simulation setup.

use std::error::Error;
use std::fmt;

/// An inconsistency in a [`SystemConfig`](crate::config::SystemConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be non-zero was zero.
    ZeroField(&'static str),
    /// Cache capacity, line size and associativity do not yield a
    /// power-of-two set count.
    CacheGeometry(&'static str),
    /// LLC slice count must be a non-zero power of two (address interleave).
    SliceCount(u32),
    /// Memory-controller count must be a non-zero power of two.
    ControllerCount(u32),
    /// The mesh does not provide a node per core.
    MeshTooSmall {
        /// Mesh columns.
        cols: u32,
        /// Mesh rows.
        rows: u32,
        /// Required number of cores.
        cores: u32,
    },
    /// A bandwidth parameter was zero or negative.
    NonPositiveBandwidth(&'static str),
    /// More cores than the hierarchy's 8-bit core identifiers can address.
    TooManyCores(u32),
    /// An arithmetic step on a user-supplied value would overflow its
    /// integer type (e.g. the global clock plus `sync_quantum` near the
    /// `u64` boundary).
    Overflow(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroField(what) => write!(f, "configuration field `{what}` must be non-zero"),
            Self::CacheGeometry(what) => write!(
                f,
                "cache `{what}` geometry invalid: sets must be a non-zero power of two"
            ),
            Self::SliceCount(n) => {
                write!(f, "LLC slice count {n} must be a non-zero power of two")
            }
            Self::ControllerCount(n) => {
                write!(
                    f,
                    "memory controller count {n} must be a non-zero power of two"
                )
            }
            Self::MeshTooSmall { cols, rows, cores } => write!(
                f,
                "mesh {cols}x{rows} has fewer nodes than the {cores} cores it must host"
            ),
            Self::NonPositiveBandwidth(what) => {
                write!(f, "bandwidth of `{what}` must be positive")
            }
            Self::TooManyCores(n) => {
                write!(f, "{n} cores exceed the 256 addressable by 8-bit core ids")
            }
            Self::Overflow(what) => {
                write!(f, "`{what}` would overflow its integer range")
            }
        }
    }
}

impl Error for ConfigError {}

/// An error constructing or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The number of instruction sources does not match `num_cores`.
    SourceCountMismatch {
        /// Sources supplied by the caller.
        sources: usize,
        /// Cores in the configuration.
        cores: u32,
    },
    /// A per-core instruction budget of zero was requested.
    EmptyBudget,
    /// The simulation panicked; the payload is the panic message. Produced
    /// by fault-tolerant executors that isolate worker panics
    /// (`catch_unwind`) and convert them into typed errors.
    Panicked(String),
    /// The run exceeded the executor's watchdog deadline
    /// (`SMS_RUN_TIMEOUT_SECS`) and was abandoned; the run is quarantined
    /// as hung while the rest of the plan proceeds.
    Hung {
        /// The deadline that was exceeded, in milliseconds.
        deadline_ms: u64,
    },
    /// A deterministic failpoint (`sms-faults`, scheduled via
    /// `SMS_FAULTS`) injected this error.
    Injected(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::SourceCountMismatch { sources, cores } => write!(
                f,
                "got {sources} instruction sources for {cores} cores; counts must match"
            ),
            Self::EmptyBudget => write!(f, "per-core instruction budget must be non-zero"),
            Self::Panicked(msg) => write!(f, "simulation panicked: {msg}"),
            Self::Hung { deadline_ms } => write!(
                f,
                "run hung: exceeded the {deadline_ms}ms watchdog deadline and was abandoned"
            ),
            Self::Injected(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let msgs = [
            ConfigError::ZeroField("x").to_string(),
            ConfigError::CacheGeometry("l1d").to_string(),
            ConfigError::SliceCount(3).to_string(),
            ConfigError::ControllerCount(5).to_string(),
            ConfigError::MeshTooSmall {
                cols: 2,
                rows: 2,
                cores: 8,
            }
            .to_string(),
            ConfigError::NonPositiveBandwidth("noc").to_string(),
            ConfigError::TooManyCores(512).to_string(),
            ConfigError::Overflow("global_cycle + sync_quantum").to_string(),
            SimError::EmptyBudget.to_string(),
            SimError::SourceCountMismatch {
                sources: 3,
                cores: 4,
            }
            .to_string(),
            SimError::Panicked("index out of bounds".to_owned()).to_string(),
            SimError::Hung { deadline_ms: 5000 }.to_string(),
            SimError::Injected("fault at `cache.write` (hit 3)".to_owned()).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn sim_error_from_config_error() {
        let e: SimError = ConfigError::ZeroField("num_cores").into();
        assert!(matches!(e, SimError::Config(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<SimError>();
    }
}
