//! Shared NUCA last-level cache: one slice per core, line-interleaved.
//!
//! Each slice is an independent set-associative [`Cache`]. The home slice
//! of a line is chosen by line-address interleaving, so all cores share all
//! slices and capacity contention between co-running programs emerges
//! naturally. Slice-internal set indices use the address bits *above* the
//! slice-select bits, so the full slice capacity is usable.

use crate::cache::{Cache, CacheStats, EvictedLine, LineAddr};
use crate::config::LlcConfig;

/// The NUCA LLC.
#[derive(Debug, Clone)]
pub struct NucaLlc {
    slices: Vec<Cache>,
    slice_mask: u64,
    slice_bits: u32,
    access_latency: u32,
}

impl NucaLlc {
    /// Build the LLC from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the slice count is not a non-zero power of two; run
    /// `SystemConfig::validate` first.
    pub fn new(cfg: &LlcConfig) -> Self {
        assert!(
            cfg.num_slices > 0 && cfg.num_slices.is_power_of_two(),
            "slice count must be a non-zero power of two"
        );
        Self {
            slices: (0..cfg.num_slices)
                .map(|_| Cache::new(&cfg.slice))
                .collect(),
            slice_mask: u64::from(cfg.num_slices) - 1,
            slice_bits: cfg.num_slices.trailing_zeros(),
            access_latency: cfg.slice.access_latency,
        }
    }

    /// Slice access (hit) latency in cycles, excluding network time.
    pub fn access_latency(&self) -> u32 {
        self.access_latency
    }

    /// Number of slices.
    pub fn num_slices(&self) -> u32 {
        self.slices.len() as u32
    }

    /// Home slice of a line address.
    #[inline]
    pub fn home_slice(&self, line: LineAddr) -> u32 {
        (line & self.slice_mask) as u32
    }

    #[inline]
    fn slice_local(&self, line: LineAddr) -> u64 {
        line >> self.slice_bits
    }

    #[inline]
    fn slice_global(&self, slice: u32, local: u64) -> LineAddr {
        (local << self.slice_bits) | u64::from(slice)
    }

    /// Demand lookup at the line's home slice. Returns `true` on hit.
    pub fn access(&mut self, line: LineAddr, write: bool) -> bool {
        let slice = self.home_slice(line);
        let local = self.slice_local(line);
        self.slices[slice as usize].access(local, write)
    }

    /// Fill a line at its home slice; a displaced victim is returned with
    /// its *global* line address so the caller can write it back and
    /// back-invalidate the owner's private caches.
    pub fn fill(&mut self, line: LineAddr, dirty: bool, owner: u8) -> Option<EvictedLine> {
        let slice = self.home_slice(line);
        let local = self.slice_local(line);
        self.slices[slice as usize]
            .fill(local, dirty, owner)
            .map(|ev| EvictedLine {
                line: self.slice_global(slice, ev.line),
                ..ev
            })
    }

    /// Remove a line if present (global address), returning its state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedLine> {
        let slice = self.home_slice(line);
        let local = self.slice_local(line);
        self.slices[slice as usize]
            .invalidate(local)
            .map(|ev| EvictedLine {
                line: self.slice_global(slice, ev.line),
                ..ev
            })
    }

    /// Probe for a line without side effects.
    pub fn probe(&self, line: LineAddr) -> bool {
        let slice = self.home_slice(line);
        self.slices[slice as usize].probe(self.slice_local(line))
    }

    /// Statistics aggregated across slices.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.slices {
            let st = s.stats();
            total.accesses += st.accesses;
            total.hits += st.hits;
            total.fills += st.fills;
            total.evictions += st.evictions;
            total.dirty_evictions += st.dirty_evictions;
            total.invalidations += st.invalidations;
        }
        total
    }

    /// Statistics of one slice.
    pub fn slice_stats(&self, slice: u32) -> CacheStats {
        self.slices[slice as usize].stats()
    }

    /// Valid lines across all slices (O(capacity); tests/debugging).
    pub fn occupancy(&self) -> usize {
        self.slices.iter().map(Cache::occupancy).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn llc(slices: u32) -> NucaLlc {
        NucaLlc::new(&LlcConfig {
            num_slices: slices,
            slice: CacheConfig {
                capacity_bytes: 4096, // 64 lines
                associativity: 4,
                access_latency: 30,
                policy: Default::default(),
            },
        })
    }

    #[test]
    fn lines_interleave_across_slices() {
        let l = llc(4);
        for line in 0..16u64 {
            assert_eq!(l.home_slice(line), (line % 4) as u32);
        }
    }

    #[test]
    fn miss_fill_hit_round_trip() {
        let mut l = llc(4);
        assert!(!l.access(5, false));
        assert!(l.fill(5, false, 1).is_none());
        assert!(l.access(5, false));
        assert!(l.probe(5));
        assert_eq!(l.stats().hits, 1);
        assert_eq!(l.stats().misses(), 1);
    }

    #[test]
    fn eviction_returns_global_address() {
        let mut l = llc(4);
        // Slice 1: lines 1, 65, 129, ... (local addresses 0, 16, 32 -> all
        // distinct sets in a 16-set cache; instead use lines that collide).
        // Slice-local set count = 4096/64/4 = 16 sets. Local addresses
        // colliding in set 0: 0, 16, 32, 48, 64 => global = local*4 + 1.
        let collide: Vec<u64> = (0..5).map(|i| (i * 16) * 4 + 1).collect();
        for &g in &collide[..4] {
            assert!(l.fill(g, true, 2).is_none());
        }
        let ev = l.fill(collide[4], false, 0).expect("set overflow");
        assert_eq!(ev.line, collide[0], "victim must be reported globally");
        assert!(ev.dirty);
        assert_eq!(ev.owner, 2);
        assert_eq!(l.home_slice(ev.line), 1);
    }

    #[test]
    fn full_slice_capacity_is_usable() {
        let mut l = llc(4);
        // 64 lines per slice; fill slice 0 exactly (lines 0,4,8,...).
        for i in 0..64u64 {
            assert!(l.fill(i * 4, false, 0).is_none(), "line {i} evicted early");
        }
        assert_eq!(l.occupancy(), 64);
        // One more forces an eviction.
        assert!(l.fill(64 * 4, false, 0).is_some());
    }

    #[test]
    fn invalidate_global() {
        let mut l = llc(2);
        l.fill(7, true, 3);
        let ev = l.invalidate(7).unwrap();
        assert_eq!(ev.line, 7);
        assert!(ev.dirty);
        assert!(!l.probe(7));
    }

    #[test]
    fn capacity_contention_between_owners() {
        let mut l = llc(1);
        // Owner 0 fills the whole (64-line) slice, then owner 1 streams
        // through and displaces owner 0's lines.
        for i in 0..64u64 {
            l.fill(i, false, 0);
        }
        let mut displaced_owner0 = 0;
        for i in 64..128u64 {
            if let Some(ev) = l.fill(i, false, 1) {
                if ev.owner == 0 {
                    displaced_owner0 += 1;
                }
            }
        }
        assert_eq!(displaced_owner0, 64, "all of owner 0's lines displaced");
    }

    #[test]
    fn single_slice_llc() {
        let mut l = llc(1);
        assert_eq!(l.home_slice(12345), 0);
        l.fill(12345, false, 0);
        assert!(l.probe(12345));
    }

    #[test]
    fn per_slice_stats() {
        let mut l = llc(2);
        l.access(0, false); // slice 0 miss
        l.fill(0, false, 0);
        l.access(0, false); // slice 0 hit
        l.access(1, false); // slice 1 miss
        assert_eq!(l.slice_stats(0).accesses, 2);
        assert_eq!(l.slice_stats(0).hits, 1);
        assert_eq!(l.slice_stats(1).accesses, 1);
        assert_eq!(l.slice_stats(1).hits, 0);
    }
}
