//! Per-core stride prefetcher.
//!
//! Streaming workloads on real hardware are *bandwidth*-bound, not
//! latency-bound, because the L2 stride prefetcher runs ahead of the
//! demand stream and keeps many lines in flight. Without it, a trace
//! driven core is limited to `MSHRs × line / latency` of bandwidth and
//! every shared-resource experiment underestimates memory contention.
//!
//! The model is a classic table-based stride detector (à la IBM POWER /
//! Intel stream prefetchers): each L1-D demand miss trains a small table
//! of independent streams; once a stream has confirmed a constant stride
//! twice, every subsequent miss on it launches `degree` prefetches ahead
//! of the stream into the L2.

use serde::{Deserialize, Serialize};

use crate::cache::LineAddr;

/// Prefetcher configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Master enable.
    pub enabled: bool,
    /// Lines fetched ahead of a confirmed stream per triggering miss.
    pub degree: u32,
    /// Number of independent streams tracked.
    pub streams: usize,
    /// Maximum absolute stride (in lines) considered a stream.
    pub max_stride: i64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            degree: 8,
            streams: 8,
            max_stride: 8,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    last_line: LineAddr,
    stride: i64,
    confidence: u8,
    lru: u64,
    valid: bool,
}

/// Stride-detecting stream prefetcher state for one core.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: PrefetchConfig,
    table: Vec<StreamEntry>,
    clock: u64,
    issued: u64,
}

impl StridePrefetcher {
    /// Create a prefetcher with the given configuration.
    pub fn new(cfg: PrefetchConfig) -> Self {
        let streams = cfg.streams.max(1);
        Self {
            cfg,
            table: vec![
                StreamEntry {
                    last_line: 0,
                    stride: 0,
                    confidence: 0,
                    lru: 0,
                    valid: false,
                };
                streams
            ],
            clock: 0,
            issued: 0,
        }
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Train on an L1-D demand miss at `line`; returns the lines to
    /// prefetch (empty when disabled or the stream is not yet confirmed).
    pub fn train(&mut self, line: LineAddr) -> Vec<LineAddr> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        self.clock += 1;

        // Find the stream this miss extends: the entry whose predicted
        // next position is nearest to `line` within the stride window.
        let mut best: Option<(usize, i64)> = None;
        for (i, e) in self.table.iter().enumerate() {
            if !e.valid {
                continue;
            }
            let delta = line as i64 - e.last_line as i64;
            if delta != 0 && delta.abs() <= self.cfg.max_stride {
                let score = delta.abs();
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((i, delta));
                }
            }
        }

        match best {
            Some((i, delta)) => {
                let e = &mut self.table[i];
                if delta == e.stride {
                    e.confidence = e.confidence.saturating_add(1);
                } else {
                    e.stride = delta;
                    e.confidence = 1;
                }
                e.last_line = line;
                e.lru = self.clock;
                if e.confidence >= 2 {
                    let stride = e.stride;
                    let degree = self.cfg.degree;
                    let out: Vec<LineAddr> = (1..=i64::from(degree))
                        .filter_map(|k| line.checked_add_signed(stride * k))
                        .collect();
                    self.issued += out.len() as u64;
                    return out;
                }
                Vec::new()
            }
            None => {
                // Allocate a new stream over the LRU entry.
                let victim = self
                    .table
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
                    .map(|(i, _)| i)
                    // sms-lint: allow(E1): the stream table has a fixed nonzero size
                    .expect("table non-empty");
                self.table[victim] = StreamEntry {
                    last_line: line,
                    stride: 0,
                    confidence: 0,
                    lru: self.clock,
                    valid: true,
                };
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(PrefetchConfig::default())
    }

    #[test]
    fn sequential_stream_confirms_then_prefetches() {
        let mut p = pf();
        assert!(p.train(100).is_empty(), "first touch allocates");
        assert!(p.train(101).is_empty(), "stride observed once");
        let out = p.train(102);
        assert_eq!(
            out,
            (103..=110).collect::<Vec<_>>(),
            "confirmed: degree-8 ahead"
        );
        assert_eq!(p.issued(), 8);
    }

    #[test]
    fn strided_stream_follows_stride() {
        let mut p = pf();
        p.train(0);
        p.train(2);
        let out = p.train(4);
        assert_eq!(out[..4], [6, 8, 10, 12]);
    }

    #[test]
    fn random_misses_never_prefetch() {
        let mut p = pf();
        for line in [5u64, 1000, 37, 99_999, 12, 777, 3] {
            assert!(p.train(line).is_empty(), "line {line} must not prefetch");
        }
    }

    #[test]
    fn interleaved_streams_tracked_independently() {
        let mut p = pf();
        // Two interleaved sequential streams far apart.
        let (a, b) = (1_000u64, 9_000u64);
        p.train(a);
        p.train(b);
        p.train(a + 1);
        p.train(b + 1);
        let out_a = p.train(a + 2);
        let out_b = p.train(b + 2);
        assert_eq!(out_a[..4], [a + 3, a + 4, a + 5, a + 6]);
        assert_eq!(out_b[..4], [b + 3, b + 4, b + 5, b + 6]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = pf();
        p.train(10);
        p.train(11);
        p.train(12); // confirmed, prefetches
                     // Direction reversal: confidence resets, no prefetch until the
                     // new stride is seen twice.
        assert!(p.train(11).is_empty(), "new stride seen once");
        let out = p.train(10);
        assert_eq!(out[..4], [9, 8, 7, 6], "descending stream reconfirmed");
    }

    #[test]
    fn disabled_prefetcher_is_inert() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            enabled: false,
            ..PrefetchConfig::default()
        });
        p.train(1);
        p.train(2);
        assert!(p.train(3).is_empty());
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn large_jumps_allocate_new_streams() {
        let mut p = pf();
        p.train(100);
        p.train(101);
        p.train(102); // stream confirmed
                      // A jump beyond max_stride must not be folded into the stream.
        assert!(p.train(100_000).is_empty());
        // The original stream continues undisturbed.
        let out = p.train(103);
        assert!(!out.is_empty());
    }

    #[test]
    fn table_capacity_is_bounded() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            streams: 2,
            ..PrefetchConfig::default()
        });
        // More streams than entries: oldest gets evicted, no panic.
        for base in [0u64, 10_000, 20_000, 30_000] {
            p.train(base);
            p.train(base + 1);
        }
        assert!(p.table.len() == 2);
    }

    #[test]
    fn overflow_guard_near_address_top() {
        let mut p = pf();
        let top = u64::MAX - 1;
        p.train(top - 2);
        p.train(top - 1);
        let out = p.train(top);
        // Prefetches past the address space are dropped, not wrapped.
        assert!(out.len() <= 8);
        assert!(out.iter().all(|&l| l > top));
    }
}
