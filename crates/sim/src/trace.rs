//! Micro-op trace representation and the instruction-source abstraction.
//!
//! The simulator is trace-driven: each core consumes a stream of
//! [`MicroOp`]s from an [`InstructionSource`]. Workload generators (the
//! `sms-workloads` crate) implement [`InstructionSource`] by expanding a
//! statistical benchmark profile on the fly, so no trace files are needed.

/// One micro-operation as seen by the core model.
///
/// `Compute` ops are batched (a run of `count` non-memory instructions)
/// because they carry no per-instruction state; this keeps generation and
/// simulation fast without losing timing fidelity, since the interval core
/// model only needs the instruction count for dispatch-cycle accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroOp {
    /// A run of `count` non-memory, non-branch instructions.
    Compute {
        /// Number of instructions in the run; must be non-zero.
        count: u32,
    },
    /// A load from byte address `addr`.
    Load {
        /// Virtual byte address accessed.
        addr: u64,
        /// Whether this load depends on the previous load's result
        /// (pointer chasing); dependent loads cannot overlap with their
        /// predecessor in the core model.
        dependent: bool,
    },
    /// A store to byte address `addr`.
    Store {
        /// Virtual byte address accessed.
        addr: u64,
    },
    /// A conditional branch.
    Branch {
        /// Whether the branch predictor mispredicted it (the workload
        /// profile decides this statistically; the core model charges the
        /// flush penalty).
        mispredicted: bool,
    },
}

impl MicroOp {
    /// Number of retired instructions this micro-op accounts for.
    ///
    /// # Examples
    ///
    /// ```
    /// use sms_sim::trace::MicroOp;
    /// assert_eq!(MicroOp::Compute { count: 7 }.instruction_count(), 7);
    /// assert_eq!(MicroOp::Load { addr: 64, dependent: false }.instruction_count(), 1);
    /// ```
    pub fn instruction_count(&self) -> u64 {
        match self {
            Self::Compute { count } => u64::from(*count),
            _ => 1,
        }
    }

    /// Whether this micro-op accesses data memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Self::Load { .. } | Self::Store { .. })
    }
}

/// A source of micro-ops for one core.
///
/// Implementations must be deterministic for a fixed construction (same
/// seed ⇒ same stream) so that simulations are reproducible, and must be
/// effectively infinite: the simulator stops on instruction budgets, never
/// on source exhaustion. `Send` is required because independent simulations
/// are run on worker threads.
pub trait InstructionSource: Send {
    /// Produce the next micro-op.
    fn next_op(&mut self) -> MicroOp;

    /// Instruction address (program counter) region identifier for the
    /// current position, used to drive the L1-I model. Implementations
    /// return a byte address within the benchmark's code footprint; the
    /// default places everything in one line (perfect I-cache).
    fn code_addr(&mut self) -> u64 {
        0
    }

    /// A short human-readable label (benchmark name) for reporting.
    fn label(&self) -> &str {
        "anonymous"
    }
}

/// Replays a fixed sequence of micro-ops, cycling when exhausted.
///
/// Mostly useful in tests and microbenchmarks where precise control over
/// the op stream is needed.
///
/// # Examples
///
/// ```
/// use sms_sim::trace::{InstructionSource, MicroOp, VecSource};
/// let mut s = VecSource::new("tiny", vec![MicroOp::Compute { count: 2 }]);
/// assert_eq!(s.next_op(), MicroOp::Compute { count: 2 });
/// assert_eq!(s.next_op(), MicroOp::Compute { count: 2 }); // cycles
/// ```
#[derive(Debug, Clone)]
pub struct VecSource {
    label: String,
    ops: Vec<MicroOp>,
    pos: usize,
}

impl VecSource {
    /// Create a cycling source from a non-empty op sequence.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty: a core cannot run on an empty stream.
    pub fn new(label: impl Into<String>, ops: Vec<MicroOp>) -> Self {
        assert!(!ops.is_empty(), "VecSource requires at least one op");
        Self {
            label: label.into(),
            ops,
            pos: 0,
        }
    }
}

impl InstructionSource for VecSource {
    fn next_op(&mut self) -> MicroOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_counts() {
        assert_eq!(MicroOp::Compute { count: 3 }.instruction_count(), 3);
        assert_eq!(
            MicroOp::Load {
                addr: 0,
                dependent: false
            }
            .instruction_count(),
            1
        );
        assert_eq!(MicroOp::Store { addr: 0 }.instruction_count(), 1);
        assert_eq!(
            MicroOp::Branch { mispredicted: true }.instruction_count(),
            1
        );
    }

    #[test]
    fn memory_classification() {
        assert!(MicroOp::Load {
            addr: 1,
            dependent: true
        }
        .is_memory());
        assert!(MicroOp::Store { addr: 1 }.is_memory());
        assert!(!MicroOp::Compute { count: 1 }.is_memory());
        assert!(!MicroOp::Branch {
            mispredicted: false
        }
        .is_memory());
    }

    #[test]
    fn vec_source_cycles_in_order() {
        let ops = vec![
            MicroOp::Load {
                addr: 64,
                dependent: false,
            },
            MicroOp::Store { addr: 128 },
            MicroOp::Branch {
                mispredicted: false,
            },
        ];
        let mut s = VecSource::new("t", ops.clone());
        for i in 0..9 {
            assert_eq!(s.next_op(), ops[i % 3]);
        }
        assert_eq!(s.label(), "t");
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn vec_source_rejects_empty() {
        let _ = VecSource::new("e", vec![]);
    }

    #[test]
    fn sources_are_object_safe() {
        let s: Box<dyn InstructionSource> =
            Box::new(VecSource::new("o", vec![MicroOp::Compute { count: 1 }]));
        assert_eq!(s.label(), "o");
    }
}
