//! Simulation results: per-core and system-level metrics.
//!
//! [`SimResult`] is serde-serializable so experiment harnesses can cache
//! simulation outcomes on disk and rebuild figures without re-simulating.

use serde::{Deserialize, Serialize};

use crate::config::CORE_FREQ_GHZ;
use crate::core_model::CoreCounters;

/// Metrics for one core / benchmark instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreResult {
    /// Benchmark label from the instruction source.
    pub label: String,
    /// Instructions retired in the measured phase.
    pub instructions: u64,
    /// Core cycles elapsed in the measured phase.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Loads that missed the private L1-D.
    pub l1d_load_misses: u64,
    /// Loads serviced by the LLC.
    pub llc_hits: u64,
    /// Loads serviced by DRAM.
    pub dram_loads: u64,
    /// DRAM traffic attributed to this core (bytes, reads + writebacks).
    pub dram_bytes: u64,
    /// Achieved DRAM bandwidth for this core in GB/s.
    pub bandwidth_gbps: f64,
    /// LLC misses (loads to DRAM) per kilo-instruction.
    pub llc_mpki: f64,
    /// Cycles stalled on memory.
    pub mem_stall_cycles: u64,
    /// Cycles stalled on instruction fetch.
    pub fetch_stall_cycles: u64,
    /// Cycles lost to branch mispredictions.
    pub branch_stall_cycles: u64,
    /// Prefetches launched on behalf of this core.
    #[serde(default)]
    pub prefetches: u64,
}

impl CoreResult {
    /// Build a result from raw event counts, deriving every rate (`ipc`,
    /// `llc_mpki`, `bandwidth_gbps`) in one place so serialized and
    /// recomputed values can never diverge across call sites.
    pub fn from_counts(
        label: &str,
        counters: CoreCounters,
        dram_bytes: u64,
        prefetches: u64,
    ) -> Self {
        Self {
            label: label.to_owned(),
            instructions: counters.instructions,
            cycles: counters.cycles,
            ipc: counters.ipc(),
            l1d_load_misses: counters.load_l1_misses,
            llc_hits: counters.load_llc_hits,
            dram_loads: counters.load_dram,
            dram_bytes,
            // Zero-cycle guard: a core that never ran has no meaningful
            // rate; `max(1)` here would instead report the raw byte count
            // scaled by the frequency, a wildly wrong bandwidth.
            bandwidth_gbps: if counters.cycles == 0 {
                0.0
            } else {
                dram_bytes as f64 / counters.cycles as f64 * CORE_FREQ_GHZ
            },
            llc_mpki: if counters.instructions == 0 {
                0.0
            } else {
                counters.load_dram as f64 * 1000.0 / counters.instructions as f64
            },
            mem_stall_cycles: counters.mem_stall_cycles,
            fetch_stall_cycles: counters.fetch_stall_cycles,
            branch_stall_cycles: counters.branch_stall_cycles,
            prefetches,
        }
    }
}

/// Whole-run metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-core results, indexed by core id.
    pub cores: Vec<CoreResult>,
    /// Cycles simulated in the measured phase (max over cores).
    pub elapsed_cycles: u64,
    /// Total DRAM traffic in bytes.
    pub total_dram_bytes: u64,
    /// Aggregate achieved DRAM bandwidth in GB/s.
    pub total_bandwidth_gbps: f64,
    /// NoC transfers routed.
    pub noc_transfers: u64,
    /// NoC bisection crossings.
    pub noc_crossings: u64,
    /// LLC demand accesses.
    pub llc_accesses: u64,
    /// LLC demand hits.
    pub llc_hits: u64,
    /// Host wall-clock seconds spent simulating the measured phase.
    pub host_seconds: f64,
}

impl std::fmt::Display for SimResult {
    /// Compact human-readable run summary: one line per core plus totals.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<14} {:>8} {:>9} {:>9} {:>9}",
            "core", "IPC", "LLC MPKI", "BW GB/s", "instrs"
        )?;
        for c in &self.cores {
            writeln!(
                f,
                "{:<14} {:>8.3} {:>9.2} {:>9.2} {:>9}",
                c.label, c.ipc, c.llc_mpki, c.bandwidth_gbps, c.instructions
            )?;
        }
        write!(
            f,
            "total: {} cycles, {:.1} GB/s DRAM, {:.2}s host",
            self.elapsed_cycles, self.total_bandwidth_gbps, self.host_seconds
        )
    }
}

impl SimResult {
    /// IPC of core `i`.
    pub fn ipc(&self, i: usize) -> f64 {
        self.cores[i].ipc
    }

    /// Per-core bandwidth utilization in GB/s.
    pub fn bandwidth(&self, i: usize) -> f64 {
        self.cores[i].bandwidth_gbps
    }

    /// System throughput relative to per-core reference IPCs: the sum over
    /// cores of `IPC_i / reference_ipc_i` (Eyerman & Eeckhout's STP).
    ///
    /// # Panics
    ///
    /// Panics if `reference_ipcs` has a different length than the core
    /// count or contains a non-positive value.
    pub fn stp(&self, reference_ipcs: &[f64]) -> f64 {
        assert_eq!(reference_ipcs.len(), self.cores.len());
        self.cores
            .iter()
            .zip(reference_ipcs)
            .map(|(c, &r)| {
                assert!(r > 0.0, "reference IPC must be positive");
                c.ipc / r
            })
            .sum()
    }

    /// Simulated time in seconds for the measured phase.
    pub fn simulated_seconds(&self) -> f64 {
        self.elapsed_cycles as f64 / (CORE_FREQ_GHZ * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with_ipcs(ipcs: &[f64]) -> SimResult {
        SimResult {
            cores: ipcs
                .iter()
                .enumerate()
                .map(|(i, &ipc)| CoreResult {
                    label: format!("b{i}"),
                    instructions: 1000,
                    cycles: (1000.0 / ipc) as u64,
                    ipc,
                    l1d_load_misses: 0,
                    llc_hits: 0,
                    dram_loads: 0,
                    dram_bytes: 0,
                    bandwidth_gbps: 0.0,
                    llc_mpki: 0.0,
                    mem_stall_cycles: 0,
                    fetch_stall_cycles: 0,
                    branch_stall_cycles: 0,
                    prefetches: 0,
                })
                .collect(),
            elapsed_cycles: 4_000_000_000,
            total_dram_bytes: 0,
            total_bandwidth_gbps: 0.0,
            noc_transfers: 0,
            noc_crossings: 0,
            llc_accesses: 0,
            llc_hits: 0,
            host_seconds: 0.0,
        }
    }

    #[test]
    fn stp_sums_normalized_ipcs() {
        let r = result_with_ipcs(&[1.0, 2.0]);
        let stp = r.stp(&[2.0, 2.0]);
        assert!((stp - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn stp_rejects_length_mismatch() {
        let r = result_with_ipcs(&[1.0]);
        let _ = r.stp(&[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn stp_rejects_zero_reference() {
        let r = result_with_ipcs(&[1.0]);
        let _ = r.stp(&[0.0]);
    }

    #[test]
    fn simulated_seconds_uses_frequency() {
        let r = result_with_ipcs(&[1.0]);
        assert!((r.simulated_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let r = result_with_ipcs(&[1.5, 0.5]);
        let s = serde_json::to_string(&r).unwrap();
        let back: SimResult = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn display_is_compact_and_nonempty() {
        let r = result_with_ipcs(&[1.5, 0.5]);
        let text = r.to_string();
        assert!(text.contains("b0"));
        assert!(text.contains("total:"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn from_counts_derives_rates_once() {
        let counters = CoreCounters {
            instructions: 10_000,
            cycles: 5_000,
            load_dram: 40,
            ..CoreCounters::default()
        };
        let r = CoreResult::from_counts("bench", counters, 64_000, 7);
        assert!((r.ipc - counters.ipc()).abs() < 1e-12);
        assert!((r.ipc - 2.0).abs() < 1e-12);
        assert!((r.llc_mpki - 4.0).abs() < 1e-12, "40 per 10k instrs");
        assert!(
            (r.bandwidth_gbps - 64_000.0 / 5_000.0 * CORE_FREQ_GHZ).abs() < 1e-12,
            "bytes per cycle times frequency"
        );
        assert_eq!(r.prefetches, 7);
        assert_eq!(r.label, "bench");
    }

    #[test]
    fn from_counts_zero_denominators() {
        let r = CoreResult::from_counts("idle", CoreCounters::default(), 0, 0);
        assert_eq!(r.ipc, 0.0);
        assert_eq!(r.llc_mpki, 0.0);
        assert_eq!(r.bandwidth_gbps, 0.0);
    }

    #[test]
    fn zero_cycles_with_traffic_reports_zero_bandwidth() {
        // Bytes attributed to a core that recorded no cycles (e.g. an
        // empty measured window) must not explode into a huge rate.
        let r = CoreResult::from_counts("idle", CoreCounters::default(), 64_000, 0);
        assert_eq!(r.bandwidth_gbps, 0.0);
        assert!(r.bandwidth_gbps.is_finite());
    }

    #[test]
    fn old_cache_entries_without_prefetch_field_deserialize() {
        let r = result_with_ipcs(&[1.0]);
        let mut v: serde_json::Value = serde_json::to_value(&r).unwrap();
        v["cores"][0].as_object_mut().unwrap().remove("prefetches");
        let back: SimResult = serde_json::from_value(v).unwrap();
        assert_eq!(back.cores[0].prefetches, 0);
    }
}
