//! Per-core window shards for parallel windowed simulation.
//!
//! Inside a synchronization window every core runs against a *frozen*
//! snapshot of the shared uncore (the state as of the last barrier) plus a
//! private [`WindowShard`]: cloned NoC/DRAM queues for latency estimation,
//! an overlay of lines the core itself filled this window, and a log of
//! deferred [`DeferredOp`] events. At the barrier the system replays each
//! core's events into the real [`Uncore`] in an order derived purely from
//! the window index, so the merged shared state — and therefore every
//! simulated number — is a deterministic function of the configuration and
//! the workloads, independent of how many host threads ran the window.
//!
//! Cross-core contention within one window is visible with a one-window
//! lag: the frozen queues already contain all traffic replayed at earlier
//! barriers, and a core's own window traffic stamps its private clone, so
//! self-contention is immediate while cross-core backpressure arrives one
//! quantum later (the usual windowed-simulation trade-off, applied to the
//! host parallelization instead of the target model).

use std::collections::BTreeSet;

use crate::cache::LineAddr;
use crate::dram::Dram;
use crate::hierarchy::{HitLevel, MemAccess, MemoryBackend, Uncore};
use crate::noc::Noc;
use crate::profile::SimProf;

/// One shared-memory interaction deferred to the window barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeferredOp {
    /// An access (demand or prefetch) that missed the private caches.
    Demand {
        /// Line address.
        line: LineAddr,
        /// Issue timestamp in global cycles.
        now: u64,
    },
    /// A dirty private-cache victim pushed below the L2.
    Writeback {
        /// Line address.
        line: LineAddr,
        /// Issue timestamp in global cycles.
        now: u64,
    },
}

/// Per-core deferred-merge state for one synchronization window.
#[derive(Debug)]
pub struct WindowShard {
    /// The core this shard belongs to.
    pub core: u8,
    /// Deferred interactions in issue order, replayed at the barrier.
    pub events: Vec<DeferredOp>,
    /// Lines this core filled into the (future) LLC during this window.
    filled: BTreeSet<LineAddr>,
    /// Private clone of the NoC queues, used for latency estimation only.
    noc: Noc,
    /// Private clone of the DRAM queues, used for latency estimation only.
    dram: Dram,
    /// Whether `noc`/`dram` were cloned from the current window's frozen
    /// uncore yet; cloning is deferred to the first shared access so
    /// compute-bound windows pay nothing.
    queues_fresh: bool,
    /// Optional phase-profiling handles; shard accesses run inside
    /// `core.step`, so they land under the fork-side component phases.
    prof: SimProf,
}

impl WindowShard {
    /// Build the shard for `core`, seeding the queue clones from `uncore`.
    pub fn new(core: u8, uncore: &Uncore) -> Self {
        Self {
            core,
            events: Vec::new(),
            filled: BTreeSet::new(),
            noc: uncore.noc.clone(),
            dram: uncore.dram.clone(),
            queues_fresh: false,
            prof: SimProf::detached(),
        }
    }

    /// Attach (or detach) phase-profiling handles.
    pub fn set_prof(&mut self, prof: SimProf) {
        self.prof = prof;
    }

    /// Reset per-window state. The queue clones are marked stale and
    /// re-cloned lazily on the first shared access of the window.
    pub fn begin_window(&mut self) {
        debug_assert!(self.events.is_empty(), "events must be drained at merge");
        self.filled.clear();
        self.queues_fresh = false;
    }
}

/// The [`MemoryBackend`] a core drives during one window: latencies come
/// from the frozen uncore plus this core's private window state; every
/// mutation of shared state is deferred into the shard's event log.
#[derive(Debug)]
pub struct ShardBackend<'a> {
    /// Shared state as of the last barrier (read-only).
    pub frozen: &'a Uncore,
    /// This core's private window state.
    pub shard: &'a mut WindowShard,
}

impl ShardBackend<'_> {
    /// Clone the frozen queues into the shard on first use this window.
    fn refresh_queues(&mut self) {
        if !self.shard.queues_fresh {
            self.shard.noc.clone_from(&self.frozen.noc);
            self.shard.dram.clone_from(&self.frozen.dram);
            self.shard.queues_fresh = true;
        }
    }

    /// Whether the LLC will hold `line` when this window's fills land:
    /// present in the frozen LLC or filled by this core this window.
    fn llc_has(&self, line: LineAddr) -> bool {
        self.frozen.llc.probe(line) || self.shard.filled.contains(&line)
    }
}

impl MemoryBackend for ShardBackend<'_> {
    /// Mirrors [`Uncore::access`] latency math against the frozen LLC and
    /// the shard's private queue clones, recording a
    /// [`DeferredOp::Demand`] for the barrier replay.
    fn shared_access(&mut self, core: u8, line: LineAddr, now: u64) -> MemAccess {
        debug_assert_eq!(core, self.shard.core);
        self.shard.events.push(DeferredOp::Demand { line, now });
        self.refresh_queues();
        let llc = &self.frozen.llc;
        let slice = llc.home_slice(line);
        let to_slice = {
            let _noc = self.shard.prof.fork_noc();
            self.shard.noc.transfer(u32::from(core), slice, line, now)
        };
        let mut latency = to_slice.latency + u64::from(llc.access_latency());

        let llc_hit = {
            let _llc = self.shard.prof.fork_llc();
            self.llc_has(line)
        };
        if llc_hit {
            return MemAccess {
                latency,
                level: HitLevel::Llc,
            };
        }

        let mc = self.shard.dram.controller_for(line) as u32;
        let mc_node = self.shard.noc.mc_node(mc, self.frozen.num_mcs);
        let to_mc = {
            let _noc = self.shard.prof.fork_noc();
            self.shard.noc.transfer(slice, mc_node, line, now + latency)
        };
        let dram = {
            let _dram = self.shard.prof.fork_dram();
            self.shard.dram.read(line, now + latency + to_mc.latency)
        };
        latency += to_mc.latency + dram.latency;
        self.shard.filled.insert(line);
        MemAccess {
            latency,
            level: HitLevel::Dram,
        }
    }

    /// Records a [`DeferredOp::Writeback`]; the core never waits on
    /// writebacks, but ones that will miss the LLC still stamp the private
    /// queue clones so bandwidth backpressure is charged this window.
    fn shared_writeback(&mut self, core: u8, line: LineAddr, now: u64) {
        debug_assert_eq!(core, self.shard.core);
        self.shard.events.push(DeferredOp::Writeback { line, now });
        let llc_holds = {
            let _llc = self.shard.prof.fork_llc();
            self.llc_has(line)
        };
        if llc_holds {
            return;
        }
        self.refresh_queues();
        let slice = self.frozen.llc.home_slice(line);
        let mc = self.shard.dram.controller_for(line) as u32;
        let mc_node = self.shard.noc.mc_node(mc, self.frozen.num_mcs);
        {
            let _noc = self.shard.prof.fork_noc();
            let _ = self.shard.noc.transfer(slice, mc_node, line, now);
        }
        {
            let _dram = self.shard.prof.fork_dram();
            let _ = self.shard.dram.writeback(line, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::hierarchy::Uncore;

    fn cfg() -> SystemConfig {
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = 2;
        cfg.llc.num_slices = 2;
        cfg.noc.mesh_cols = 2;
        cfg.noc.mesh_rows = 1;
        cfg.noc.cross_section_links = 1;
        cfg.dram.num_controllers = 1;
        cfg.validate().unwrap();
        cfg
    }

    #[test]
    fn shard_latencies_match_uncore_for_a_fresh_window() {
        let cfg = cfg();
        let mut real = Uncore::new(&cfg);
        let frozen = Uncore::new(&cfg);
        let mut shard = WindowShard::new(0, &frozen);
        shard.begin_window();
        let mut backend = ShardBackend {
            frozen: &frozen,
            shard: &mut shard,
        };
        // Identical access sequence against an identical starting state
        // must produce identical latencies and levels.
        for (i, line) in [5u64, 9, 5, 77, 9].into_iter().enumerate() {
            let now = i as u64 * 100;
            let a = backend.shared_access(0, line, now);
            let b = real.shared_access(0, line, now);
            assert_eq!(a, b, "line {line} at {now}");
        }
        assert_eq!(shard.events.len(), 5);
    }

    #[test]
    fn replaying_demands_reconstructs_uncore_state() {
        let cfg = cfg();
        let mut sequential = Uncore::new(&cfg);
        let mut merged = Uncore::new(&cfg);
        let frozen = Uncore::new(&cfg);
        let mut shard = WindowShard::new(1, &frozen);
        shard.begin_window();
        {
            let mut backend = ShardBackend {
                frozen: &frozen,
                shard: &mut shard,
            };
            for line in [3u64, 12, 3, 40] {
                let _ = backend.shared_access(1, line, 0);
                let _ = sequential.shared_access(1, line, 0);
            }
        }
        for ev in shard.events.drain(..) {
            match ev {
                DeferredOp::Demand { line, now } => {
                    let _ = merged.shared_access(1, line, now);
                }
                DeferredOp::Writeback { line, now } => merged.shared_writeback(1, line, now),
            }
        }
        assert_eq!(merged.llc.stats(), sequential.llc.stats());
        assert_eq!(merged.dram.total_bytes(), sequential.dram.total_bytes());
        assert_eq!(merged.dram_bytes_per_core, sequential.dram_bytes_per_core);
    }

    #[test]
    fn begin_window_discards_fill_overlay() {
        let cfg = cfg();
        let frozen = Uncore::new(&cfg);
        let mut shard = WindowShard::new(0, &frozen);
        shard.begin_window();
        {
            let mut backend = ShardBackend {
                frozen: &frozen,
                shard: &mut shard,
            };
            assert_eq!(backend.shared_access(0, 8, 0).level, HitLevel::Dram);
            assert_eq!(
                backend.shared_access(0, 8, 0).level,
                HitLevel::Llc,
                "own fill visible within the window"
            );
        }
        shard.events.clear();
        shard.begin_window();
        let mut backend = ShardBackend {
            frozen: &frozen,
            shard: &mut shard,
        };
        assert_eq!(
            backend.shared_access(0, 8, 0).level,
            HitLevel::Dram,
            "overlay does not leak across windows (the real fill lives in the merged uncore)"
        );
    }
}
