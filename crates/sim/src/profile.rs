//! Optional phase-profiling handles for the simulator hot paths.
//!
//! [`SimProf`] is a cloneable bundle of pre-interned [`sms_obs::Phase`]
//! handles covering the simulator's phase taxonomy (see
//! [`SimProf::attach`] for the paths). It is distributed into the
//! component structs — [`Uncore`](crate::hierarchy::Uncore),
//! [`PrivateCaches`](crate::hierarchy::PrivateCaches),
//! [`WindowShard`](crate::shard::WindowShard) — so the hot loops can
//! open scopes without threading an extra parameter everywhere.
//!
//! Detached (the default) it is a `None`: every scope call is a single
//! branch with **no monotonic-clock read and no atomic traffic**, which
//! is what makes the profiler-on/off bit-identity guarantee structural —
//! the profiler only ever *observes* host time, never simulated state.

use std::sync::Arc;

use sms_obs::prof::{Phase, PhaseGuard, Profiler};

/// The pre-interned phase handles; one allocation per attached run.
#[derive(Debug)]
pub(crate) struct Phases {
    pub run: Arc<Phase>,
    pub fork: Arc<Phase>,
    pub core_step: Arc<Phase>,
    pub l2: Arc<Phase>,
    pub fork_llc: Arc<Phase>,
    pub fork_noc: Arc<Phase>,
    pub fork_dram: Arc<Phase>,
    pub merge: Arc<Phase>,
    pub merge_llc: Arc<Phase>,
    pub merge_noc: Arc<Phase>,
    pub merge_dram: Arc<Phase>,
}

/// Cloneable, optionally-attached profiling handle set.
///
/// `SimProf::default()` is detached: all scope methods return `None`
/// without reading the clock. [`SimProf::attach`] interns the phase
/// taxonomy in the given [`Profiler`] and returns a live handle set.
#[derive(Debug, Clone, Default)]
pub struct SimProf(Option<Arc<Phases>>);

impl SimProf {
    /// A detached handle set (all scopes are no-ops).
    pub fn detached() -> Self {
        Self(None)
    }

    /// Intern the simulator phase taxonomy in `profiler` and return a
    /// live handle set. The paths (collapsed-stack form):
    ///
    /// ```text
    /// sim.run
    /// sim.run;window.fork
    /// sim.run;window.fork;core.step
    /// sim.run;window.fork;core.step;{l2,llc,noc,dram}
    /// sim.run;window.merge
    /// sim.run;window.merge;{llc,noc,dram}
    /// ```
    ///
    /// `l2`/`llc`/`noc`/`dram` under `core.step` are the speculative
    /// shard-side models cores hit inside a window; the same components
    /// under `window.merge` are the authoritative uncore replay.
    pub fn attach(profiler: &Profiler) -> Self {
        Self(Some(Arc::new(Phases {
            run: profiler.phase("sim.run"),
            fork: profiler.phase("sim.run;window.fork"),
            core_step: profiler.phase("sim.run;window.fork;core.step"),
            l2: profiler.phase("sim.run;window.fork;core.step;l2"),
            fork_llc: profiler.phase("sim.run;window.fork;core.step;llc"),
            fork_noc: profiler.phase("sim.run;window.fork;core.step;noc"),
            fork_dram: profiler.phase("sim.run;window.fork;core.step;dram"),
            merge: profiler.phase("sim.run;window.merge"),
            merge_llc: profiler.phase("sim.run;window.merge;llc"),
            merge_noc: profiler.phase("sim.run;window.merge;noc"),
            merge_dram: profiler.phase("sim.run;window.merge;dram"),
        })))
    }

    /// Whether a profiler is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    fn scope(&self, pick: impl FnOnce(&Phases) -> &Arc<Phase>) -> Option<PhaseGuard<'_>> {
        // The detached path is this one branch: no clock, no atomics.
        self.0.as_deref().map(|p| pick(p).scope())
    }

    /// Scope for the whole measured run (`sim.run`).
    #[inline]
    pub(crate) fn run(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.run)
    }

    /// Scope for one window's fork side (`window.fork`).
    #[inline]
    pub(crate) fn fork(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.fork)
    }

    /// Scope for one core's window execution (`core.step`).
    #[inline]
    pub(crate) fn core_step(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.core_step)
    }

    /// Scope for a private-L2 access under `core.step`.
    #[inline]
    pub(crate) fn l2(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.l2)
    }

    /// Scope for a shard-side (frozen-snapshot) LLC access.
    #[inline]
    pub(crate) fn fork_llc(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.fork_llc)
    }

    /// Scope for a shard-side NoC transfer.
    #[inline]
    pub(crate) fn fork_noc(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.fork_noc)
    }

    /// Scope for a shard-side DRAM access.
    #[inline]
    pub(crate) fn fork_dram(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.fork_dram)
    }

    /// Scope for one window's merge (`window.merge`).
    #[inline]
    pub(crate) fn merge(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.merge)
    }

    /// Scope for an authoritative LLC access during merge replay.
    #[inline]
    pub(crate) fn merge_llc(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.merge_llc)
    }

    /// Scope for an authoritative NoC transfer during merge replay.
    #[inline]
    pub(crate) fn merge_noc(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.merge_noc)
    }

    /// Scope for an authoritative DRAM access during merge replay.
    #[inline]
    pub(crate) fn merge_dram(&self) -> Option<PhaseGuard<'_>> {
        self.scope(|p| &p.merge_dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_prof_opens_no_scopes() {
        let prof = SimProf::detached();
        assert!(!prof.is_attached());
        assert!(prof.run().is_none());
        assert!(prof.l2().is_none());
        assert!(prof.merge_dram().is_none());
    }

    #[test]
    fn attached_prof_records_into_the_profiler() {
        let profiler = Profiler::new();
        let prof = SimProf::attach(&profiler);
        assert!(prof.is_attached());
        drop(prof.run());
        drop(prof.fork());
        let snap = profiler.snapshot();
        let run = snap
            .phases
            .iter()
            .find(|p| p.path == "sim.run")
            .expect("sim.run interned");
        assert_eq!(run.count, 1);
        // All taxonomy paths are interned up front, even if never hit.
        assert_eq!(snap.phases.len(), 11);
    }

    #[test]
    fn clones_share_the_same_phases() {
        let profiler = Profiler::new();
        let prof = SimProf::attach(&profiler);
        let clone = prof.clone();
        drop(prof.core_step());
        drop(clone.core_step());
        let snap = profiler.snapshot();
        let step = snap
            .phases
            .iter()
            .find(|p| p.path.ends_with("core.step"))
            .expect("core.step interned");
        assert_eq!(step.count, 2);
    }
}
