//! The full memory hierarchy: per-core private caches in front of the
//! shared uncore (NUCA LLC + NoC + DRAM).
//!
//! The hierarchy is inclusive: L1 ⊆ L2 ⊆ LLC. Inclusion across the shared
//! LLC is maintained lazily — when the LLC evicts a line owned by another
//! core, a back-invalidation is queued on the [`Uncore`] and applied by the
//! system at the next synchronization quantum boundary (the slight timing
//! slack is the usual windowed-simulation trade-off).

use std::collections::VecDeque;

use crate::cache::{Cache, LineAddr};
use crate::config::SystemConfig;
use crate::dram::Dram;
use crate::noc::Noc;
use crate::nuca::NucaLlc;
use crate::prefetch::StridePrefetcher;
use crate::profile::SimProf;

/// Which level serviced a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Hit in the private L1 (D or I).
    L1,
    /// Hit in the private L2.
    L2,
    /// Hit in the shared NUCA LLC.
    Llc,
    /// Serviced by main memory.
    Dram,
}

/// Result of one memory access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Total load-to-use latency in cycles.
    pub latency: u64,
    /// Deepest level that had to service the request.
    pub level: HitLevel,
}

/// Maximum prefetches in flight per core; beyond this the prefetcher
/// stops issuing (hardware fill-buffer limit).
const MAX_PENDING_PREFETCHES: usize = 32;

/// A core's view of the shared memory system below its private caches.
///
/// The sequential path drives the [`Uncore`] directly; inside a parallel
/// sync window each core instead drives a
/// [`ShardBackend`](crate::shard::ShardBackend) that reads a frozen
/// barrier-time snapshot and defers its mutations for an ordered replay at
/// the next barrier. Both implementations compute identical latencies, so
/// results do not depend on which one runs.
pub trait MemoryBackend {
    /// Service an access from `core` that missed the private caches,
    /// returning the latency beyond the private levels and the level that
    /// serviced it.
    fn shared_access(&mut self, core: u8, line: LineAddr, now: u64) -> MemAccess;

    /// Push a dirty private-cache victim from `core` below the L2: into
    /// the LLC if it still holds the line, else on to DRAM. The issuing
    /// core never waits on writebacks.
    fn shared_writeback(&mut self, core: u8, line: LineAddr, now: u64);
}

/// A prefetch launched but not yet delivered to the L2.
#[derive(Debug, Clone, Copy)]
struct PendingPrefetch {
    line: LineAddr,
    /// Cycle at which the data arrives (includes queueing in the shared
    /// resources, so bandwidth backpressure throttles the run-ahead).
    completion: u64,
}

/// One core's private caches and prefetcher.
#[derive(Debug, Clone)]
pub struct PrivateCaches {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified private L2.
    pub l2: Cache,
    /// Stride prefetcher trained by L1-D demand misses.
    pub prefetcher: StridePrefetcher,
    /// Prefetches in flight, ordered by launch time.
    pending_prefetches: VecDeque<PendingPrefetch>,
    /// Optional phase-profiling handles (detached by default; timing
    /// only, never consulted by the simulation itself).
    prof: SimProf,
}

impl PrivateCaches {
    /// Build the private hierarchy for one core.
    pub fn new(cfg: &SystemConfig) -> Self {
        Self {
            l1i: Cache::new(&cfg.l1i),
            l1d: Cache::new(&cfg.l1d),
            l2: Cache::new(&cfg.l2),
            prefetcher: StridePrefetcher::new(cfg.prefetch.clone()),
            pending_prefetches: VecDeque::new(),
            prof: SimProf::detached(),
        }
    }

    /// Attach (or detach) phase-profiling handles.
    pub fn set_prof(&mut self, prof: SimProf) {
        self.prof = prof;
    }

    /// Whether a prefetch for `line` is in flight.
    fn pending_prefetch(&self, line: LineAddr) -> Option<u64> {
        self.pending_prefetches
            .iter()
            .find(|p| p.line == line)
            .map(|p| p.completion)
    }
}

/// Shared resources: LLC slices, NoC, DRAM, plus deferred back-invalidations.
#[derive(Debug)]
pub struct Uncore {
    /// The NUCA LLC.
    pub llc: NucaLlc,
    /// The mesh NoC.
    pub noc: Noc,
    /// The DRAM subsystem.
    pub dram: Dram,
    /// DRAM traffic attributed per core (demand reads + writebacks of lines
    /// the core owns), in bytes.
    pub dram_bytes_per_core: Vec<u64>,
    /// Back-invalidations queued by LLC evictions: `(owner core, line)`.
    pub pending_invalidations: Vec<(u8, LineAddr)>,
    pub(crate) num_mcs: u32,
    inclusive: bool,
    /// Optional phase-profiling handles; the uncore's accesses run during
    /// the authoritative merge replay, so they land under `window.merge`.
    prof: SimProf,
}

impl Uncore {
    /// Build the shared uncore.
    pub fn new(cfg: &SystemConfig) -> Self {
        Self {
            llc: NucaLlc::new(&cfg.llc),
            noc: Noc::new(&cfg.noc),
            dram: Dram::new(&cfg.dram),
            dram_bytes_per_core: vec![0; cfg.num_cores as usize],
            pending_invalidations: Vec::new(),
            num_mcs: cfg.dram.num_controllers,
            inclusive: cfg.inclusive_llc,
            prof: SimProf::detached(),
        }
    }

    /// Attach (or detach) phase-profiling handles.
    pub fn set_prof(&mut self, prof: SimProf) {
        self.prof = prof;
    }

    /// Reset measurement counters (after warm-up) without touching cache
    /// contents or queue state.
    pub fn reset_stats(&mut self) {
        for b in &mut self.dram_bytes_per_core {
            *b = 0;
        }
        // Cache/NoC/DRAM stats are cumulative; the system snapshots them at
        // the end of warmup and subtracts. Only per-core attribution needs
        // zeroing here because it is read directly.
    }

    /// Route a writeback of `line` (owned by `owner`) from its home LLC
    /// slice to DRAM, consuming NoC and DRAM bandwidth. The issuing core
    /// does not wait on writebacks.
    pub fn writeback_to_dram(&mut self, line: LineAddr, owner: u8, now: u64) {
        let slice_node = self.llc.home_slice(line);
        let mc = self.dram.controller_for(line) as u32;
        let mc_node = self.noc.mc_node(mc, self.num_mcs);
        {
            let _noc = self.prof.merge_noc();
            let _ = self.noc.transfer(slice_node, mc_node, line, now);
        }
        {
            let _dram = self.prof.merge_dram();
            let _ = self.dram.writeback(line, now);
        }
        self.dram_bytes_per_core[owner as usize] += crate::config::LINE_SIZE;
    }

    /// Service an access that missed the private caches. Returns the
    /// latency beyond the private levels and whether it was an LLC hit.
    ///
    /// On an LLC miss the line is fetched from DRAM and filled into the
    /// LLC; a displaced victim generates a writeback (if dirty) and a
    /// queued back-invalidation for its owner.
    pub fn access(&mut self, core: u8, line: LineAddr, now: u64) -> MemAccess {
        let slice = self.llc.home_slice(line);
        let core_node = u32::from(core);
        let to_slice = {
            let _noc = self.prof.merge_noc();
            self.noc.transfer(core_node, slice, line, now)
        };
        let mut latency = to_slice.latency + u64::from(self.llc.access_latency());

        let llc_hit = {
            let _llc = self.prof.merge_llc();
            self.llc.access(line, false)
        };
        if llc_hit {
            return MemAccess {
                latency,
                level: HitLevel::Llc,
            };
        }

        // LLC miss: slice forwards to the line's memory controller.
        let mc = self.dram.controller_for(line) as u32;
        let mc_node = self.noc.mc_node(mc, self.num_mcs);
        let to_mc = {
            let _noc = self.prof.merge_noc();
            self.noc.transfer(slice, mc_node, line, now + latency)
        };
        let dram = {
            let _dram = self.prof.merge_dram();
            self.dram.read(line, now + latency + to_mc.latency)
        };
        latency += to_mc.latency + dram.latency;
        self.dram_bytes_per_core[core as usize] += crate::config::LINE_SIZE;

        let victim = {
            let _llc = self.prof.merge_llc();
            self.llc.fill(line, false, core)
        };
        if let Some(victim) = victim {
            if victim.dirty {
                self.writeback_to_dram(victim.line, victim.owner, now + latency);
            }
            if self.inclusive {
                self.pending_invalidations.push((victim.owner, victim.line));
            }
        }

        MemAccess {
            latency,
            level: HitLevel::Dram,
        }
    }

    /// Drain queued back-invalidations, applying them to the given per-core
    /// private caches. Dirty private copies are written back to DRAM.
    pub fn apply_invalidations(&mut self, privs: &mut [PrivateCaches], now: u64) {
        let pending = std::mem::take(&mut self.pending_invalidations);
        for (owner, line) in pending {
            let p = &mut privs[owner as usize];
            let mut dirty = false;
            if let Some(ev) = p.l1d.invalidate(line) {
                dirty |= ev.dirty;
            }
            if let Some(ev) = p.l2.invalidate(line) {
                dirty |= ev.dirty;
            }
            if dirty {
                // The private copy was newer than the (already evicted) LLC
                // copy; push it to memory.
                self.writeback_to_dram(line, owner, now);
            }
        }
    }
}

impl MemoryBackend for Uncore {
    fn shared_access(&mut self, core: u8, line: LineAddr, now: u64) -> MemAccess {
        self.access(core, line, now)
    }

    fn shared_writeback(&mut self, core: u8, line: LineAddr, now: u64) {
        let llc_holds = {
            let _llc = self.prof.merge_llc();
            self.llc.access(line, true)
        };
        if !llc_holds {
            self.writeback_to_dram(line, core, now);
        }
    }
}

/// A full data access from core `core`: L1-D → L2 → LLC → DRAM, with fills
/// and writebacks along the way.
pub fn data_access<B: MemoryBackend>(
    core: u8,
    p: &mut PrivateCaches,
    uncore: &mut B,
    line: LineAddr,
    write: bool,
    now: u64,
) -> MemAccess {
    let l1_lat = u64::from(p.l1d.access_latency());
    if p.l1d.access(line, write) {
        return MemAccess {
            latency: l1_lat,
            level: HitLevel::L1,
        };
    }

    // Deliver prefetches whose data has arrived by now.
    drain_prefetches(p, uncore, core, now);

    // L1-D demand misses train the stride prefetcher; confirmed streams
    // run ahead into the L2, turning streaming workloads bandwidth-bound
    // (as hardware prefetchers do) rather than MSHR-latency-bound.
    for pf_line in p.prefetcher.train(line) {
        launch_prefetch(core, p, uncore, pf_line, now);
    }

    let l2_lat = l1_lat + u64::from(p.l2.access_latency());
    let l2_hit = {
        let _l2 = p.prof.l2();
        p.l2.access(line, false)
    };
    if l2_hit {
        fill_l1d(p, uncore, line, write, core, now);
        return MemAccess {
            latency: l2_lat,
            level: HitLevel::L2,
        };
    }

    // A demand miss may merge with an in-flight prefetch: it waits only
    // for the remaining flight time (a "late prefetch").
    if let Some(completion) = p.pending_prefetch(line) {
        p.pending_prefetches.retain(|pp| pp.line != line);
        fill_l2(p, uncore, line, core, now);
        fill_l1d(p, uncore, line, write, core, now);
        let wait = completion.saturating_sub(now);
        return MemAccess {
            latency: l2_lat.max(wait + l1_lat),
            level: HitLevel::L2,
        };
    }

    let deep = uncore.shared_access(core, line, now + l2_lat);
    fill_l2(p, uncore, line, core, now);
    fill_l1d(p, uncore, line, write, core, now);
    MemAccess {
        latency: l2_lat + deep.latency,
        level: deep.level,
    }
}

/// Launch a prefetch for `line`: the shared resources are charged now, but
/// the L2 fill happens only at the completion time, so DRAM queueing
/// backpressure bounds how far the prefetcher runs ahead.
fn launch_prefetch<B: MemoryBackend>(
    core: u8,
    p: &mut PrivateCaches,
    uncore: &mut B,
    line: LineAddr,
    now: u64,
) {
    if p.l2.probe(line)
        || p.pending_prefetch(line).is_some()
        || p.pending_prefetches.len() >= MAX_PENDING_PREFETCHES
    {
        return;
    }
    let acc = uncore.shared_access(core, line, now);
    p.pending_prefetches.push_back(PendingPrefetch {
        line,
        completion: now + acc.latency,
    });
}

/// Move arrived prefetches into the L2.
fn drain_prefetches<B: MemoryBackend>(p: &mut PrivateCaches, uncore: &mut B, core: u8, now: u64) {
    while let Some(front) = p.pending_prefetches.front().copied() {
        if front.completion > now {
            break;
        }
        p.pending_prefetches.pop_front();
        fill_l2(p, uncore, front.line, core, now);
    }
}

/// An instruction-fetch access from core `core`: L1-I → L2 → LLC → DRAM.
pub fn fetch_access<B: MemoryBackend>(
    core: u8,
    p: &mut PrivateCaches,
    uncore: &mut B,
    line: LineAddr,
    now: u64,
) -> MemAccess {
    let l1_lat = u64::from(p.l1i.access_latency());
    if p.l1i.access(line, false) {
        return MemAccess {
            latency: l1_lat,
            level: HitLevel::L1,
        };
    }
    let l2_lat = l1_lat + u64::from(p.l2.access_latency());
    let l2_hit = {
        let _l2 = p.prof.l2();
        p.l2.access(line, false)
    };
    if l2_hit {
        // Fill L1-I; instruction lines are never dirty.
        p.l1i.fill(line, false, core);
        return MemAccess {
            latency: l2_lat,
            level: HitLevel::L2,
        };
    }
    let deep = uncore.shared_access(core, line, now + l2_lat);
    fill_l2(p, uncore, line, core, now);
    p.l1i.fill(line, false, core);
    MemAccess {
        latency: l2_lat + deep.latency,
        level: deep.level,
    }
}

fn fill_l1d<B: MemoryBackend>(
    p: &mut PrivateCaches,
    uncore: &mut B,
    line: LineAddr,
    write: bool,
    core: u8,
    now: u64,
) {
    if let Some(victim) = p.l1d.fill(line, write, core) {
        if victim.dirty {
            // Write the victim down into L2; under inclusion it is present,
            // but a back-invalidation may have removed it, in which case the
            // data goes to the LLC (and on to DRAM if also gone there).
            if !p.l2.access(victim.line, true) {
                uncore.shared_writeback(core, victim.line, now);
            }
        }
    }
}

fn fill_l2<B: MemoryBackend>(
    p: &mut PrivateCaches,
    uncore: &mut B,
    line: LineAddr,
    core: u8,
    now: u64,
) {
    // The l2 scope covers only the fill itself; a victim's trip through
    // the shared levels is timed by the llc/noc/dram phases (sibling
    // scopes must not overlap, or self-times would double-count).
    let victim = {
        let _l2 = p.prof.l2();
        p.l2.fill(line, false, core)
    };
    if let Some(victim) = victim {
        // Inclusion: the L1-D copy of the L2 victim must go. The L1-I is
        // exempt (read-only code; policing it through the unified L2 would
        // let streaming data thrash the front end, which real parts avoid).
        let mut dirty = victim.dirty;
        if let Some(ev) = p.l1d.invalidate(victim.line) {
            dirty |= ev.dirty;
        }
        if dirty {
            uncore.shared_writeback(core, victim.line, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn small_system() -> SystemConfig {
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = 2;
        cfg.llc.num_slices = 2;
        cfg.noc.mesh_cols = 2;
        cfg.noc.mesh_rows = 1;
        cfg.noc.cross_section_links = 1;
        cfg.dram.num_controllers = 1;
        cfg.prefetch.enabled = false;
        cfg.validate().unwrap();
        cfg
    }

    #[test]
    fn first_access_goes_to_dram_then_l1_hits() {
        let cfg = small_system();
        let mut p = PrivateCaches::new(&cfg);
        let mut u = Uncore::new(&cfg);
        let a = data_access(0, &mut p, &mut u, 100, false, 0);
        assert_eq!(a.level, HitLevel::Dram);
        assert!(a.latency > u64::from(cfg.dram.base_latency));
        let b = data_access(0, &mut p, &mut u, 100, false, 10);
        assert_eq!(b.level, HitLevel::L1);
        assert_eq!(b.latency, u64::from(cfg.l1d.access_latency));
    }

    #[test]
    fn inclusion_after_fill() {
        let cfg = small_system();
        let mut p = PrivateCaches::new(&cfg);
        let mut u = Uncore::new(&cfg);
        data_access(0, &mut p, &mut u, 42, false, 0);
        assert!(p.l1d.probe(42));
        assert!(p.l2.probe(42));
        assert!(u.llc.probe(42));
    }

    #[test]
    fn llc_hit_after_private_eviction() {
        let cfg = small_system();
        let mut p = PrivateCaches::new(&cfg);
        let mut u = Uncore::new(&cfg);
        // Touch enough distinct lines to overflow L1D+L2 but stay in LLC.
        // L2 = 256 KB = 4096 lines; LLC = 2 MB = 32768 lines.
        for line in 0..8192u64 {
            data_access(0, &mut p, &mut u, line, false, 0);
        }
        // Line 0 fell out of L2 (stream of 8192 > 4096) but stays in LLC.
        let a = data_access(0, &mut p, &mut u, 0, false, 0);
        assert_eq!(a.level, HitLevel::Llc);
    }

    #[test]
    fn dirty_writeback_reaches_dram_via_llc_eviction() {
        let cfg = small_system();
        let mut p = PrivateCaches::new(&cfg);
        let mut u = Uncore::new(&cfg);
        data_access(0, &mut p, &mut u, 7, true, 0);
        let before = u.dram.total_bytes();
        // Stream far past LLC capacity (2 MB = 32768 lines) so line 7's
        // dirty copy is evicted from everywhere.
        for line in 100..100 + 40_000u64 {
            data_access(0, &mut p, &mut u, line, false, 0);
            u.apply_invalidations(std::slice::from_mut(&mut p), 0);
        }
        assert!(
            u.dram.total_bytes() > before + 40_000 * 64,
            "demand reads plus at least one writeback expected"
        );
        assert!(!u.llc.probe(7));
    }

    #[test]
    fn back_invalidation_removes_private_copies() {
        let mut cfg = small_system();
        cfg.inclusive_llc = true;
        let mut privs = [PrivateCaches::new(&cfg), PrivateCaches::new(&cfg)];
        let mut u = Uncore::new(&cfg);
        let (a, b) = privs.split_at_mut(1);
        data_access(0, &mut a[0], &mut u, 9, false, 0);
        assert!(a[0].l1d.probe(9));
        // Core 1 streams through the LLC, evicting core 0's line.
        for line in 1000..1000 + 40_000u64 {
            data_access(1, &mut b[0], &mut u, line, false, 0);
        }
        assert!(!u.llc.probe(9), "line 9 must be evicted from LLC");
        u.apply_invalidations(&mut privs, 0);
        assert!(
            !privs[0].l1d.probe(9) && !privs[0].l2.probe(9),
            "inclusion requires private copies to be invalidated"
        );
    }

    #[test]
    fn fetch_path_fills_l1i() {
        let cfg = small_system();
        let mut p = PrivateCaches::new(&cfg);
        let mut u = Uncore::new(&cfg);
        let a = fetch_access(0, &mut p, &mut u, 555, 0);
        assert_eq!(a.level, HitLevel::Dram);
        assert!(p.l1i.probe(555));
        let b = fetch_access(0, &mut p, &mut u, 555, 0);
        assert_eq!(b.level, HitLevel::L1);
    }

    #[test]
    fn prefetch_fills_arrive_only_at_completion_time() {
        let mut cfg = small_system();
        cfg.prefetch.enabled = true;
        cfg.validate().unwrap();
        let mut p = PrivateCaches::new(&cfg);
        let mut u = Uncore::new(&cfg);
        // Train a sequential stream: lines 1000, 1001, 1002 confirm it and
        // launch prefetches for 1003.. at `now = 0`.
        for (i, line) in (1000u64..1003).enumerate() {
            data_access(0, &mut p, &mut u, line, false, i as u64 * 400);
        }
        // The prefetched line must NOT be in the L2 yet if we probe
        // immediately (its DRAM completion is in the future)...
        assert!(
            !p.l2.probe(1003),
            "prefetch data must not appear before its completion time"
        );
        // ...but a demand access far in the future finds it (drained into
        // the L2 on the next access) or merges with it in flight; either
        // way the latency is far below a full DRAM round trip.
        let acc = data_access(0, &mut p, &mut u, 1003, false, 1_000_000);
        assert!(
            acc.latency < u64::from(cfg.dram.base_latency),
            "prefetched line should be (nearly) free, got {} cycles",
            acc.latency
        );
    }

    #[test]
    fn late_prefetch_merge_charges_remaining_flight_time() {
        let mut cfg = small_system();
        cfg.prefetch.enabled = true;
        cfg.validate().unwrap();
        let mut p = PrivateCaches::new(&cfg);
        let mut u = Uncore::new(&cfg);
        for (i, line) in (2000u64..2003).enumerate() {
            data_access(0, &mut p, &mut u, line, false, i as u64 * 50);
        }
        // Demand the prefetched next line immediately: it is still in
        // flight, so the access merges and waits the residue — more than
        // an L2 hit, less than a fresh DRAM access issued now.
        let acc = data_access(0, &mut p, &mut u, 2003, false, 150);
        let l2_hit = u64::from(cfg.l1d.access_latency + cfg.l2.access_latency);
        assert!(acc.latency > l2_hit, "in-flight merge is not free");
        assert_eq!(acc.level, HitLevel::L2, "merge reports as an L2-level fill");
    }

    #[test]
    fn per_core_dram_attribution() {
        let cfg = small_system();
        let mut privs = [PrivateCaches::new(&cfg), PrivateCaches::new(&cfg)];
        let mut u = Uncore::new(&cfg);
        let (a, b) = privs.split_at_mut(1);
        for line in 0..10u64 {
            data_access(0, &mut a[0], &mut u, line, false, 0);
        }
        for line in 100..105u64 {
            data_access(1, &mut b[0], &mut u, line, false, 0);
        }
        assert_eq!(u.dram_bytes_per_core[0], 10 * 64);
        assert_eq!(u.dram_bytes_per_core[1], 5 * 64);
    }
}
