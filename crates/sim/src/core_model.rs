//! Interval-style out-of-order core timing model.
//!
//! The model processes micro-ops in ROB-sized windows, in the spirit of
//! interval simulation (Genbrugge/Eyerman/Eeckhout, HPCA 2010) and the
//! mechanistic core models validated for Sniper (Carlson et al., TACO
//! 2014). A window's execution time is
//!
//! ```text
//! max( dispatch + branch-flush + fetch-stall ,  memory completion horizon )
//! ```
//!
//! * **Dispatch** charges `instructions / issue_width` cycles.
//! * **Branch mispredictions** each charge the front-end flush penalty.
//! * **Loads** contribute a completion time `issue_time + latency` to the
//!   window's *memory horizon*; taking the maximum (instead of summing)
//!   models out-of-order overlap of independent misses. Three
//!   serialization mechanisms bound the overlap, applied *before* the
//!   request is timestamped so the shared queues see realistic issue
//!   times:
//!   1. [`MicroOp::Load::dependent`] loads (pointer chasing) cannot issue
//!      before the previous load completes;
//!   2. at most `max_outstanding_l1d_misses` misses are in flight (MSHR
//!      limit) — later misses wait for a slot;
//!   3. shared-resource queueing (NoC links, DRAM controllers) is inside
//!      the returned latency, so bandwidth-bound streams serialize
//!      naturally.
//! * **Stores** retire through the store buffer and never stall the core;
//!   their cache and bandwidth side effects still happen.
//! * **Instruction fetch** probes the L1-I once per
//!   [`FETCH_BLOCK_INSTRUCTIONS`]; misses stall the front end nearly in
//!   full.

use std::collections::VecDeque;

use crate::config::CoreConfig;
use crate::hierarchy::{data_access, fetch_access, HitLevel, MemoryBackend, PrivateCaches};
use crate::trace::{InstructionSource, MicroOp};

/// Instructions per L1-I fetch-block probe.
pub const FETCH_BLOCK_INSTRUCTIONS: u64 = 8;

/// Per-core timing and event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed core cycles.
    pub cycles: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Branches executed.
    pub branches: u64,
    /// Branches mispredicted.
    pub branch_misses: u64,
    /// Loads serviced beyond L1 (any deeper level).
    pub load_l1_misses: u64,
    /// Loads serviced by the LLC.
    pub load_llc_hits: u64,
    /// Loads serviced by DRAM.
    pub load_dram: u64,
    /// Cycles the window clock extended beyond the front-end time because
    /// of memory (the memory-boundedness of the core).
    pub mem_stall_cycles: u64,
    /// Cycles stalled on instruction fetch.
    pub fetch_stall_cycles: u64,
    /// Cycles lost to branch mispredictions.
    pub branch_stall_cycles: u64,
}

impl CoreCounters {
    /// Instructions per cycle; zero before any cycles elapse.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Tracks in-window load issue/completion to compute the memory horizon.
///
/// Times are cycles relative to the window start.
#[derive(Debug)]
struct HorizonTracker {
    mshr: usize,
    inflight: VecDeque<u64>,
    prev_completion: u64,
    horizon: u64,
}

impl HorizonTracker {
    fn new(mshr: usize) -> Self {
        Self {
            mshr: mshr.max(1),
            inflight: VecDeque::with_capacity(mshr.max(1)),
            prev_completion: 0,
            horizon: 0,
        }
    }

    fn reset(&mut self) {
        self.inflight.clear();
        self.prev_completion = 0;
        self.horizon = 0;
    }

    /// Earliest cycle the load can issue, given its dispatch offset, its
    /// dependence on the previous load, and (for predicted misses) MSHR
    /// availability. Consumes an MSHR wait if one is needed.
    fn issue_time(&mut self, offset: u64, dependent: bool, predicted_miss: bool) -> u64 {
        let mut t = offset;
        if dependent {
            t = t.max(self.prev_completion);
        }
        if predicted_miss && self.inflight.len() == self.mshr {
            // sms-lint: allow(E1): guarded by the len()==mshr check one line up
            let freed = self.inflight.pop_front().expect("len checked");
            t = t.max(freed);
        }
        t
    }

    /// Record a load's completion; misses occupy an MSHR slot.
    fn complete(&mut self, issue: u64, latency: u64, is_miss: bool) {
        let completion = issue + latency;
        if is_miss {
            // `issue_time` already freed a slot if the queue was full, but
            // only when the miss was predicted; guard against overflow when
            // the L1 probe mispredicted a hit.
            if self.inflight.len() == self.mshr {
                self.inflight.pop_front();
            }
            self.inflight.push_back(completion);
        }
        self.prev_completion = completion;
        self.horizon = self.horizon.max(completion);
    }
}

/// The interval core model for one core.
#[derive(Debug)]
pub struct CoreModel {
    cfg: CoreConfig,
    core_id: u8,
    /// Local core clock in cycles.
    pub cycle: u64,
    counters: CoreCounters,
    /// Dispatch-slot remainder carried between windows.
    dispatch_carry: u64,
    /// Reusable window buffer.
    window: Vec<MicroOp>,
    tracker: HorizonTracker,
    /// Instructions issued since the last fetch-block probe.
    fetch_residue: u64,
    /// EWMA of cycles-per-instruction in Q8 fixed point, used to spread
    /// shared-queue timestamps over the window's real duration.
    cpi_q8: u64,
}

impl CoreModel {
    /// Create the model for core `core_id`.
    pub fn new(cfg: CoreConfig, core_id: u8) -> Self {
        let mshr = cfg.max_outstanding_l1d_misses as usize;
        Self {
            cfg,
            core_id,
            cycle: 0,
            counters: CoreCounters::default(),
            dispatch_carry: 0,
            window: Vec::with_capacity(256),
            tracker: HorizonTracker::new(mshr),
            fetch_residue: 0,
            cpi_q8: 256,
        }
    }

    /// Counters snapshot.
    pub fn counters(&self) -> CoreCounters {
        self.counters
    }

    /// Reset counters (post-warmup) while keeping caches' architectural
    /// state; the clock is rebased to zero.
    pub fn reset_counters(&mut self) {
        self.counters = CoreCounters::default();
        self.cycle = 0;
    }

    /// Run one ROB-sized window of execution.
    ///
    /// Pulls micro-ops from `source` until the window holds `rob_size`
    /// instructions (or `budget_left` runs out), services its memory
    /// accesses through the hierarchy, and advances the local clock by the
    /// window's execution time. Returns the number of instructions retired.
    ///
    /// The shared levels below the private caches are reached through any
    /// [`MemoryBackend`]: the real [`Uncore`](crate::hierarchy::Uncore) on
    /// the sequential path, or a per-core
    /// [`ShardBackend`](crate::shard::ShardBackend) inside a parallel sync
    /// window.
    pub fn run_window<B: MemoryBackend>(
        &mut self,
        source: &mut dyn InstructionSource,
        privs: &mut PrivateCaches,
        uncore: &mut B,
        budget_left: u64,
    ) -> u64 {
        debug_assert!(budget_left > 0);
        let window_limit = u64::from(self.cfg.rob_size).min(budget_left);

        self.window.clear();
        let mut window_instrs: u64 = 0;
        while window_instrs < window_limit {
            let mut op = source.next_op();
            if let MicroOp::Compute { count } = &mut op {
                // Clip compute runs so we never exceed the budget.
                let room = window_limit - window_instrs;
                if u64::from(*count) > room {
                    *count = room as u32;
                }
                if *count == 0 {
                    continue;
                }
            }
            window_instrs += op.instruction_count();
            self.window.push(op);
        }

        let issue_width = u64::from(self.cfg.issue_width);
        let window_start = self.cycle;

        // Dispatch time with carry so fractional cycles are not lost.
        let total_slots = self.dispatch_carry + window_instrs;
        let dispatch_cycles = total_slots / issue_width;
        self.dispatch_carry = total_slots % issue_width;

        let mut branch_stall: u64 = 0;
        let mut issued: u64 = 0;
        self.tracker.reset();

        // Borrow the window out of self to allow mutable calls below.
        // Shared-queue timestamps are spread over the window's expected
        // duration (estimated from the CPI EWMA): the core really issues
        // its memory traffic at its execution rate, not within the few
        // dispatch cycles the ROB window occupies. Without this, every
        // window looks like a dense burst and shared queues overstate
        // cross-core contention.
        let cpi_q8 = self.cpi_q8;
        let window = std::mem::take(&mut self.window);
        for op in &window {
            let offset = issued / issue_width;
            let queue_time = window_start + ((issued * cpi_q8) >> 8);
            match *op {
                MicroOp::Compute { count } => {
                    issued += u64::from(count);
                }
                MicroOp::Load { addr, dependent } => {
                    issued += 1;
                    self.counters.loads += 1;
                    let line = addr >> 6;
                    let predicted_miss = !privs.l1d.probe(line);
                    let t = self.tracker.issue_time(offset, dependent, predicted_miss);
                    let acc = data_access(self.core_id, privs, uncore, line, false, queue_time);
                    let is_miss = acc.level != HitLevel::L1;
                    if is_miss {
                        self.counters.load_l1_misses += 1;
                        match acc.level {
                            HitLevel::Llc => self.counters.load_llc_hits += 1,
                            HitLevel::Dram => self.counters.load_dram += 1,
                            _ => {}
                        }
                    }
                    self.tracker.complete(t, acc.latency, is_miss);
                }
                MicroOp::Store { addr } => {
                    issued += 1;
                    self.counters.stores += 1;
                    let line = addr >> 6;
                    let _ = data_access(self.core_id, privs, uncore, line, true, queue_time);
                }
                MicroOp::Branch { mispredicted } => {
                    issued += 1;
                    self.counters.branches += 1;
                    if mispredicted {
                        self.counters.branch_misses += 1;
                        branch_stall += u64::from(self.cfg.branch_miss_penalty);
                    }
                }
            }
        }
        self.window = window;

        // Instruction fetch: one L1-I probe per fetch block.
        let mut fetch_stall: u64 = 0;
        self.fetch_residue += window_instrs;
        while self.fetch_residue >= FETCH_BLOCK_INSTRUCTIONS {
            self.fetch_residue -= FETCH_BLOCK_INSTRUCTIONS;
            let code_line = source.code_addr() >> 6;
            let acc = fetch_access(self.core_id, privs, uncore, code_line, window_start);
            if acc.level != HitLevel::L1 {
                // Front-end stalls are mostly exposed; a small part hides
                // behind the decoded-instruction queue.
                fetch_stall += acc.latency.saturating_sub(u64::from(self.cfg.issue_width));
            }
        }

        let front_end = dispatch_cycles + branch_stall + fetch_stall;
        let window_cycles = front_end.max(self.tracker.horizon);

        // Update the CPI estimate (EWMA with 1/4 weight), clamped to
        // [0.25, 64] cycles per instruction.
        if let Some(w_cpi) = (window_cycles << 8).checked_div(window_instrs) {
            self.cpi_q8 = ((3 * self.cpi_q8 + w_cpi) / 4).clamp(64, 64 * 256);
        }

        self.cycle += window_cycles;
        self.counters.cycles += window_cycles;
        self.counters.instructions += window_instrs;
        self.counters.mem_stall_cycles += window_cycles - front_end;
        self.counters.branch_stall_cycles += branch_stall;
        self.counters.fetch_stall_cycles += fetch_stall;
        window_instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::hierarchy::Uncore;
    use crate::trace::VecSource;

    fn setup() -> (SystemConfig, PrivateCaches, Uncore) {
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = 1;
        cfg.llc.num_slices = 1;
        cfg.noc.mesh_cols = 1;
        cfg.noc.mesh_rows = 1;
        cfg.noc.cross_section_links = 1;
        cfg.noc.link_bandwidth_gbps = 4.0;
        cfg.dram.num_controllers = 1;
        cfg.dram.controller_bandwidth_gbps = 4.0;
        cfg.validate().unwrap();
        let p = PrivateCaches::new(&cfg);
        let u = Uncore::new(&cfg);
        (cfg, p, u)
    }

    fn drive(
        core: &mut CoreModel,
        src: &mut dyn InstructionSource,
        p: &mut PrivateCaches,
        u: &mut Uncore,
        mut budget: u64,
    ) {
        while budget > 0 {
            budget -= core.run_window(src, p, u, budget);
        }
    }

    #[test]
    fn pure_compute_reaches_issue_width_ipc() {
        let (cfg, mut p, mut u) = setup();
        let mut core = CoreModel::new(cfg.core.clone(), 0);
        let mut src = VecSource::new("c", vec![MicroOp::Compute { count: 64 }]);
        drive(&mut core, &mut src, &mut p, &mut u, 128_000);
        let c = core.counters();
        assert_eq!(c.instructions, 128_000);
        assert!(c.ipc() > 3.5, "ipc = {}", c.ipc());
    }

    #[test]
    fn branch_mispredictions_cost_cycles() {
        let (cfg, mut p, mut u) = setup();
        let mut good = CoreModel::new(cfg.core.clone(), 0);
        let mut src_good = VecSource::new(
            "g",
            vec![
                MicroOp::Compute { count: 15 },
                MicroOp::Branch {
                    mispredicted: false,
                },
            ],
        );
        let mut bad = CoreModel::new(cfg.core.clone(), 0);
        let mut src_bad = VecSource::new(
            "b",
            vec![
                MicroOp::Compute { count: 15 },
                MicroOp::Branch { mispredicted: true },
            ],
        );
        let (mut p2, mut u2) = (PrivateCaches::new(&cfg), Uncore::new(&cfg));
        drive(&mut good, &mut src_good, &mut p, &mut u, 64_000);
        drive(&mut bad, &mut src_bad, &mut p2, &mut u2, 64_000);
        assert!(bad.counters().ipc() < good.counters().ipc() * 0.6);
        assert!(bad.counters().branch_stall_cycles > 0);
        assert_eq!(good.counters().branch_stall_cycles, 0);
    }

    #[test]
    fn dram_bound_stream_approaches_bandwidth_bound() {
        let (cfg, mut p, mut u) = setup();
        let mut core = CoreModel::new(cfg.core.clone(), 0);
        // One independent load per 4 instructions, striding far beyond the
        // LLC: bandwidth-bound at 4 GB/s = 1 line / 64 cycles, so the
        // ideal IPC is 4 instr / 64 cycles = 0.0625.
        let ops: Vec<MicroOp> = (0..65_536u64)
            .flat_map(|i| {
                [
                    MicroOp::Compute { count: 3 },
                    MicroOp::Load {
                        addr: (i * 8) * 64,
                        dependent: false,
                    },
                ]
            })
            .collect();
        let mut src = VecSource::new("m", ops);
        drive(&mut core, &mut src, &mut p, &mut u, 65_536);
        let c = core.counters();
        let ipc = c.ipc();
        assert!(ipc < 0.09, "ipc = {ipc}");
        assert!(ipc > 0.03, "ipc = {ipc} is implausibly low");
        assert!(c.mem_stall_cycles > c.cycles / 2);
    }

    #[test]
    fn pointer_chase_serializes_on_latency() {
        let (cfg, mut p, mut u) = setup();
        let mut chase = CoreModel::new(cfg.core.clone(), 0);
        let ops: Vec<MicroOp> = (0..65_536u64)
            .flat_map(|i| {
                [
                    MicroOp::Compute { count: 3 },
                    MicroOp::Load {
                        addr: (i.wrapping_mul(2654435761) % 65_536) * 64 * 8,
                        dependent: true,
                    },
                ]
            })
            .collect();
        let mut src = VecSource::new("chase", ops.clone());
        drive(&mut chase, &mut src, &mut p, &mut u, 32_768);

        let (mut p2, mut u2) = (PrivateCaches::new(&cfg), Uncore::new(&cfg));
        let mut stream = CoreModel::new(cfg.core.clone(), 0);
        let ops_indep: Vec<MicroOp> = ops
            .iter()
            .map(|op| match *op {
                MicroOp::Load { addr, .. } => MicroOp::Load {
                    addr,
                    dependent: false,
                },
                other => other,
            })
            .collect();
        let mut src2 = VecSource::new("stream", ops_indep);
        drive(&mut stream, &mut src2, &mut p2, &mut u2, 32_768);

        let chase_ipc = chase.counters().ipc();
        let stream_ipc = stream.counters().ipc();
        assert!(
            chase_ipc < stream_ipc * 0.8,
            "chasing must be slower: chase={chase_ipc:.4} stream={stream_ipc:.4}"
        );
    }

    #[test]
    fn mshr_limit_serializes_miss_waves() {
        let mut t = HorizonTracker::new(1);
        for _ in 0..3 {
            let issue = t.issue_time(0, false, true);
            t.complete(issue, 300, true);
        }
        assert_eq!(t.horizon, 900);

        let mut t4 = HorizonTracker::new(4);
        for i in 0..3 {
            let issue = t4.issue_time(i, false, true);
            t4.complete(issue, 300, true);
        }
        assert_eq!(t4.horizon, 302);
    }

    #[test]
    fn dependent_chain_serializes_in_horizon() {
        let mut t = HorizonTracker::new(10);
        let i0 = t.issue_time(0, false, true);
        t.complete(i0, 100, true);
        let i1 = t.issue_time(1, true, true);
        assert_eq!(i1, 100);
        t.complete(i1, 100, true);
        let i2 = t.issue_time(2, true, true);
        assert_eq!(i2, 200);
        t.complete(i2, 100, true);
        assert_eq!(t.horizon, 300);
    }

    #[test]
    fn tracker_handles_mispredicted_hit_gracefully() {
        let mut t = HorizonTracker::new(1);
        // Fill the single MSHR.
        let i0 = t.issue_time(0, false, true);
        t.complete(i0, 500, true);
        // A load predicted as a hit that turns out to be a miss must not
        // overflow the in-flight queue.
        let i1 = t.issue_time(1, false, false);
        t.complete(i1, 500, true);
        assert_eq!(t.inflight.len(), 1);
    }

    #[test]
    fn stores_do_not_stall() {
        let (cfg, mut p, mut u) = setup();
        let mut core = CoreModel::new(cfg.core.clone(), 0);
        let ops: Vec<MicroOp> = (0..1024u64)
            .map(|i| MicroOp::Store { addr: i * 64 * 131 })
            .collect();
        let mut src = VecSource::new("s", ops);
        drive(&mut core, &mut src, &mut p, &mut u, 8192);
        let c = core.counters();
        assert_eq!(c.mem_stall_cycles, 0);
        assert!(c.ipc() > 3.0, "stores retire via the store buffer");
        assert!(u.dram.total_bytes() > 0, "stores still move data");
    }

    #[test]
    fn budget_is_respected_exactly() {
        let (cfg, mut p, mut u) = setup();
        let mut core = CoreModel::new(cfg.core.clone(), 0);
        let mut src = VecSource::new("c", vec![MicroOp::Compute { count: 1000 }]);
        drive(&mut core, &mut src, &mut p, &mut u, 777);
        assert_eq!(core.counters().instructions, 777);
    }

    #[test]
    fn reset_counters_rebases_clock() {
        let (cfg, mut p, mut u) = setup();
        let mut core = CoreModel::new(cfg.core.clone(), 0);
        let mut src = VecSource::new("c", vec![MicroOp::Compute { count: 64 }]);
        core.run_window(&mut src, &mut p, &mut u, 1000);
        assert!(core.cycle > 0);
        core.reset_counters();
        assert_eq!(core.cycle, 0);
        assert_eq!(core.counters().instructions, 0);
    }

    #[test]
    fn l2_resident_loads_barely_stall() {
        let (cfg, mut p, mut u) = setup();
        let mut core = CoreModel::new(cfg.core.clone(), 0);
        // 128 KB working set: fits L2 (256 KB), overflows L1D (32 KB).
        let ops: Vec<MicroOp> = (0..2048u64)
            .flat_map(|i| {
                [
                    MicroOp::Compute { count: 7 },
                    MicroOp::Load {
                        addr: (i % 2048) * 64,
                        dependent: false,
                    },
                ]
            })
            .collect();
        let mut src = VecSource::new("l2", ops);
        // Warm the caches over two full passes, then measure.
        drive(&mut core, &mut src, &mut p, &mut u, 32_768);
        core.reset_counters();
        drive(&mut core, &mut src, &mut p, &mut u, 131_072);
        let ipc = core.counters().ipc();
        assert!(
            ipc > 2.0,
            "L2-resident workload should stay fast, ipc = {ipc}"
        );
    }
}
