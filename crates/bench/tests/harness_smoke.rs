//! Smoke tests for the experiment harness pieces that need no simulation.

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use std::sync::Mutex;

use sms_bench::ctx::Report;
use sms_bench::table::{pct, render, times};

/// Env-var mutation is process-global; serialize the tests that do it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn table1_runs_without_simulation() {
    // table1 is pure configuration; drive it through a throwaway context
    // rooted in a temp dir so no repository state is touched.
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("sms-smoke-{}", std::process::id()));
    std::env::set_var("SMS_RESULTS", &dir);
    let ctx = sms_bench::Ctx::from_env();
    std::env::remove_var("SMS_RESULTS");

    let report = sms_bench::experiments::table1::run(&ctx);
    assert_eq!(report.id, "table1");
    assert!(report.body.contains("32 MB: 32 slices"));
    assert!(report.body.contains("MC-first"));
    assert!(report.body.contains("MB-first"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_emit_writes_figure_file() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("sms-emit-{}", std::process::id()));
    std::env::set_var("SMS_RESULTS", &dir);
    let ctx = sms_bench::Ctx::from_env();
    std::env::remove_var("SMS_RESULTS");

    let report = Report {
        id: "smoke",
        title: "smoke test",
        body: "hello\n".into(),
    };
    report.emit(&ctx);
    let written = std::fs::read_to_string(dir.join("figures/smoke.txt")).unwrap();
    assert!(written.contains("hello"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn table_rendering_is_stable() {
    let t = render(
        &["a", "bb"],
        &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
    );
    let lines: Vec<&str> = t.lines().collect();
    assert_eq!(lines.len(), 4);
    // All rows share the header's width.
    assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    assert_eq!(pct(0.123), "12.3%");
    assert_eq!(times(2.0), "2.0x");
}

#[test]
fn env_knobs_are_honored() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("sms-env-{}", std::process::id()));
    std::env::set_var("SMS_RESULTS", &dir);
    std::env::set_var("SMS_BUDGET", "12345");
    std::env::set_var("SMS_SEED", "7");
    let ctx = sms_bench::Ctx::from_env();
    std::env::remove_var("SMS_RESULTS");
    std::env::remove_var("SMS_BUDGET");
    std::env::remove_var("SMS_SEED");

    assert_eq!(ctx.cfg.spec.measure_instructions, 12345);
    assert_eq!(ctx.cfg.seed, 7);
    let _ = std::fs::remove_dir_all(&dir);
}
