//! Ablation: LLC replacement-policy sensitivity.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::ablations::replacement(&mut ctx).emit(&ctx);
}
