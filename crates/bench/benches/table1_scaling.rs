//! Bench target regenerating Table I/II (pure configuration).
fn main() {
    let ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::table1::run(&ctx).emit(&ctx);
}
