//! Bench target reproducing fig10 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::fig10::run(&mut ctx).emit(&ctx);
}
