//! Bench target reproducing fig6 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::fig6::run(&mut ctx).emit(&ctx);
}
