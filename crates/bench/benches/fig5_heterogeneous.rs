//! Bench target reproducing fig5 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::fig5::run(&mut ctx).emit(&ctx);
}
