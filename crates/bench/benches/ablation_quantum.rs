//! Ablation: synchronization-quantum sensitivity.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::ablations::quantum(&mut ctx).emit(&ctx);
}
