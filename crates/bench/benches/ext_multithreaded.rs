//! Extension bench: scale models for data-parallel multi-threaded workloads.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::ext_multithreaded::run(&mut ctx).emit(&ctx);
}
