//! Extension bench: scale models for data-parallel multi-threaded workloads.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    match sms_bench::experiments::ext_multithreaded::run(&mut ctx) {
        Ok(report) => report.emit(&ctx),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
