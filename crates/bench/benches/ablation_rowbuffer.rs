//! Ablation: DRAM row-buffer model sensitivity.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::ablations::row_buffer(&mut ctx).emit(&ctx);
}
