//! Ablation: DRAM row-buffer model sensitivity.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    match sms_bench::experiments::ablations::row_buffer(&mut ctx) {
        Ok(report) => report.emit(&ctx),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
