//! Bench target reproducing fig3 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    match sms_bench::experiments::fig3::run(&mut ctx) {
        Ok(report) => report.emit(&ctx),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
