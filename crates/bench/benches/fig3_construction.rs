//! Bench target reproducing fig3 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::fig3::run(&mut ctx).emit(&ctx);
}
