//! Bench target reproducing fig12 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::fig12::run(&mut ctx).emit(&ctx);
}
