//! Criterion microbenchmarks for the simulator substrate: cache lookups,
//! DRAM queueing, workload generation, and end-to-end simulation
//! throughput for the single-core scale model versus the 32-core target
//! (the raw material of the paper's 28x speedup claim).

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_sim::cache::Cache;
use sms_sim::config::{CacheConfig, SystemConfig};
use sms_sim::dram::Dram;
use sms_sim::noc::Noc;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_sim::trace::InstructionSource;
use sms_workloads::generator::SyntheticSource;
use sms_workloads::mix::MixSpec;
use sms_workloads::spec::by_name;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("l1d_hit_loop", |b| {
        let mut cache = Cache::new(&CacheConfig::new_kib(32, 8, 4));
        for line in 0..512u64 {
            cache.fill(line, false, 0);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for line in 0..1024u64 {
                if cache.access(line & 511, false) {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.bench_function("llc_slice_miss_fill", |b| {
        let mut cache = Cache::new(&CacheConfig::new_kib(1024, 64, 30));
        let mut line = 0u64;
        b.iter(|| {
            let mut evicted = 0u64;
            for _ in 0..1024 {
                line = line.wrapping_add(97);
                if !cache.access(line, false) && cache.fill(line, false, 0).is_some() {
                    evicted += 1;
                }
            }
            evicted
        });
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("queued_reads", |b| {
        let mut dram = Dram::new(&sms_sim::config::DramConfig {
            num_controllers: 8,
            controller_bandwidth_gbps: 16.0,
            base_latency: 240,
            row_buffer: None,
        });
        let mut now = 0u64;
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..1024u64 {
                now += 3;
                total += dram.read(i * 7, now).latency;
            }
            total
        });
    });
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.throughput(Throughput::Elements(4096));
    for name in ["lbm_r", "mcf_r", "exchange2_r"] {
        group.bench_with_input(BenchmarkId::new("next_op", name), name, |b, name| {
            let mut src = SyntheticSource::new(by_name(name).unwrap(), 0, 1);
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..4096 {
                    acc = acc.wrapping_add(src.next_op().instruction_count());
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_noc(c: &mut Criterion) {
    let cfg = SystemConfig::target_32core();
    let mut group = c.benchmark_group("noc");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("mesh_transfer_loop", |b| {
        let mut noc = Noc::new(&cfg.noc);
        let mut line = 0u64;
        b.iter(|| {
            let mut cycles = 0u64;
            for i in 0..1024u64 {
                line = line.wrapping_add(61);
                let t = noc.transfer(
                    (i % u64::from(cfg.num_cores)) as u32,
                    ((i * 7 + 3) % u64::from(cfg.num_cores)) as u32,
                    line,
                    i,
                );
                cycles += t.latency;
            }
            cycles
        });
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let target = SystemConfig::target_32core();
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for cores in [1u32, 32] {
        group.bench_with_input(
            BenchmarkId::new("gcc_homogeneous", cores),
            &cores,
            |b, &cores| {
                b.iter(|| {
                    let cfg = if cores == target.num_cores {
                        target.clone()
                    } else {
                        scale_config(&target, cores, ScalingPolicy::prs())
                    };
                    let mix = MixSpec::homogeneous("gcc_r", cores as usize, 42);
                    let mut sys = MulticoreSystem::new(cfg, mix.sources()).unwrap();
                    sys.run(RunSpec {
                        warmup_instructions: 5_000,
                        measure_instructions: 50_000,
                    })
                    .unwrap()
                    .elapsed_cycles
                });
            },
        );
    }
    // Intra-window parallelism: same 8-core run at 1 vs 2 sim threads
    // (results are bit-identical; only wall time should differ).
    for threads in [1u32, 2] {
        group.bench_with_input(
            BenchmarkId::new("gcc_8core_sim_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut cfg = scale_config(&target, 8, ScalingPolicy::prs());
                    cfg.sim_threads = threads;
                    let mix = MixSpec::homogeneous("gcc_r", 8, 42);
                    let mut sys = MulticoreSystem::new(cfg, mix.sources()).unwrap();
                    sys.run(RunSpec {
                        warmup_instructions: 5_000,
                        measure_instructions: 50_000,
                    })
                    .unwrap()
                    .elapsed_cycles
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_dram,
    bench_generator,
    bench_noc,
    bench_simulation
);
criterion_main!(benches);
