//! Bench target reproducing fig11 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::fig11::run(&mut ctx).emit(&ctx);
}
