//! Bench target reproducing fig4 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::fig4::run(&mut ctx).emit(&ctx);
}
