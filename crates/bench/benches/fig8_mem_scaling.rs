//! Bench target reproducing fig8 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::fig8::run(&mut ctx).emit(&ctx);
}
