//! Extension bench: predicting a 64-core next-generation target.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::ext_64core::run(&mut ctx).emit(&ctx);
}
