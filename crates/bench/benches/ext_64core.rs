//! Extension bench: predicting a 64-core next-generation target.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    match sms_bench::experiments::ext_64core::run(&mut ctx) {
        Ok(report) => report.emit(&ctx),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
