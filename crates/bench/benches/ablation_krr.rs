//! Ablation: SVR vs kernel ridge regression.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::ablations::krr(&mut ctx).emit(&ctx);
}
