//! Bench target reproducing fig9 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::fig9::run(&mut ctx).emit(&ctx);
}
