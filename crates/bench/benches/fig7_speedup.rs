//! Bench target reproducing fig7 of the paper.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::fig7::run(&mut ctx).emit(&ctx);
}
