//! Ablation: SVR hyper-parameter sweep.
fn main() {
    let mut ctx = sms_bench::Ctx::from_env();
    sms_bench::experiments::ablations::svr(&mut ctx).emit(&ctx);
}
