//! Shared experiment context: configuration, result cache, and
//! environment-variable knobs.
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `SMS_BUDGET` | `500000` | measured instructions per benchmark instance |
//! | `SMS_RESULTS` | `<workspace root>/results` | cache / output directory |
//! | `SMS_THREADS` | available parallelism | plan-executor worker threads |
//! | `SMS_SIM_THREADS` | `1` | worker threads inside each simulated sync window (bit-identical to `1`) |
//! | `SMS_SEED` | `43` | workload-mix seed |
//! | `SMS_RETRIES` | `1` | executor retries per failing run before quarantine |
//!
//! The seed fixes the heterogeneous eval/train benchmark split. Some
//! draws are pathological — seed 42, for instance, holds out four of the
//! five highest-IPC benchmarks at once, leaving the training set without
//! coverage of the upper IPC range and (predictably) breaking the ML
//! extrapolation for those applications. The default, 43, is an ordinary
//! representative draw; EXPERIMENTS.md discusses the sensitivity.

use std::path::PathBuf;

use sms_core::pipeline::ExperimentConfig;
use sms_sim::system::RunSpec;

use crate::runner::CachedSim;

/// Everything an experiment needs to run.
#[derive(Debug)]
pub struct Ctx {
    /// Baseline experiment configuration (PRS, 4 multi-core scale models).
    pub cfg: ExperimentConfig,
    /// Persistent simulation cache.
    pub cache: CachedSim,
    /// Worker threads for plan execution.
    pub threads: usize,
    /// Output directory (cache lives in `<results>/cache`).
    pub results_dir: PathBuf,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Default results directory: `results/` under the nearest ancestor that
/// is a cargo *workspace* root (identified by a `Cargo.toml` containing a
/// `[workspace]` table), falling back to the current directory. This
/// keeps `cargo bench` targets — which run with the *package* directory
/// as CWD — sharing one cache with the `run_experiments` binary.
fn default_results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.join("results");
            }
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

impl Ctx {
    /// Build a context from environment variables (see module docs).
    ///
    /// # Panics
    ///
    /// Panics if the results directory cannot be created.
    pub fn from_env() -> Self {
        let results_dir = std::env::var("SMS_RESULTS")
            .map(PathBuf::from)
            .unwrap_or_else(|_| default_results_dir());
        let budget = env_u64("SMS_BUDGET", 500_000);
        let seed = env_u64("SMS_SEED", 43);
        let threads = env_u64("SMS_THREADS", 0) as usize;
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        // sms-lint: allow(E1): documented panic — an unusable results dir is fatal at startup
        let cache = CachedSim::open(results_dir.join("cache")).expect("cache dir creatable");
        let mut cfg = ExperimentConfig {
            spec: RunSpec::with_default_warmup(budget),
            seed,
            ..ExperimentConfig::default()
        };
        // Intra-window parallelism: merges are bit-identical to sequential,
        // and the field is serde-skipped, so cache keys are unaffected.
        let sim_threads = env_u64("SMS_SIM_THREADS", 1);
        cfg.target.sim_threads = u32::try_from(sim_threads).unwrap_or(u32::MAX).max(1);
        Self {
            cfg,
            cache,
            threads,
            results_dir,
        }
    }
}

/// A rendered experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Identifier, e.g. `fig4`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Rendered text body (tables + summary lines).
    pub body: String,
}

impl Report {
    /// Print the report to stdout and persist it under
    /// `<results>/figures/<id>.txt`.
    pub fn emit(&self, ctx: &Ctx) {
        println!("==== {} — {} ====", self.id, self.title);
        println!("{}", self.body);
        let dir = ctx.results_dir.join("figures");
        let persisted = std::fs::create_dir_all(&dir).and_then(|()| {
            std::fs::write(
                dir.join(format!("{}.txt", self.id)),
                format!("{} — {}\n\n{}", self.id, self.title, self.body),
            )
        });
        if let Err(e) = persisted {
            eprintln!(
                "warning: could not persist report {} under {}: {e}",
                self.id,
                dir.display()
            );
        }
    }
}
