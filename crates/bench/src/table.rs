//! Plain-text table rendering for experiment reports.

/// Render an aligned text table. The first row is the header; a separator
/// is inserted under it. Columns are sized to their widest cell.
///
/// # Examples
///
/// ```
/// let t = sms_bench::table::render(
///     &["bench", "err"],
///     &[vec!["lbm_r".into(), "3.2%".into()]],
/// );
/// assert!(t.contains("lbm_r"));
/// assert!(t.lines().count() == 3);
/// ```
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a ratio like `28.3x`.
pub fn times(x: f64) -> String {
    format!("{x:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0804), "8.0%");
        assert_eq!(times(28.34), "28.3x");
    }
}
