//! Crash-safe plan journal: an append-only, fsync'd `.jsonl` record of
//! sweep progress written under `<cache>/journal/<label>.jsonl`.
//!
//! Every `execute_plan` invocation appends one line per completed or
//! quarantined run (each line synced to disk before the executor moves
//! on), so a killed sweep leaves a durable account of exactly what
//! finished. `sms sweep` prepends a [`PlanHeader`] line carrying the plan
//! parameters, which is what lets `sms resume` rebuild the identical plan
//! and continue — already-cached entries are skipped, quarantined ones
//! retried — until the final cache is bit-identical to an uninterrupted
//! run. A crash mid-append can leave a torn final line; [`replay`] skips
//! it and `sms fsck` trims it.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::telemetry::{sanitize_label, RunStatus};

/// Journal line-format version; bump when the line layout changes.
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

/// The plan parameters `sms sweep` records so `sms resume` can rebuild
/// the identical plan after a crash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanHeader {
    /// Journal line-format version.
    pub schema_version: u32,
    /// The sweep label (also the journal file stem).
    pub label: String,
    /// Comma-separated benchmark names, as given to `--bench`.
    pub bench: String,
    /// Target machine core count.
    pub target_cores: u32,
    /// Per-instance instruction budget.
    pub budget: u64,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads requested.
    pub threads: usize,
    /// Whether per-run timelines were requested.
    pub timelines: bool,
    /// For `sms explore` plans: the resolved explore (spec + pruning
    /// knobs) as canonical JSON, so `sms resume` replays the identical
    /// exploration. Absent (and not serialized) for plain sweeps, which
    /// keeps schema version 1 journals readable both ways.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub explore: Option<String>,
}

/// One journal line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "t", rename_all = "snake_case")]
pub enum JournalLine {
    /// A new plan invocation with its rebuild parameters (CLI sweeps
    /// only; bare `execute_plan` calls journal runs without a header).
    Plan(PlanHeader),
    /// One plan entry reached a terminal state.
    Run {
        /// Hex hash of the run's cache key.
        key_hash: String,
        /// Outcome of the entry.
        status: RunStatus,
    },
    /// The invocation finished (all entries accounted for).
    Done {
        /// Entries simulated successfully this invocation.
        simulated: usize,
        /// Entries quarantined after exhausting retries.
        failed: usize,
    },
}

/// Where plan journals live, next to the result cache.
pub fn journal_dir(cache_dir: &Path) -> PathBuf {
    cache_dir.join("journal")
}

/// The journal file for a sweep label.
pub fn journal_path(cache_dir: &Path, label: &str) -> PathBuf {
    journal_dir(cache_dir).join(format!("{}.jsonl", sanitize_label(label)))
}

/// An open, append-only plan journal. Appends are serialized through a
/// mutex and fsync'd (`sync_data`) so a kill cannot lose an acknowledged
/// line — at worst the final line is torn, which [`replay`] tolerates.
#[derive(Debug)]
pub struct PlanJournal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    /// Set after the first append failure: journaling degrades to a
    /// no-op with a single warning instead of failing the sweep.
    degraded: AtomicBool,
}

impl PlanJournal {
    /// Open (creating directory and file as needed) the journal for
    /// `label` in append mode.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory or file cannot be created.
    pub fn open_append(cache_dir: &Path, label: &str) -> std::io::Result<Self> {
        let dir = journal_dir(cache_dir);
        std::fs::create_dir_all(&dir)?;
        let path = journal_path(cache_dir, label);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            degraded: AtomicBool::new(false),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one line and sync it to disk.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on encoding, write, or sync failure (or when
    /// the `journal.append` failpoint fires).
    pub fn append(&self, line: &JournalLine) -> std::io::Result<()> {
        let mut buf = serde_json::to_vec(line).map_err(std::io::Error::other)?;
        sms_faults::check_io("journal.append")?;
        sms_faults::corrupt_bytes("journal.append", &mut buf).map_err(std::io::Error::from)?;
        buf.push(b'\n');
        let mut file = self.file.lock();
        file.write_all(&buf)?;
        file.sync_data()
    }

    /// [`Self::append`] for the executor hot path: the first failure
    /// warns and degrades journaling to a no-op — a sweep must not die
    /// because its journal directory went away.
    pub fn append_best_effort(&self, line: &JournalLine) {
        if self.degraded.load(Ordering::Acquire) {
            return;
        }
        if let Err(e) = self.append(line) {
            if !self.degraded.swap(true, Ordering::AcqRel) {
                eprintln!(
                    "journal: {} unwritable ({e}); continuing without crash-safe journaling",
                    self.path.display()
                );
            }
        }
    }
}

/// What [`replay`] reconstructs from a journal file.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalReplay {
    /// The journal file read.
    pub path: PathBuf,
    /// The latest plan header, when the journal was written by a CLI
    /// sweep.
    pub header: Option<PlanHeader>,
    /// Key hashes whose latest terminal state is a successful run.
    pub completed: std::collections::BTreeSet<String>,
    /// Key hashes whose latest terminal state is quarantine.
    pub quarantined: std::collections::BTreeSet<String>,
    /// Whether the latest invocation ran to completion (`Done` seen after
    /// the latest `Plan`).
    pub done: bool,
    /// Unparseable lines skipped (a crash mid-append tears at most the
    /// final line; `sms fsck` trims them).
    pub torn_lines: usize,
}

/// Replay the journal for `label`, tolerating torn lines.
///
/// # Errors
///
/// Returns an I/O error when the journal file cannot be read (a missing
/// file means the label was never swept — `NotFound`).
pub fn replay(cache_dir: &Path, label: &str) -> std::io::Result<JournalReplay> {
    let path = journal_path(cache_dir, label);
    let text = std::fs::read_to_string(&path)?;
    let mut out = JournalReplay {
        path,
        header: None,
        completed: std::collections::BTreeSet::new(),
        quarantined: std::collections::BTreeSet::new(),
        done: false,
        torn_lines: 0,
    };
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match serde_json::from_str::<JournalLine>(line) {
            Ok(JournalLine::Plan(header)) => {
                out.header = Some(header);
                out.done = false;
            }
            Ok(JournalLine::Run { key_hash, status }) => match status {
                RunStatus::Ok => {
                    out.quarantined.remove(&key_hash);
                    out.completed.insert(key_hash);
                }
                RunStatus::Quarantined => {
                    out.completed.remove(&key_hash);
                    out.quarantined.insert(key_hash);
                }
            },
            Ok(JournalLine::Done { .. }) => out.done = true,
            Err(_) => out.torn_lines += 1,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sms-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn header(label: &str) -> PlanHeader {
        PlanHeader {
            schema_version: JOURNAL_SCHEMA_VERSION,
            label: label.to_owned(),
            bench: "leela_r,xz_r".to_owned(),
            target_cores: 8,
            budget: 20_000,
            seed: 43,
            threads: 2,
            timelines: false,
            explore: None,
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmpdir("rt");
        let j = PlanJournal::open_append(&dir, "sweep-a").unwrap();
        j.append(&JournalLine::Plan(header("sweep-a"))).unwrap();
        j.append(&JournalLine::Run {
            key_hash: "aa".into(),
            status: RunStatus::Ok,
        })
        .unwrap();
        j.append(&JournalLine::Run {
            key_hash: "bb".into(),
            status: RunStatus::Quarantined,
        })
        .unwrap();
        let r = replay(&dir, "sweep-a").unwrap();
        assert_eq!(r.header, Some(header("sweep-a")));
        assert!(r.completed.contains("aa"));
        assert!(r.quarantined.contains("bb"));
        assert!(!r.done);
        assert_eq!(r.torn_lines, 0);

        // A later success releases the quarantined key; Done closes the
        // invocation.
        j.append(&JournalLine::Run {
            key_hash: "bb".into(),
            status: RunStatus::Ok,
        })
        .unwrap();
        j.append(&JournalLine::Done {
            simulated: 2,
            failed: 0,
        })
        .unwrap();
        let r = replay(&dir, "sweep-a").unwrap();
        assert!(r.quarantined.is_empty());
        assert_eq!(r.completed.len(), 2);
        assert!(r.done);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_tolerates_a_torn_tail() {
        let dir = tmpdir("torn");
        let j = PlanJournal::open_append(&dir, "k").unwrap();
        j.append(&JournalLine::Run {
            key_hash: "aa".into(),
            status: RunStatus::Ok,
        })
        .unwrap();
        // Simulate a kill mid-append: half a JSON object at the tail.
        let path = journal_path(&dir, "k");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"t\":\"run\",\"key_ha");
        std::fs::write(&path, text).unwrap();
        let r = replay(&dir, "k").unwrap();
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.torn_lines, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_not_found() {
        let dir = tmpdir("missing");
        let err = replay(&dir, "never-swept").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_of_resume_takes_the_latest_header() {
        let dir = tmpdir("latest");
        let j = PlanJournal::open_append(&dir, "s").unwrap();
        j.append(&JournalLine::Plan(header("s"))).unwrap();
        j.append(&JournalLine::Done {
            simulated: 0,
            failed: 0,
        })
        .unwrap();
        let mut h2 = header("s");
        h2.threads = 8;
        j.append(&JournalLine::Plan(h2.clone())).unwrap();
        let r = replay(&dir, "s").unwrap();
        assert_eq!(r.header, Some(h2));
        assert!(!r.done, "a new Plan line reopens the invocation");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
