//! Table I / Table II reproduction: the PRS scale-model resource
//! configurations and the target system. Pure configuration — no
//! simulation required.

use sms_core::scaling::{scale_table, MemBwScaling};

use crate::ctx::{Ctx, Report};
use crate::table::render;

/// Regenerate Table I (both DRAM scaling orders) and the Table II summary.
pub fn run(ctx: &Ctx) -> Report {
    let mut body = String::new();

    body.push_str("Target system (Table II):\n");
    body.push_str(&format!("  {}\n\n", ctx.cfg.target.summary()));

    for (name, order) in [
        ("MC-first (default)", MemBwScaling::McFirst),
        ("MB-first", MemBwScaling::MbFirst),
    ] {
        let rows: Vec<Vec<String>> = scale_table(&ctx.cfg.target, order)
            .into_iter()
            .map(|r| {
                vec![
                    r.cores.to_string(),
                    format!("{} MB: {} slices", r.llc_mb, r.llc_slices),
                    format!(
                        "{:.0} GB/s: {} CSLs, {:.0} GB/s per CSL",
                        r.noc_gbps, r.csls, r.gbps_per_csl
                    ),
                    format!(
                        "{:.0} GB/s: {} MCs, {:.0} GB/s per MC",
                        r.dram_gbps, r.mcs, r.gbps_per_mc
                    ),
                ]
            })
            .collect();
        body.push_str(&format!("Table I, {name}:\n"));
        body.push_str(&render(&["#cores", "LLC", "NoC", "DRAM"], &rows));
        body.push('\n');
    }

    Report {
        id: "table1",
        title: "Scale-model construction through Proportional Resource Scaling",
        body,
    }
}
