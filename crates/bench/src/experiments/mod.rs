//! Per-figure experiment drivers. Each module reproduces one table or
//! figure of the paper and returns a rendered [`Report`](crate::ctx::Report).

pub mod ablations;
pub mod common;
pub mod ext_64core;
pub mod ext_multithreaded;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
