//! Figure 3: evaluating scale-model *construction* with homogeneous
//! mixes — No-Extrapolation error of the single-core scale model under
//! NRS, PRS-LLC-only, PRS-DRAM-only and full PRS, per benchmark sorted by
//! LLC MPKI.
//!
//! Paper result: NRS averages ~60% error (up to 94%); scaling LLC or DRAM
//! alone helps partially; scaling both is synergistic (14.7% average).

use sms_core::pipeline::{no_extrapolation, TargetMetric};
use sms_core::scaling::ScalingPolicy;
use sms_sim::error::SimError;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{errors, homogeneous_data, summarize};
use crate::table::{pct, render};

/// Run the four construction variants and report per-benchmark errors.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    let policies = [
        ("NRS", ScalingPolicy::nrs()),
        ("PRS-LLC", ScalingPolicy::prs_llc_only()),
        ("PRS-DRAM", ScalingPolicy::prs_dram_only()),
        ("PRS-both", ScalingPolicy::prs()),
    ];

    // Only the single-core scale model and the target are needed.
    let datasets: Vec<_> = policies
        .iter()
        .map(|(_, p)| homogeneous_data(ctx, *p, &[]))
        .collect::<Result<_, _>>()?;

    // All datasets share benchmark ordering (sorted by PRS MPKI differs per
    // policy; re-sort each to the PRS-both order by name).
    let order: Vec<String> = datasets[3].iter().map(|d| d.name.clone()).collect();
    let truth: Vec<f64> = order
        .iter()
        .map(|n| {
            datasets[3]
                .iter()
                .find(|d| &d.name == n)
                // sms-lint: allow(E1): `order` is built from this same dataset two lines up
                .expect("benchmark present")
                .target_ipc
        })
        .collect();

    let mut per_policy_errors: Vec<Vec<f64>> = Vec::new();
    for data in &datasets {
        let by_name: std::collections::BTreeMap<&str, f64> =
            no_extrapolation(data, TargetMetric::Ipc)
                .into_iter()
                .zip(data.iter())
                .map(|(pred, d)| (d.name.as_str(), pred))
                .collect();
        let preds: Vec<f64> = order.iter().map(|n| by_name[n.as_str()]).collect();
        per_policy_errors.push(errors(&preds, &truth));
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, name) in order.iter().enumerate() {
        rows.push(vec![
            name.clone(),
            format!("{:.1}", datasets[3][i].ss_llc_mpki),
            pct(per_policy_errors[0][i]),
            pct(per_policy_errors[1][i]),
            pct(per_policy_errors[2][i]),
            pct(per_policy_errors[3][i]),
        ]);
    }
    let mut body = render(
        &[
            "benchmark",
            "MPKI",
            "NRS",
            "PRS-LLC",
            "PRS-DRAM",
            "PRS-both",
        ],
        &rows,
    );
    body.push('\n');
    for ((name, _), errs) in policies.iter().zip(&per_policy_errors) {
        let (mean, max) = summarize(errs);
        body.push_str(&format!(
            "{name:<9} avg error {:>6}  max {:>6}\n",
            pct(mean),
            pct(max)
        ));
    }
    Ok(Report {
        id: "fig3",
        title: "Scale-model construction: NRS vs PRS variants (homogeneous mixes)",
        body,
    })
}
