//! Extension experiment: predict a hypothetical **64-core** machine — the
//! paper's motivating scenario (§I: systems that are too expensive or
//! impossible to simulate; §VII: "provide performance predictions for
//! next-generation processors").
//!
//! ML-based regression is trained purely on 2/4/8/16-core scale models of
//! the 64-core target and extrapolates per-core IPC to 64 cores; the
//! 64-core machine is then simulated *only* to verify the predictions
//! (which a real user of the methodology would not need to do).

use sms_core::pipeline::{
    collect_homogeneous, homogeneous_plan, no_extrapolation, regress_homogeneous_loo,
    ExperimentConfig, TargetMetric,
};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::{target_config, ScalingPolicy};
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;
use sms_workloads::spec::suite;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{errors, summarize, ML_SEED};
use crate::runner::execute_plan;
use crate::table::{pct, render, times};

/// Run the 64-core prediction experiment.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    // Scale models for a 64-core target span 4..32 cores — the same 16x
    // ratio between the largest scale model and the target as the paper's
    // 2..16-core ladder for its 32-core target.
    let cfg = ExperimentConfig {
        target: target_config(64),
        policy: ScalingPolicy::prs(),
        ms_cores: vec![4, 8, 16, 32],
        ..ctx.cfg.clone()
    };
    let bench_suite = suite();

    let plan = homogeneous_plan(&cfg, &bench_suite);
    let summary = execute_plan(&ctx.cache, &plan, cfg.spec, ctx.threads, "64-core");
    if summary.failed > 0 {
        eprintln!(
            "[64-core] {} run(s) quarantined; the collector will retry them directly",
            summary.failed
        );
    }
    let data = collect_homogeneous(&mut ctx.cache, &cfg, &bench_suite)?;
    let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();

    let noext = no_extrapolation(&data, TargetMetric::Ipc);
    let svm_log = regress_homogeneous_loo(
        &data,
        MlKind::Svm,
        CurveModel::Logarithmic,
        cfg.mode,
        TargetMetric::Ipc,
        &ModelParams::default(),
        &cfg.ms_cores,
        64,
        ML_SEED,
    );

    let rows: Vec<Vec<String>> = data
        .iter()
        .enumerate()
        .map(|(i, d)| {
            vec![
                d.name.clone(),
                format!("{:.4}", d.ss.ipc),
                format!("{:.4}", svm_log[i]),
                format!("{:.4}", truth[i]),
                pct(sms_core::metrics::prediction_error(noext[i], truth[i])),
                pct(sms_core::metrics::prediction_error(svm_log[i], truth[i])),
            ]
        })
        .collect();
    let mut body = render(
        &[
            "benchmark",
            "1-core IPC",
            "SVM-log @64",
            "actual @64",
            "NoExt err",
            "SVM-log err",
        ],
        &rows,
    );
    let (no_mean, _) = summarize(&errors(&noext, &truth));
    let (svm_mean, svm_max) = summarize(&errors(&svm_log, &truth));
    let host_ss: f64 = data.iter().map(|d| d.ss_host_seconds).sum();
    let host_tgt: f64 = data.iter().map(|d| d.target_host_seconds).sum();
    body.push('\n');
    body.push_str(&format!(
        "NoExt avg {:>6} | SVM-log avg {:>6} max {:>6} | 64-core sim {} slower than the 1-core scale model\n",
        pct(no_mean),
        pct(svm_mean),
        pct(svm_max),
        times(host_tgt / host_ss),
    ));
    body.push_str(
        "no 64-core simulation informed the predictions; the verification\n\
         runs above are the luxury this methodology removes.\n\n\
         Finding: on this substrate the plain 1-core PRS scale model\n\
         transfers to 64 cores essentially unchanged (NoExt ~9%), while\n\
         the log-curve extrapolation overpredicts: per-core IPC versus\n\
         core count is non-monotonic here (small models pay the paper's\n\
         Table-I memory-controller anomaly, mid-size models gain queue\n\
         multiplexing, large meshes pay growing NUCA distances), and a\n\
         monotone curve family fitted to the rising mid-section keeps\n\
         rising. The paper observes the mirror image (\u{a7}V-B: regression\n\
         wins exactly when the scale-model series follows a predictive\n\
         trend line) \u{2014} extrapolation quality hinges on that premise.\n",
    );
    Ok(Report {
        id: "ext_64core",
        title: "Extension: predicting a 64-core next-generation target",
        body,
    })
}
