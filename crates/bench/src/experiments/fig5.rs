//! Figure 5: extrapolation accuracy for *heterogeneous* workload mixes.
//!
//! Paper result: the ordering matches the homogeneous case (SVM best,
//! SVM-log close behind) but errors are higher due to more diverse
//! interference: 13.2% (SVM), 15.8% (SVM-log), 27.8% (No Extrapolation).

use std::collections::BTreeMap;

use sms_core::pipeline::{
    per_app_errors, predict_mix_slots, regress_mix_slots, train_hetero_predictor,
    train_hetero_regressor, HeterogeneousData, TargetMetric,
};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::FeatureMode;
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{heterogeneous_data, ML_SEED};
use crate::table::{pct, render};

/// Per-evaluation-application mean errors for the seven methods on the
/// first `n_mixes` evaluation mixes. Returns `(method, app -> error)`.
pub fn hetero_method_errors(
    data: &HeterogeneousData,
    mode: FeatureMode,
    ms_cores: &[u32],
    target_cores: u32,
    n_mixes: usize,
) -> Vec<(String, BTreeMap<String, f64>)> {
    let params = ModelParams::default();
    let sliced = HeterogeneousData {
        eval_target: data.eval_target.iter().take(n_mixes).cloned().collect(),
        ..data.clone()
    };

    let mut out = Vec::new();

    // No Extrapolation: the app's single-core scale-model IPC.
    let noext_preds: Vec<Vec<f64>> = sliced
        .eval_target
        .iter()
        .map(|run| {
            run.mix
                .benchmarks
                .iter()
                .map(|n| sliced.ss[n].ipc)
                .collect()
        })
        .collect();
    out.push((
        "NoExt".to_owned(),
        per_app_errors(&sliced, &noext_preds).into_iter().collect(),
    ));

    for kind in MlKind::all() {
        let predictor = train_hetero_predictor(
            &sliced,
            kind,
            mode,
            TargetMetric::Ipc,
            &params,
            target_cores,
            ML_SEED,
        );
        let preds: Vec<Vec<f64>> = sliced
            .eval_target
            .iter()
            .map(|run| predict_mix_slots(&predictor, &sliced.ss, &run.mix, mode, target_cores))
            .collect();
        out.push((
            kind.to_string(),
            per_app_errors(&sliced, &preds).into_iter().collect(),
        ));
    }

    for kind in MlKind::all() {
        let ex = train_hetero_regressor(
            &sliced,
            kind,
            CurveModel::Logarithmic,
            mode,
            TargetMetric::Ipc,
            &params,
            ML_SEED,
        );
        let preds: Vec<Vec<f64>> = sliced
            .eval_target
            .iter()
            .map(|run| regress_mix_slots(&ex, &sliced.ss, &run.mix, mode, ms_cores, target_cores))
            .collect();
        out.push((
            format!("{kind}-log"),
            per_app_errors(&sliced, &preds).into_iter().collect(),
        ));
    }
    out
}

/// Run the Fig 5 experiment (10 evaluation mixes, paper §IV-2).
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    // Collect with 80 eval mixes so Fig 6 shares the same dataset; Fig 5
    // uses the first 10.
    let data = heterogeneous_data(ctx, 80)?;
    let ms = ctx.cfg.ms_cores.clone();
    let methods = hetero_method_errors(&data, ctx.cfg.mode, &ms, ctx.cfg.target.num_cores, 10);

    let apps: Vec<&String> = methods[0].1.keys().collect();
    let mut headers: Vec<&str> = vec!["application"];
    for (name, _) in &methods {
        headers.push(name);
    }
    let rows: Vec<Vec<String>> = apps
        .iter()
        .map(|app| {
            let mut row = vec![(*app).clone()];
            row.extend(methods.iter().map(|(_, m)| pct(m[*app])));
            row
        })
        .collect();
    let mut body = render(&headers, &rows);
    body.push('\n');
    for (name, m) in &methods {
        let errs: Vec<f64> = m.values().copied().collect();
        let mean = sms_core::metrics::mean(&errs);
        let max = sms_core::metrics::max(&errs);
        body.push_str(&format!(
            "{name:<8} avg error {:>6}  max {:>6}\n",
            pct(mean),
            pct(max)
        ));
    }
    Ok(Report {
        id: "fig5",
        title: "Scale-model extrapolation, heterogeneous mixes",
        body,
    })
}
