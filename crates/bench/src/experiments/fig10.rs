//! Figure 10: ML input-variable ablation — IPC-only versus IPC plus
//! bandwidth utilization.
//!
//! Paper result: adding bandwidth utilization improves every method
//! (e.g. SVM-log: 9.5% → 8.0% average error).

use sms_core::pipeline::{predict_homogeneous_loo, regress_homogeneous_loo, TargetMetric};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::ScalingPolicy;
use sms_core::FeatureMode;
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{errors, homogeneous_data, summarize, ML_SEED};
use crate::table::{pct, render};

/// Run the Fig 10 experiment.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    let ms = ctx.cfg.ms_cores.clone();
    let data = homogeneous_data(ctx, ScalingPolicy::prs(), &ms)?;
    let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
    let params = ModelParams::default();
    let target_cores = ctx.cfg.target.num_cores;

    let modes = [
        ("IPC only", FeatureMode::IpcOnly),
        ("IPC + BW", FeatureMode::IpcBandwidth),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    for kind in MlKind::all() {
        let mut row = vec![kind.to_string()];
        for (_, mode) in modes {
            let p = predict_homogeneous_loo(
                &data,
                kind,
                mode,
                TargetMetric::Ipc,
                &params,
                target_cores,
                ML_SEED,
            );
            let (mean, _) = summarize(&errors(&p, &truth));
            row.push(pct(mean));
        }
        rows.push(row);
    }
    for kind in MlKind::all() {
        let mut row = vec![format!("{kind}-log")];
        for (_, mode) in modes {
            let p = regress_homogeneous_loo(
                &data,
                kind,
                CurveModel::Logarithmic,
                mode,
                TargetMetric::Ipc,
                &params,
                &ms,
                target_cores,
                ML_SEED,
            );
            let (mean, _) = summarize(&errors(&p, &truth));
            row.push(pct(mean));
        }
        rows.push(row);
    }

    let body = render(&["method", "IPC only", "IPC + BW"], &rows);
    Ok(Report {
        id: "fig10",
        title: "ML input variables: performance only vs performance + bandwidth",
        body,
    })
}
