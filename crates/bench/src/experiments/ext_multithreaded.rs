//! Extension experiment (paper §V-E6, future work): does scale-model
//! simulation transfer to *data-parallel multi-threaded* workloads?
//!
//! The paper conjectures yes — threads execute the same code on different
//! data with no communication, so the workload should behave like the
//! homogeneous multiprogram mixes. For each benchmark we measure the
//! single-core-scale-model (No-Extrapolation) error for both workload
//! classes on the 32-core target and compare.

use sms_core::pipeline::Simulate;
use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_sim::error::SimError;
use sms_sim::stats::SimResult;
use sms_sim::system::RunSpec;
use sms_workloads::mix::MixSpec;
use sms_workloads::multithreaded::data_parallel_sources;
use sms_workloads::spec::by_name;

use crate::ctx::{Ctx, Report};
use crate::table::{pct, render};

fn mean_ipc(r: &SimResult) -> f64 {
    r.cores.iter().map(|c| c.ipc).sum::<f64>() / r.cores.len() as f64
}

/// Run the multi-threaded transfer experiment.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    let benchmarks = [
        "roms_r",
        "wrf_r",
        "cactuBSSN_r",
        "xz_r",
        "namd_r",
        "fotonik3d_r",
    ];
    let spec = RunSpec {
        warmup_instructions: ctx.cfg.spec.warmup_instructions / 2,
        measure_instructions: ctx.cfg.spec.measure_instructions / 2,
    };
    let target = ctx.cfg.target.clone();
    let ss_cfg = scale_config(&target, 1, ScalingPolicy::prs());
    let t = target.num_cores;

    let mut rows = Vec::new();
    let mut mp_sum = 0.0;
    let mut mt_sum = 0.0;
    for name in benchmarks {
        // sms-lint: allow(E1): the benchmark list above is drawn from the suite itself
        let profile = by_name(name).expect("known benchmark");

        // Multiprogram (cached: plain mixes).
        let mp_ss =
            ctx.cache
                .run_mix(&ss_cfg, &MixSpec::homogeneous(name, 1, ctx.cfg.seed), spec)?;
        let mp_tgt = ctx.cache.run_mix(
            &target,
            &MixSpec::homogeneous(name, t as usize, ctx.cfg.seed),
            spec,
        )?;
        let mp_err = (mp_ss.cores[0].ipc - mean_ipc(&mp_tgt)).abs() / mean_ipc(&mp_tgt);

        // Data-parallel multi-threaded (uncached: sources are not MixSpecs).
        let mt_ss = {
            let mut sys = sms_sim::system::MulticoreSystem::new(
                ss_cfg.clone(),
                data_parallel_sources(&profile, 1, ctx.cfg.seed),
            )?;
            sys.run(spec)?
        };
        let mt_tgt = {
            let mut sys = sms_sim::system::MulticoreSystem::new(
                target.clone(),
                data_parallel_sources(&profile, t, ctx.cfg.seed),
            )?;
            sys.run(spec)?
        };
        let mt_err = (mt_ss.cores[0].ipc - mean_ipc(&mt_tgt)).abs() / mean_ipc(&mt_tgt);

        mp_sum += mp_err;
        mt_sum += mt_err;
        rows.push(vec![
            name.to_owned(),
            pct(mp_err),
            pct(mt_err),
            format!("{:.3}", mean_ipc(&mt_tgt)),
            format!("{:.3}", mt_ss.cores[0].ipc),
        ]);
    }

    let n = benchmarks.len() as f64;
    let mut body = render(
        &[
            "benchmark",
            "multiprogram err",
            "multithreaded err",
            "mt target IPC",
            "mt 1-core IPC",
        ],
        &rows,
    );
    body.push('\n');
    body.push_str(&format!(
        "avg multiprogram error {:>6}   avg data-parallel error {:>6}\n",
        pct(mp_sum / n),
        pct(mt_sum / n)
    ));
    body.push_str(
        "the conjecture holds if the data-parallel errors track the\nmultiprogram errors (paper §V-E6).\n",
    );
    Ok(Report {
        id: "ext_multithreaded",
        title: "Extension: scale models for data-parallel multi-threaded workloads",
        body,
    })
}
