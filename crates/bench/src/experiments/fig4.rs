//! Figure 4: scale-model *extrapolation* with homogeneous mixes —
//! No Extrapolation vs ML-based Prediction (DT/RF/SVM) vs ML-based
//! Regression (DT-log/RF-log/SVM-log), leave-one-out over the suite.
//!
//! Paper result: SVM prediction is most accurate (6.4% avg, 20.8% max);
//! SVM-log regression is only slightly worse (8.0% avg, 26.4% max); all
//! beat No Extrapolation (14.7% avg).

use sms_core::pipeline::{
    no_extrapolation, predict_homogeneous_loo, regress_homogeneous_loo, BenchScaleData,
    TargetMetric,
};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::ScalingPolicy;
use sms_core::FeatureMode;
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{errors, homogeneous_data, summarize, ML_SEED};
use crate::table::{pct, render};

/// Compute the seven Fig 4 method series on a homogeneous dataset.
/// Returns `(method name, per-benchmark predictions)` in figure order.
pub fn method_series(
    data: &[BenchScaleData],
    mode: FeatureMode,
    ms_cores: &[u32],
    curve: CurveModel,
    target_cores: u32,
) -> Vec<(String, Vec<f64>)> {
    let params = ModelParams::default();
    let mut series = vec![(
        "NoExt".to_owned(),
        no_extrapolation(data, TargetMetric::Ipc),
    )];
    for kind in MlKind::all() {
        series.push((
            kind.to_string(),
            predict_homogeneous_loo(
                data,
                kind,
                mode,
                TargetMetric::Ipc,
                &params,
                target_cores,
                ML_SEED,
            ),
        ));
    }
    for kind in MlKind::all() {
        series.push((
            format!("{kind}-{curve}"),
            regress_homogeneous_loo(
                data,
                kind,
                curve,
                mode,
                TargetMetric::Ipc,
                &params,
                ms_cores,
                target_cores,
                ML_SEED,
            ),
        ));
    }
    series
}

/// Render a per-benchmark error table plus mean/max summary for a set of
/// method series.
pub fn render_methods(data: &[BenchScaleData], series: &[(String, Vec<f64>)]) -> String {
    let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
    let errs: Vec<Vec<f64>> = series.iter().map(|(_, p)| errors(p, &truth)).collect();

    let mut headers: Vec<&str> = vec!["benchmark"];
    for (name, _) in series {
        headers.push(name);
    }
    let rows: Vec<Vec<String>> = data
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let mut row = vec![d.name.clone()];
            row.extend(errs.iter().map(|e| pct(e[i])));
            row
        })
        .collect();
    let mut out = render(&headers, &rows);
    out.push('\n');
    for ((name, _), e) in series.iter().zip(&errs) {
        let (mean, max) = summarize(e);
        out.push_str(&format!(
            "{name:<8} avg error {:>6}  max {:>6}\n",
            pct(mean),
            pct(max)
        ));
    }
    out
}

/// Run the Fig 4 experiment.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    let ms = ctx.cfg.ms_cores.clone();
    let data = homogeneous_data(ctx, ScalingPolicy::prs(), &ms)?;
    let series = method_series(
        &data,
        ctx.cfg.mode,
        &ms,
        CurveModel::Logarithmic,
        ctx.cfg.target.num_cores,
    );
    Ok(Report {
        id: "fig4",
        title: "Scale-model extrapolation, homogeneous mixes (LOO cross-validation)",
        body: render_methods(&data, &series),
    })
}
