//! Ablation studies for design choices called out in DESIGN.md:
//! the windowed-synchronization quantum (accuracy vs simulation speed) and
//! the SVR hyper-parameters.

use sms_core::pipeline::{predict_homogeneous_loo, DirectSim, Simulate, TargetMetric};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_ml::svr::SvrParams;
use sms_sim::cache::ReplacementPolicy;
use sms_sim::dram::RowBufferConfig;
use sms_sim::error::SimError;
use sms_workloads::mix::MixSpec;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{errors, homogeneous_data, summarize, ML_SEED};
use crate::table::{pct, render};

/// Sweep the barrier-synchronization quantum on an 8-core PRS scale model
/// and report how per-core IPC and host time move relative to the
/// finest-grained setting.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn quantum(ctx: &mut Ctx) -> Result<Report, SimError> {
    let quanta = [100u64, 500, 1_000, 5_000, 20_000];
    let benches = ["lbm_r", "mcf_r", "gcc_r", "leela_r"];
    let base_cfg = scale_config(&ctx.cfg.target, 8, ScalingPolicy::prs());

    let mut per_quantum: Vec<(u64, f64, f64)> = Vec::new(); // (q, mean ipc, host s)
    for &q in &quanta {
        let mut cfg = base_cfg.clone();
        cfg.sync_quantum = q;
        let mut ipc_sum = 0.0;
        let mut host = 0.0;
        for b in benches {
            let mix = MixSpec::homogeneous(b, 8, ctx.cfg.seed);
            let r = ctx.cache.run_mix(&cfg, &mix, ctx.cfg.spec)?;
            ipc_sum += r.cores.iter().map(|c| c.ipc).sum::<f64>() / r.cores.len() as f64;
            host += r.host_seconds;
        }
        per_quantum.push((q, ipc_sum / benches.len() as f64, host));
    }

    let (_, ipc_ref, _) = per_quantum[0];
    let rows: Vec<Vec<String>> = per_quantum
        .iter()
        .map(|&(q, ipc, host)| {
            vec![
                q.to_string(),
                format!("{ipc:.4}"),
                pct((ipc / ipc_ref - 1.0).abs()),
                format!("{host:.2}s"),
            ]
        })
        .collect();
    let body = render(
        &["quantum (cycles)", "mean IPC", "|Δ| vs 100", "host time"],
        &rows,
    );
    Ok(Report {
        id: "ablation_quantum",
        title: "Synchronization-quantum sensitivity (8-core PRS scale model)",
        body,
    })
}

/// Sweep SVR hyper-parameters (C, epsilon) for homogeneous SVM-based
/// prediction and report the average error per setting.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn svr(ctx: &mut Ctx) -> Result<Report, SimError> {
    let ms = ctx.cfg.ms_cores.clone();
    let data = homogeneous_data(ctx, ScalingPolicy::prs(), &ms)?;
    let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in [0.1, 1.0, 10.0, 100.0] {
        for epsilon in [0.001, 0.01, 0.1] {
            let params = ModelParams {
                svr: SvrParams {
                    c,
                    epsilon,
                    ..SvrParams::default()
                },
                ..ModelParams::default()
            };
            let p = predict_homogeneous_loo(
                &data,
                MlKind::Svm,
                ctx.cfg.mode,
                TargetMetric::Ipc,
                &params,
                ctx.cfg.target.num_cores,
                ML_SEED,
            );
            let (mean, max) = summarize(&errors(&p, &truth));
            rows.push(vec![
                format!("{c}"),
                format!("{epsilon}"),
                pct(mean),
                pct(max),
            ]);
        }
    }
    let body = render(&["C", "epsilon", "avg error", "max error"], &rows);
    Ok(Report {
        id: "ablation_svr",
        title: "SVR hyper-parameter sweep (homogeneous SVM prediction)",
        body,
    })
}

/// Sweep the LLC replacement policy on an 8-core PRS scale model and
/// report per-benchmark IPC and LLC hit-rate shifts relative to true LRU.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn replacement(ctx: &mut Ctx) -> Result<Report, SimError> {
    let benches = ["xz_r", "omnetpp_r", "roms_r", "leela_r"];
    let policies = [
        ("LRU", ReplacementPolicy::Lru),
        ("TreePLRU", ReplacementPolicy::TreePlru),
        ("SRRIP", ReplacementPolicy::Srrip),
        ("Random", ReplacementPolicy::Random),
    ];
    let base_cfg = scale_config(&ctx.cfg.target, 8, ScalingPolicy::prs());

    let mut rows = Vec::new();
    for b in benches {
        let mut cells = vec![b.to_owned()];
        let mut lru_ipc = 0.0;
        for (i, (_, policy)) in policies.iter().enumerate() {
            let mut cfg = base_cfg.clone();
            cfg.llc.slice.policy = *policy;
            let mix = MixSpec::homogeneous(b, 8, ctx.cfg.seed);
            // Direct runs: policy variants are one-off studies, not worth
            // polluting the persistent cache namespace.
            let r = DirectSim.run_mix(&cfg, &mix, ctx.cfg.spec)?;
            let ipc = r.cores.iter().map(|c| c.ipc).sum::<f64>() / r.cores.len() as f64;
            if i == 0 {
                lru_ipc = ipc;
                cells.push(format!("{ipc:.4}"));
            } else {
                cells.push(format!("{:+.1}%", (ipc / lru_ipc - 1.0) * 100.0));
            }
        }
        rows.push(cells);
    }
    let body = render(
        &["benchmark", "LRU IPC", "TreePLRU", "SRRIP", "Random"],
        &rows,
    );
    Ok(Report {
        id: "ablation_replacement",
        title: "LLC replacement-policy sensitivity (8-core PRS scale model)",
        body,
    })
}

/// Compare the flat-latency DRAM model against the open-page row-buffer
/// model on the single-core PRS scale model, for a streaming, a chasing
/// and a compute benchmark.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn row_buffer(ctx: &mut Ctx) -> Result<Report, SimError> {
    let benches = ["lbm_r", "mcf_r", "xz_r", "leela_r"];
    let base_cfg = scale_config(&ctx.cfg.target, 1, ScalingPolicy::prs());

    let mut rows = Vec::new();
    for b in benches {
        let mix = MixSpec::homogeneous(b, 1, ctx.cfg.seed);
        let flat = DirectSim.run_mix(&base_cfg, &mix, ctx.cfg.spec)?;
        let mut cfg = base_cfg.clone();
        cfg.dram.row_buffer = Some(RowBufferConfig::default());
        let paged = DirectSim.run_mix(&cfg, &mix, ctx.cfg.spec)?;
        rows.push(vec![
            b.to_owned(),
            format!("{:.4}", flat.cores[0].ipc),
            format!("{:.4}", paged.cores[0].ipc),
            format!(
                "{:+.1}%",
                (paged.cores[0].ipc / flat.cores[0].ipc - 1.0) * 100.0
            ),
        ]);
    }
    let body = render(&["benchmark", "flat IPC", "open-page IPC", "delta"], &rows);
    Ok(Report {
        id: "ablation_rowbuffer",
        title: "DRAM row-buffer model sensitivity (1-core PRS scale model)",
        body,
    })
}

/// Compare SVR against kernel ridge regression (same RBF hypothesis
/// space, squared loss instead of the ε-insensitive loss) on the
/// homogeneous prediction task — a beyond-the-paper loss-function study.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn krr(ctx: &mut Ctx) -> Result<Report, SimError> {
    let ms = ctx.cfg.ms_cores.clone();
    let data = homogeneous_data(ctx, ScalingPolicy::prs(), &ms)?;
    let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
    let params = ModelParams::default();

    let mut rows = Vec::new();
    for kind in [MlKind::Svm, MlKind::KernelRidge] {
        let p = predict_homogeneous_loo(
            &data,
            kind,
            ctx.cfg.mode,
            TargetMetric::Ipc,
            &params,
            ctx.cfg.target.num_cores,
            ML_SEED,
        );
        let (mean, max) = summarize(&errors(&p, &truth));
        rows.push(vec![kind.to_string(), pct(mean), pct(max)]);
    }
    let body = render(&["model", "avg error", "max error"], &rows);
    Ok(Report {
        id: "ablation_krr",
        title: "SVR vs kernel ridge regression (homogeneous prediction)",
        body,
    })
}
