//! Figure 12: predicting memory-bandwidth utilization instead of IPC.
//!
//! The methodology is metric-agnostic: training the models with bandwidth
//! utilization as the dependent variable predicts target-system bandwidth.
//! Paper result: SVM 8.7% and SVM-log 11.3% average error.

use sms_core::pipeline::{
    no_extrapolation, predict_homogeneous_loo, regress_homogeneous_loo, TargetMetric,
};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::ScalingPolicy;
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{errors, homogeneous_data, summarize, ML_SEED};
use crate::table::{pct, render};

/// Run the Fig 12 experiment.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    let ms = ctx.cfg.ms_cores.clone();
    let data = homogeneous_data(ctx, ScalingPolicy::prs(), &ms)?;
    // Exclude benchmarks whose target bandwidth is negligible: the
    // relative-error metric is ill-conditioned near zero (the paper's
    // suite has no zero-bandwidth benchmarks at its scale).
    let data: Vec<_> = data.into_iter().filter(|d| d.target_bw > 0.05).collect();
    let truth: Vec<f64> = data.iter().map(|d| d.target_bw).collect();
    let params = ModelParams::default();
    let metric = TargetMetric::Bandwidth;

    let mut series: Vec<(String, Vec<f64>)> =
        vec![("NoExt".into(), no_extrapolation(&data, metric))];
    for kind in MlKind::all() {
        series.push((
            kind.to_string(),
            predict_homogeneous_loo(
                &data,
                kind,
                ctx.cfg.mode,
                metric,
                &params,
                ctx.cfg.target.num_cores,
                ML_SEED,
            ),
        ));
    }
    for kind in MlKind::all() {
        series.push((
            format!("{kind}-log"),
            regress_homogeneous_loo(
                &data,
                kind,
                CurveModel::Logarithmic,
                ctx.cfg.mode,
                metric,
                &params,
                &ms,
                ctx.cfg.target.num_cores,
                ML_SEED,
            ),
        ));
    }

    let mut headers: Vec<&str> = vec!["benchmark"];
    for (name, _) in &series {
        headers.push(name);
    }
    let rows: Vec<Vec<String>> = data
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let mut row = vec![d.name.clone()];
            for (_, p) in &series {
                row.push(pct(sms_core::metrics::prediction_error(p[i], truth[i])));
            }
            row
        })
        .collect();
    let mut body = render(&headers, &rows);
    body.push('\n');
    for (name, p) in &series {
        let (mean, max) = summarize(&errors(p, &truth));
        body.push_str(&format!(
            "{name:<8} avg BW error {:>6}  max {:>6}\n",
            pct(mean),
            pct(max)
        ));
    }
    Ok(Report {
        id: "fig12",
        title: "Predicting memory-bandwidth utilization",
        body,
    })
}
