//! Figure 11: number of multi-core scale models used by SVM-log
//! regression.
//!
//! Paper result: fewer scale models degrade accuracy only slightly —
//! 11.0% with {2,4}, 9.7% with {2,4,8}, 8.0% with {2,4,8,16} — so
//! training time can be traded for a small accuracy loss.

use sms_core::pipeline::{regress_homogeneous_loo, TargetMetric};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::ScalingPolicy;
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{errors, homogeneous_data, summarize, ML_SEED};
use crate::table::{pct, render};

/// Run the Fig 11 experiment.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    // Collect with the full scale-model set; subsets reuse the data.
    let full: Vec<u32> = vec![2, 4, 8, 16];
    let data = homogeneous_data(ctx, ScalingPolicy::prs(), &full)?;
    let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
    let params = ModelParams::default();

    let subsets: [&[u32]; 3] = [&[2, 4], &[2, 4, 8], &[2, 4, 8, 16]];
    let rows: Vec<Vec<String>> = subsets
        .iter()
        .map(|subset| {
            let p = regress_homogeneous_loo(
                &data,
                MlKind::Svm,
                CurveModel::Logarithmic,
                ctx.cfg.mode,
                TargetMetric::Ipc,
                &params,
                subset,
                ctx.cfg.target.num_cores,
                ML_SEED,
            );
            let (mean, max) = summarize(&errors(&p, &truth));
            let label = subset
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",");
            vec![
                format!("{{{label}}}"),
                subset.len().to_string(),
                pct(mean),
                pct(max),
            ]
        })
        .collect();

    let body = render(&["scale models", "#", "avg error", "max error"], &rows);
    Ok(Report {
        id: "fig11",
        title: "SVM-log accuracy vs number of multi-core scale models",
        body,
    })
}
