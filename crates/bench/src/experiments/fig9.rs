//! Figure 9: linear, power and logarithmic regression under SVM-based
//! regression.
//!
//! Paper result: logarithmic regression wins — 10.7% (linear) vs 8.9%
//! (power) vs 8.0% (logarithmic) average error.

use sms_core::pipeline::{regress_homogeneous_loo, TargetMetric};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::ScalingPolicy;
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{errors, homogeneous_data, summarize, ML_SEED};
use crate::table::{pct, render};

/// Run the Fig 9 experiment.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    let ms = ctx.cfg.ms_cores.clone();
    let data = homogeneous_data(ctx, ScalingPolicy::prs(), &ms)?;
    let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
    let params = ModelParams::default();

    let curves = [
        CurveModel::Linear,
        CurveModel::Power,
        CurveModel::Logarithmic,
    ];
    let preds: Vec<Vec<f64>> = curves
        .iter()
        .map(|&curve| {
            regress_homogeneous_loo(
                &data,
                MlKind::Svm,
                curve,
                ctx.cfg.mode,
                TargetMetric::Ipc,
                &params,
                &ms,
                ctx.cfg.target.num_cores,
                ML_SEED,
            )
        })
        .collect();

    let rows: Vec<Vec<String>> = data
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let mut row = vec![d.name.clone()];
            for p in &preds {
                row.push(pct(sms_core::metrics::prediction_error(p[i], truth[i])));
            }
            row
        })
        .collect();
    let mut body = render(&["benchmark", "SVM-linear", "SVM-power", "SVM-log"], &rows);
    body.push('\n');
    for (curve, p) in curves.iter().zip(&preds) {
        let (mean, max) = summarize(&errors(p, &truth));
        body.push_str(&format!(
            "SVM-{curve:<7} avg error {:>6}  max {:>6}\n",
            pct(mean),
            pct(max)
        ));
    }
    Ok(Report {
        id: "fig9",
        title: "Linear vs power vs logarithmic regression under SVM",
        body,
    })
}
