//! Figure 7: prediction error versus simulation speedup.
//!
//! The No-Extrapolation curve has five points (16-, 8-, 4-, 2- and
//! 1-core scale models): larger scale models are more accurate but slower
//! to simulate. SVM prediction and SVM-log regression need only the
//! single-core scale model, so they sit at the maximum speedup (the
//! paper's 28x) with near-best accuracy.

use sms_core::pipeline::{
    predict_homogeneous_loo, regress_homogeneous_loo, BenchScaleData, TargetMetric,
};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::ScalingPolicy;
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{errors, homogeneous_data, summarize, ML_SEED};
use crate::table::{pct, render, times};

/// One point of the error-vs-speedup trade-off.
#[derive(Debug, Clone)]
pub struct TradeoffPoint {
    /// Method label.
    pub label: String,
    /// Mean prediction error.
    pub mean_error: f64,
    /// Simulation speedup relative to simulating the target system.
    pub speedup: f64,
}

/// Compute the Fig 7 trade-off points from homogeneous data.
pub fn tradeoff_points(
    data: &[BenchScaleData],
    ms_cores: &[u32],
    target_cores: u32,
) -> Vec<TradeoffPoint> {
    let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
    let total_target_host: f64 = data.iter().map(|d| d.target_host_seconds).sum();
    let total_ss_host: f64 = data.iter().map(|d| d.ss_host_seconds).sum();

    let mut points = Vec::new();

    // No-Extrapolation with the X-core scale model: per-core IPC on the
    // scale model predicts per-core target IPC.
    let mut sizes: Vec<u32> = ms_cores.to_vec();
    sizes.sort_unstable();
    for &cores in sizes.iter().rev() {
        let preds: Vec<f64> = data
            .iter()
            .map(|d| {
                d.ms_ipc
                    .iter()
                    .find(|(c, _)| *c == cores)
                    // sms-lint: allow(E1): every size in `sizes` was measured in the loop above
                    .expect("scale model measured")
                    .1
            })
            .collect();
        let host: f64 = data
            .iter()
            .map(|d| {
                d.ms_host_seconds
                    .iter()
                    .find(|(c, _)| *c == cores)
                    // sms-lint: allow(E1): every size in `sizes` was measured in the loop above
                    .expect("scale model measured")
                    .1
            })
            .sum();
        let (mean, _) = summarize(&errors(&preds, &truth));
        points.push(TradeoffPoint {
            label: format!("NoExt-{cores}core"),
            mean_error: mean,
            speedup: total_target_host / host,
        });
    }

    // 1-core No-Extrapolation.
    let ss_preds: Vec<f64> = data.iter().map(|d| d.ss.ipc).collect();
    let (mean, _) = summarize(&errors(&ss_preds, &truth));
    points.push(TradeoffPoint {
        label: "NoExt-1core".to_owned(),
        mean_error: mean,
        speedup: total_target_host / total_ss_host,
    });

    // SVM prediction and SVM-log regression: only the single-core scale
    // model is simulated at prediction time.
    let params = ModelParams::default();
    let svm = predict_homogeneous_loo(
        data,
        MlKind::Svm,
        sms_core::FeatureMode::IpcBandwidth,
        TargetMetric::Ipc,
        &params,
        target_cores,
        ML_SEED,
    );
    let (mean, _) = summarize(&errors(&svm, &truth));
    points.push(TradeoffPoint {
        label: "SVM".to_owned(),
        mean_error: mean,
        speedup: total_target_host / total_ss_host,
    });

    let svm_log = regress_homogeneous_loo(
        data,
        MlKind::Svm,
        CurveModel::Logarithmic,
        sms_core::FeatureMode::IpcBandwidth,
        TargetMetric::Ipc,
        &params,
        ms_cores,
        target_cores,
        ML_SEED,
    );
    let (mean, _) = summarize(&errors(&svm_log, &truth));
    points.push(TradeoffPoint {
        label: "SVM-log".to_owned(),
        mean_error: mean,
        speedup: total_target_host / total_ss_host,
    });

    points
}

/// Run the Fig 7 experiment.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    let ms = ctx.cfg.ms_cores.clone();
    let data = homogeneous_data(ctx, ScalingPolicy::prs(), &ms)?;
    let points = tradeoff_points(&data, &ms, ctx.cfg.target.num_cores);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.label.clone(), pct(p.mean_error), times(p.speedup)])
        .collect();
    let body = render(&["method", "avg error", "speedup"], &rows);
    Ok(Report {
        id: "fig7",
        title: "Prediction error versus simulation speedup",
        body,
    })
}
