//! Shared helpers for the per-figure experiment drivers.

use sms_core::metrics::prediction_error;
use sms_core::pipeline::{
    collect_heterogeneous, collect_homogeneous, heterogeneous_plan, homogeneous_plan,
    BenchScaleData, ExperimentConfig, HeteroSizing, HeterogeneousData,
};
use sms_core::scaling::ScalingPolicy;
use sms_sim::error::SimError;
use sms_workloads::spec::suite;

use crate::ctx::Ctx;
use crate::runner::execute_plan;

/// Collect homogeneous scale-model data for the full suite under a policy,
/// executing missing simulations first. Results are sorted by single-core
/// LLC MPKI (the paper's Fig 3/4 x-axis ordering).
///
/// # Errors
///
/// Returns the first simulation error when a required run cannot be
/// produced (quarantined runs are retried once more by the collector's
/// direct path, so only persistent failures surface).
pub fn homogeneous_data(
    ctx: &mut Ctx,
    policy: ScalingPolicy,
    ms_cores: &[u32],
) -> Result<Vec<BenchScaleData>, SimError> {
    let cfg = ExperimentConfig {
        policy,
        ms_cores: ms_cores.to_vec(),
        ..ctx.cfg.clone()
    };
    let bench_suite = suite();
    let plan = homogeneous_plan(&cfg, &bench_suite);
    let summary = execute_plan(&ctx.cache, &plan, cfg.spec, ctx.threads, "homogeneous");
    if summary.failed > 0 {
        eprintln!(
            "[homogeneous] {} run(s) quarantined; the collector will retry them directly",
            summary.failed
        );
    }
    let mut data = collect_homogeneous(&mut ctx.cache, &cfg, &bench_suite)?;
    data.sort_by(|a, b| a.ss_llc_mpki.total_cmp(&b.ss_llc_mpki));
    Ok(data)
}

/// Collect heterogeneous data (paper §IV-2 sizing, with `eval_mixes`
/// target-system evaluation mixes).
///
/// # Errors
///
/// Returns the first simulation error when a required run cannot be
/// produced.
pub fn heterogeneous_data(ctx: &mut Ctx, eval_mixes: usize) -> Result<HeterogeneousData, SimError> {
    let sizing = HeteroSizing {
        eval_mixes,
        ..HeteroSizing::default()
    };
    let bench_suite = suite();
    let plan = heterogeneous_plan(&ctx.cfg, &bench_suite, sizing);
    let summary = execute_plan(
        &ctx.cache,
        &plan,
        ctx.cfg.spec,
        ctx.threads,
        "heterogeneous",
    );
    if summary.failed > 0 {
        eprintln!(
            "[heterogeneous] {} run(s) quarantined; the collector will retry them directly",
            summary.failed
        );
    }
    collect_heterogeneous(&mut ctx.cache, &ctx.cfg.clone(), &bench_suite, sizing)
}

/// Per-element absolute relative errors.
pub fn errors(pred: &[f64], truth: &[f64]) -> Vec<f64> {
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| prediction_error(p, t))
        .collect()
}

/// `(mean, max)` of a non-empty error slice.
pub fn summarize(errs: &[f64]) -> (f64, f64) {
    (sms_core::metrics::mean(errs), sms_core::metrics::max(errs))
}

/// Seed used for all ML model training in the experiment drivers.
pub const ML_SEED: u64 = 1234;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_and_summary() {
        let e = errors(&[1.1, 0.8], &[1.0, 1.0]);
        assert!((e[0] - 0.1).abs() < 1e-12);
        assert!((e[1] - 0.2).abs() < 1e-12);
        let (mean, max) = summarize(&e);
        assert!((mean - 0.15).abs() < 1e-12);
        assert!((max - 0.2).abs() < 1e-12);
    }
}
