//! Figure 8: MC-first versus MB-first memory-bandwidth scaling under PRS.
//!
//! Paper result: scaling the number of memory controllers first yields
//! more accurate scale models, especially for the ML-based regression
//! techniques (SVM-log: 9.3% → 8.0%; DT-log: 14.1% → 9.5%).

use sms_core::pipeline::{regress_homogeneous_loo, BenchScaleData, TargetMetric};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::ScalingPolicy;
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{errors, homogeneous_data, summarize, ML_SEED};
use crate::table::{pct, render};

fn noext_errors_at(data: &[BenchScaleData], cores: u32) -> Vec<f64> {
    let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
    let preds: Vec<f64> = data
        .iter()
        .map(|d| {
            d.ms_ipc
                .iter()
                .find(|(c, _)| *c == cores)
                // sms-lint: allow(E1): caller passes a size that was measured into `ms_ipc`
                .expect("measured")
                .1
        })
        .collect();
    errors(&preds, &truth)
}

/// Run the Fig 8 experiment.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    let ms = ctx.cfg.ms_cores.clone();
    let mc_first = homogeneous_data(ctx, ScalingPolicy::prs(), &ms)?;
    let mb_first = homogeneous_data(ctx, ScalingPolicy::prs_mb_first(), &ms)?;

    let mut rows: Vec<Vec<String>> = Vec::new();

    // Per-scale-model No-Extrapolation accuracy under both orders.
    for &cores in &ms {
        let (mc_mean, _) = summarize(&noext_errors_at(&mc_first, cores));
        let (mb_mean, _) = summarize(&noext_errors_at(&mb_first, cores));
        rows.push(vec![
            format!("NoExt-{cores}core"),
            pct(mc_mean),
            pct(mb_mean),
        ]);
    }

    // ML-based regression accuracy under both orders.
    let params = ModelParams::default();
    for kind in MlKind::all() {
        let mut means = Vec::new();
        for data in [&mc_first, &mb_first] {
            let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
            let preds = regress_homogeneous_loo(
                data,
                kind,
                CurveModel::Logarithmic,
                ctx.cfg.mode,
                TargetMetric::Ipc,
                &params,
                &ms,
                ctx.cfg.target.num_cores,
                ML_SEED,
            );
            let (mean, _) = summarize(&errors(&preds, &truth));
            means.push(mean);
        }
        rows.push(vec![format!("{kind}-log"), pct(means[0]), pct(means[1])]);
    }

    let body = render(&["method", "MC-first", "MB-first"], &rows);
    Ok(Report {
        id: "fig8",
        title: "Memory-bandwidth scaling alternatives under PRS",
        body,
    })
}
