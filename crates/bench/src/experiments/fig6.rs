//! Figure 6: system-throughput (STP) prediction error for ML-based
//! regression across 80 heterogeneous mixes.
//!
//! Paper result: SVM-log predicts STP with 3.8% average error (max 13%);
//! STP errors are *lower* than per-application errors because over- and
//! under-estimations cancel in the sum of normalized IPCs.

use sms_core::metrics::stp;
use sms_core::pipeline::{
    regress_mix_slots, train_hetero_regressor, HeterogeneousData, TargetMetric,
};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::FeatureMode;
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;

use crate::ctx::{Ctx, Report};
use crate::experiments::common::{heterogeneous_data, summarize, ML_SEED};
use crate::table::{pct, render};

/// Per-mix STP prediction errors (sorted ascending) for one regression
/// method.
pub fn stp_errors(
    data: &HeterogeneousData,
    kind: MlKind,
    mode: FeatureMode,
    ms_cores: &[u32],
    target_cores: u32,
) -> Vec<f64> {
    let ex = train_hetero_regressor(
        data,
        kind,
        CurveModel::Logarithmic,
        mode,
        TargetMetric::Ipc,
        &ModelParams::default(),
        ML_SEED,
    );
    let mut errs: Vec<f64> = data
        .eval_target
        .iter()
        .map(|run| {
            let ss_ipcs: Vec<f64> = run.mix.benchmarks.iter().map(|n| data.ss[n].ipc).collect();
            let truth = stp(&run.slot_ipc, &ss_ipcs);
            let preds = regress_mix_slots(&ex, &data.ss, &run.mix, mode, ms_cores, target_cores);
            let predicted = stp(&preds, &ss_ipcs);
            sms_core::metrics::prediction_error(predicted, truth)
        })
        .collect();
    errs.sort_by(f64::total_cmp);
    errs
}

/// Run the Fig 6 experiment.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run(ctx: &mut Ctx) -> Result<Report, SimError> {
    let data = heterogeneous_data(ctx, 80)?;
    let ms = ctx.cfg.ms_cores.clone();
    let methods: Vec<(String, Vec<f64>)> = MlKind::all()
        .into_iter()
        .map(|kind| {
            (
                format!("{kind}-log"),
                stp_errors(&data, kind, ctx.cfg.mode, &ms, ctx.cfg.target.num_cores),
            )
        })
        .collect();

    let n = methods[0].1.len();
    let mut headers: Vec<&str> = vec!["mix (sorted)"];
    for (name, _) in &methods {
        headers.push(name);
    }
    // Print every 8th mix to keep the table readable; the summary uses all.
    let rows: Vec<Vec<String>> = (0..n)
        .step_by(8)
        .map(|i| {
            let mut row = vec![format!("#{i}")];
            row.extend(methods.iter().map(|(_, e)| pct(e[i])));
            row
        })
        .collect();
    let mut body = render(&headers, &rows);
    body.push('\n');
    for (name, errs) in &methods {
        let (mean, max) = summarize(errs);
        body.push_str(&format!(
            "{name:<8} avg STP error {:>6}  max {:>6}  ({} mixes)\n",
            pct(mean),
            pct(max),
            errs.len()
        ));
    }
    Ok(Report {
        id: "fig6",
        title: "STP prediction error, ML-based regression over 80 heterogeneous mixes",
        body,
    })
}
