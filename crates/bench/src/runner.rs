//! Simulation execution with a persistent on-disk result cache and a
//! fault-tolerant multi-threaded plan executor.
//!
//! Every distinct `(machine config, workload mix, run spec)` triple is
//! keyed by a hash of its canonical JSON encoding; results are stored as
//! JSON files under the cache directory, so re-running an experiment
//! binary only simulates what is missing. The stored key string is
//! verified on load, ruling out silent hash collisions.
//!
//! The executor isolates each run: a panicking or erroring simulation is
//! retried a bounded number of times, and a persistent failure is
//! *quarantined* (recorded under `quarantine/` in the cache directory)
//! while the rest of the plan completes. Every invocation writes a JSON
//! run-manifest (see [`crate::telemetry`]) next to the cache, and
//! [`execute_plan`] returns a [`PlanSummary`] whose `failed` count the
//! caller must inspect.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sms_core::pipeline::{DirectSim, Simulate};
use sms_sim::config::SystemConfig;
use sms_sim::error::SimError;
use sms_sim::stats::SimResult;
use sms_sim::system::RunSpec;
use sms_workloads::mix::MixSpec;

use crate::journal::{JournalLine, PlanJournal};
use crate::telemetry::{
    mix_label, write_manifest, write_trace, RunRecord, RunStatus, RunSummary, Telemetry,
};

/// 128-bit FNV-1a over a byte string.
fn fnv128(bytes: &[u8]) -> (u64, u64) {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x6c62_272e_07bb_0142;
    for &b in bytes {
        h1 ^= u64::from(b);
        h1 = h1.wrapping_mul(0x1000_0000_01b3);
        h2 ^= u64::from(b.rotate_left(3));
        h2 = h2.wrapping_mul(0x1000_0000_01b3);
    }
    (h1, h2)
}

/// Fingerprint of the workload-suite definition, so cached results are
/// invalidated when benchmark profiles change (a `MixSpec` holds only
/// benchmark *names*).
fn suite_fingerprint() -> u64 {
    use std::sync::OnceLock;
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        // sms-lint: allow(E1): serializing plain data structs cannot fail
        let json = serde_json::to_string(&sms_workloads::spec::suite()).expect("suite serializes");
        let (h1, h2) = fnv128(json.as_bytes());
        h1 ^ h2.rotate_left(17)
    })
}

/// Canonical cache key for one simulation request.
pub fn cache_key(cfg: &SystemConfig, mix: &MixSpec, spec: RunSpec) -> String {
    // serde_json serialization of these types is deterministic (struct
    // field order), so the JSON string is a canonical encoding; the suite
    // fingerprint ties the key to the workload definitions behind the
    // benchmark names.
    format!(
        "v{:016x}|{}|{}|{}",
        suite_fingerprint(),
        serde_json::to_string(cfg).expect("config serializes"), // sms-lint: allow(E1): plain data structs
        serde_json::to_string(mix).expect("mix serializes"), // sms-lint: allow(E1): plain data structs
        serde_json::to_string(&spec).expect("spec serializes"), // sms-lint: allow(E1): plain data structs
    )
}

/// Hex rendering of the 128-bit key hash — the cache file stem, and the
/// `key_hash` field of manifest and quarantine records.
pub fn key_hash_hex(key: &str) -> String {
    let (h1, h2) = fnv128(key.as_bytes());
    format!("{h1:016x}{h2:016x}")
}

/// Cache entry schema version.
///
/// v2 added the `checksum` field (FNV-128 of the result's JSON encoding)
/// so `lookup` and `sms fsck` can detect bit-level damage; v1 entries
/// (no version, no checksum) still load.
pub const CACHE_SCHEMA_VERSION: u32 = 2;

fn v1_cache_schema() -> u32 {
    1
}

#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct CacheEntry {
    #[serde(default = "v1_cache_schema")]
    pub(crate) schema_version: u32,
    pub(crate) key: String,
    /// FNV-128 hex of the result's JSON encoding (absent in v1 entries).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub(crate) checksum: Option<String>,
    pub(crate) result: SimResult,
}

/// The checksum stored in v2 cache entries: FNV-128 hex of the result's
/// canonical JSON encoding.
pub fn result_checksum(result: &SimResult) -> String {
    // sms-lint: allow(E1): serializing plain data structs cannot fail
    let json = serde_json::to_string(result).expect("result serializes");
    let (h1, h2) = fnv128(json.as_bytes());
    format!("{h1:016x}{h2:016x}")
}

/// Whether an I/O error is a deterministic `sms-faults` injection rather
/// than a real filesystem failure.
fn is_injected(e: &std::io::Error) -> bool {
    e.get_ref()
        .is_some_and(|inner| inner.is::<sms_faults::FaultError>())
}

/// What a quarantine file records about a persistently failing run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// The full cache key of the failing request.
    pub key: String,
    /// Human-readable mix description.
    pub mix: String,
    /// Rendered error of the final attempt.
    pub error: String,
    /// Attempts made before giving up.
    pub attempts: u32,
}

/// A caching simulator: checks the in-memory map, then disk, then runs.
///
/// The disk layer is best-effort: on the first write failure the cache
/// warns once and degrades to memory-only operation rather than aborting
/// a sweep that may already hold hours of simulation.
#[derive(Debug, Clone)]
pub struct CachedSim {
    dir: PathBuf,
    memory: Arc<Mutex<std::collections::BTreeMap<String, SimResult>>>,
    /// Cleared on the first disk write failure (shared across clones).
    disk_ok: Arc<AtomicBool>,
    /// Key hashes quarantined through this cache instance.
    quarantined: Arc<Mutex<Vec<String>>>,
}

impl CachedSim {
    /// Open (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            dir: dir.as_ref().to_owned(),
            memory: Arc::new(Mutex::new(std::collections::BTreeMap::new())),
            disk_ok: Arc::new(AtomicBool::new(true)),
            quarantined: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where quarantine records for persistently failing runs live.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Whether the disk layer is still writable (false after degrading to
    /// memory-only operation).
    pub fn disk_available(&self) -> bool {
        self.disk_ok.load(Ordering::Acquire)
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.json", key_hash_hex(key)))
    }

    /// Record a corrupt or unreadable on-disk entry: counted in the
    /// global `sms-obs` registry (`sms_cache_corrupt_total{kind}`) and
    /// warned about once per process.
    fn note_corrupt(path: &Path, kind: &str, detail: &str) {
        static WARNED: AtomicBool = AtomicBool::new(false);
        sms_obs::registry()
            .counter_family(
                "sms_cache_corrupt_total",
                "Cache entries rejected at lookup, by defect kind.",
                &["kind"],
            )
            .with(&[kind])
            .inc();
        if !WARNED.swap(true, Ordering::AcqRel) {
            eprintln!(
                "cache: corrupt entry {} ({kind}: {detail}); treating as a miss — \
                 run `sms fsck` to repair the cache (further corruption warnings suppressed)",
                path.display()
            );
        }
    }

    /// Look up a result without simulating. A corrupt, torn, stale, or
    /// checksum-failing on-disk entry is counted
    /// (`sms_cache_corrupt_total{kind}`), warned about once, and treated
    /// as a miss so the run is simply re-simulated.
    pub fn lookup(&self, cfg: &SystemConfig, mix: &MixSpec, spec: RunSpec) -> Option<SimResult> {
        let key = cache_key(cfg, mix, spec);
        if let Some(hit) = self.memory.lock().get(&key) {
            return Some(hit.clone());
        }
        let path = self.path_for(&key);
        let mut data = match std::fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                Self::note_corrupt(&path, "unreadable", &e.to_string());
                return None;
            }
        };
        // `cache.read` failpoint: `corrupt` flips bytes in the just-read
        // payload (caught below by the checksum), `err` turns the hit
        // into a miss.
        if sms_faults::corrupt_bytes("cache.read", &mut data).is_err() {
            return None;
        }
        let entry: CacheEntry = match serde_json::from_slice(&data) {
            Ok(entry) => entry,
            Err(e) => {
                Self::note_corrupt(&path, "torn", &e.to_string());
                return None;
            }
        };
        if entry.key != key {
            // Hash collision or a file renamed/copied into the wrong stem.
            Self::note_corrupt(&path, "stale_key", "stored key does not match request");
            return None;
        }
        if let Some(stored) = &entry.checksum {
            let actual = result_checksum(&entry.result);
            if *stored != actual {
                Self::note_corrupt(&path, "checksum", "payload checksum mismatch");
                return None;
            }
        }
        self.memory.lock().insert(key, entry.result.clone());
        Some(entry.result)
    }

    /// Insert a freshly computed result. Never fails: a disk error
    /// degrades the cache to memory-only with a single warning.
    pub fn insert(&self, cfg: &SystemConfig, mix: &MixSpec, spec: RunSpec, result: &SimResult) {
        let key = cache_key(cfg, mix, spec);
        self.memory.lock().insert(key.clone(), result.clone());
        if !self.disk_ok.load(Ordering::Acquire) {
            return;
        }
        let entry = CacheEntry {
            schema_version: CACHE_SCHEMA_VERSION,
            key: key.clone(),
            checksum: Some(result_checksum(result)),
            result: result.clone(),
        };
        let path = self.path_for(&key);
        // Write via a temp file so interrupted runs never leave torn JSON.
        // The temp name is unique per writer (pid + sequence): concurrent
        // inserts of the *same* key must not race on a shared `.tmp` path,
        // or one writer's rename can publish another's half-written file.
        // sms-lint: atomic(counter): unique temp-name sequence; no data it guards
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "{}.{}.{}.tmp",
            key_hash_hex(&key),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let write = || -> std::io::Result<()> {
            use std::io::Write as _;
            sms_faults::check_io("cache.write")?;
            let mut buf = serde_json::to_vec(&entry).map_err(std::io::Error::other)?;
            // `corrupt` rules damage the serialized payload before it hits
            // disk; `lookup` and `sms fsck` must catch it via the checksum.
            sms_faults::corrupt_bytes("cache.write", &mut buf)?;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&buf)?;
            // Sync before the rename publishes the entry: a crash must
            // never expose a name whose bytes were not yet durable.
            file.sync_data()?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(e) = write() {
            let _ = std::fs::remove_file(&tmp);
            if is_injected(&e) {
                // An injected write fault drops this entry's disk copy
                // (the memory layer still serves it) without degrading the
                // whole cache; a later `sms resume` re-simulates it.
                eprintln!("cache: dropping disk write of {} ({e})", path.display());
            } else {
                self.degrade_disk(&e);
            }
        }
    }

    /// Release a key from quarantine (memory record and on-disk file) —
    /// called when a previously failing run later succeeds, so a resumed
    /// sweep converges to the same final state as a fault-free one.
    pub fn absolve(&self, key_hash: &str) {
        self.quarantined.lock().retain(|h| h != key_hash);
        let _ = std::fs::remove_file(self.quarantine_dir().join(format!("{key_hash}.json")));
    }

    /// Warn once and switch to memory-only operation.
    fn degrade_disk(&self, err: &dyn std::fmt::Display) {
        if self.disk_ok.swap(false, Ordering::AcqRel) {
            eprintln!(
                "cache: disk layer unwritable ({err}); continuing memory-only — \
                 results of this process will not persist"
            );
        }
    }

    /// Record a persistently failing run under `quarantine/`, returning
    /// the key hash. Best-effort on disk; always tracked in memory.
    pub fn quarantine(
        &self,
        cfg: &SystemConfig,
        mix: &MixSpec,
        spec: RunSpec,
        error: &SimError,
        attempts: u32,
    ) -> String {
        let key = cache_key(cfg, mix, spec);
        let hash = key_hash_hex(&key);
        self.quarantined.lock().push(hash.clone());
        if !self.disk_ok.load(Ordering::Acquire) {
            return hash;
        }
        let record = QuarantineRecord {
            key,
            mix: mix_label(mix),
            error: error.to_string(),
            attempts,
        };
        let dir = self.quarantine_dir();
        let write = || -> std::io::Result<()> {
            sms_faults::check_io("cache.quarantine")?;
            std::fs::create_dir_all(&dir)?;
            let json = serde_json::to_string_pretty(&record).map_err(std::io::Error::other)?;
            std::fs::write(dir.join(format!("{hash}.json")), json)
        };
        if let Err(e) = write() {
            if is_injected(&e) {
                // An injected failure costs only this record's disk copy,
                // not the whole cache's disk layer.
                eprintln!("quarantine: dropping disk record {hash} ({e})");
            } else {
                self.degrade_disk(&e);
            }
        }
        hash
    }

    /// Number of quarantined entries visible to this cache: those recorded
    /// through this instance plus any `quarantine/` files on disk.
    pub fn quarantine_count(&self) -> usize {
        let mut seen: std::collections::BTreeSet<String> =
            self.quarantined.lock().iter().cloned().collect();
        if let Ok(rd) = std::fs::read_dir(self.quarantine_dir()) {
            for entry in rd.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "json") {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        seen.insert(stem.to_owned());
                    }
                }
            }
        }
        seen.len()
    }

    /// Number of entries currently in the in-memory layer.
    pub fn memory_len(&self) -> usize {
        self.memory.lock().len()
    }
}

impl Simulate for CachedSim {
    fn run_mix(
        &mut self,
        cfg: &SystemConfig,
        mix: &MixSpec,
        spec: RunSpec,
    ) -> Result<SimResult, SimError> {
        if let Some(hit) = self.lookup(cfg, mix, spec) {
            return Ok(hit);
        }
        let result = DirectSim.run_mix(cfg, mix, spec)?;
        self.insert(cfg, mix, spec, &result);
        Ok(result)
    }
}

/// What [`execute_plan`] reports back to its caller. `failed` is the
/// number of quarantined runs — zero means the cache now covers the whole
/// plan.
#[derive(Debug, Clone)]
#[must_use = "inspect `failed` to detect quarantined runs"]
pub struct PlanSummary {
    /// Plan size.
    pub total: usize,
    /// Entries already cached before execution.
    pub cached: usize,
    /// Entries simulated successfully this invocation.
    pub simulated: usize,
    /// Entries quarantined after exhausting retries.
    pub failed: usize,
    /// Retry attempts consumed across all entries.
    pub retries: usize,
    /// Wall-clock seconds for the invocation.
    pub wall_seconds: f64,
    /// Busy time over `workers * wall` (0..1).
    pub worker_utilization: f64,
    /// Where the JSON run-manifest was written, when it was.
    pub manifest_path: Option<PathBuf>,
}

/// Default retry budget per failing run; override with `SMS_RETRIES`.
pub fn default_retries() -> u32 {
    std::env::var("SMS_RETRIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Knobs for one executor invocation. Tests construct these explicitly;
/// `execute_plan` reads them from the environment via [`Self::from_env`].
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Retry budget per failing run.
    pub retries: u32,
    /// Watchdog deadline per run attempt: an attempt still running after
    /// this long is abandoned and the run quarantined as hung. `None`
    /// disables the watchdog (runs execute on the worker thread itself).
    pub run_timeout: Option<Duration>,
}

impl ExecOptions {
    /// Options with the given retry budget and no watchdog.
    pub fn with_retries(retries: u32) -> Self {
        Self {
            retries,
            run_timeout: None,
        }
    }

    /// Read `SMS_RETRIES` (default 1) and `SMS_RUN_TIMEOUT_SECS` (0 or
    /// unset disables the watchdog).
    pub fn from_env() -> Self {
        let run_timeout = std::env::var("SMS_RUN_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&secs| secs > 0)
            .map(Duration::from_secs);
        Self {
            retries: default_retries(),
            run_timeout,
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One panic-isolated attempt of `run_fn`, with the `run.body` failpoint
/// evaluated inside the isolation boundary (so injected panics are caught
/// like real ones and injected errors surface as [`SimError::Injected`]).
fn attempt_run<F>(
    run_fn: &F,
    cfg: &SystemConfig,
    mix: &MixSpec,
    spec: RunSpec,
) -> Result<SimResult, SimError>
where
    F: Fn(&SystemConfig, &MixSpec, RunSpec) -> Result<SimResult, SimError>,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    catch_unwind(AssertUnwindSafe(|| {
        if let Err(e) = sms_faults::check("run.body") {
            return Err(SimError::Injected(e.to_string()));
        }
        run_fn(cfg, mix, spec)
    }))
    .unwrap_or_else(|payload| Err(SimError::Panicked(panic_message(payload.as_ref()))))
}

/// Execute one plan entry with panic isolation, an optional watchdog
/// deadline, and bounded retries, then record the outcome (cache insert
/// or quarantine, journal line) and telemetry.
#[allow(clippy::too_many_arguments)]
fn run_one<F>(
    cache: &CachedSim,
    cfg: &SystemConfig,
    mix: &MixSpec,
    spec: RunSpec,
    opts: ExecOptions,
    run_fn: &Arc<F>,
    telemetry: &Telemetry,
    journal: Option<&PlanJournal>,
) where
    F: Fn(&SystemConfig, &MixSpec, RunSpec) -> Result<SimResult, SimError> + Send + Sync + 'static,
{
    let _span = sms_obs::tracer()
        .span("run_one", "bench")
        .arg("mix", &mix_label(mix))
        .arg("cores", &cfg.num_cores.to_string());
    let started = Instant::now();
    let mut attempts = 0u32;
    let outcome = loop {
        attempts += 1;
        let attempt = match opts.run_timeout {
            None => attempt_run(run_fn.as_ref(), cfg, mix, spec),
            Some(deadline) => {
                // Watchdog: run the attempt on a detached thread and wait
                // with a deadline. On timeout the thread is abandoned (its
                // eventual send fails silently — the receiver is gone — so
                // a late result can never reach the cache) and the run is
                // quarantined as hung without killing the worker.
                let (tx, rx) = std::sync::mpsc::sync_channel(1);
                let run_fn = Arc::clone(run_fn);
                let cfg_own = cfg.clone();
                let mix_own = mix.clone();
                std::thread::spawn(move || {
                    let _ = tx.send(attempt_run(run_fn.as_ref(), &cfg_own, &mix_own, spec));
                });
                match rx.recv_timeout(deadline) {
                    Ok(result) => result,
                    Err(_) => {
                        // Mark the stall instant in the trace, then give up
                        // on this entry entirely: a hang is not transient,
                        // so retrying would just burn another deadline.
                        sms_obs::tracer().instant("hung", "bench");
                        break Err(SimError::Hung {
                            deadline_ms: deadline.as_millis() as u64,
                        });
                    }
                }
            }
        };
        match attempt {
            Ok(result) => break Ok(result),
            Err(_) if attempts <= opts.retries => {
                sms_obs::tracer().instant("retry", "bench");
                telemetry.record_retry();
            }
            Err(e) => break Err(e),
        }
    };
    let wall = started.elapsed().as_secs_f64();
    let key_hash = key_hash_hex(&cache_key(cfg, mix, spec));
    let record = match outcome {
        Ok(result) => {
            cache.insert(cfg, mix, spec, &result);
            // A success releases any quarantine record left by an earlier
            // (crashed or faulted) invocation of the same plan entry.
            cache.absolve(&key_hash);
            if let Some(journal) = journal {
                journal.append_best_effort(&JournalLine::Run {
                    key_hash: key_hash.clone(),
                    status: RunStatus::Ok,
                });
            }
            RunRecord {
                key_hash,
                mix: mix_label(mix),
                cores: cfg.num_cores,
                status: RunStatus::Ok,
                attempts,
                wall_seconds: wall,
                summary: Some(RunSummary::from_result(cfg, &result)),
                error: None,
            }
        }
        Err(e) => {
            cache.quarantine(cfg, mix, spec, &e, attempts);
            if let Some(journal) = journal {
                journal.append_best_effort(&JournalLine::Run {
                    key_hash: key_hash.clone(),
                    status: RunStatus::Quarantined,
                });
            }
            RunRecord {
                key_hash,
                mix: mix_label(mix),
                cores: cfg.num_cores,
                status: RunStatus::Quarantined,
                attempts,
                wall_seconds: wall,
                summary: None,
                error: Some(e.to_string()),
            }
        }
    };
    telemetry.record(record);
}

/// Execute a run plan into the cache, using up to `threads` worker
/// threads (capped, with a notice, by available parallelism);
/// already-cached entries are skipped. Each run is isolated: panics are
/// caught, failures retried up to `SMS_RETRIES` times (default 1), and
/// persistent failures quarantined while the rest of the plan completes.
/// A JSON run-manifest is written under `<cache>/manifests/`.
pub fn execute_plan(
    cache: &CachedSim,
    plan: &[(SystemConfig, MixSpec)],
    spec: RunSpec,
    threads: usize,
    label: &str,
) -> PlanSummary {
    execute_plan_with(
        cache,
        plan,
        spec,
        threads,
        label,
        ExecOptions::from_env(),
        |cfg, mix, spec| DirectSim.run_mix(cfg, mix, spec),
    )
}

/// [`execute_plan`] with explicit [`ExecOptions`] and an injectable run
/// function — the seam fault-injection and determinism tests use.
///
/// Progress is journaled best-effort to `<cache>/journal/<label>.jsonl`
/// (one fsync'd line per terminal run state, a `done` line at the end) so
/// a killed invocation can be resumed by `sms resume`.
pub fn execute_plan_with<F>(
    cache: &CachedSim,
    plan: &[(SystemConfig, MixSpec)],
    spec: RunSpec,
    threads: usize,
    label: &str,
    opts: ExecOptions,
    run_fn: F,
) -> PlanSummary
where
    F: Fn(&SystemConfig, &MixSpec, RunSpec) -> Result<SimResult, SimError> + Send + Sync + 'static,
{
    let run_fn = Arc::new(run_fn);
    let journal = match PlanJournal::open_append(cache.dir(), label) {
        Ok(journal) => Some(journal),
        Err(e) => {
            eprintln!("[{label}] warning: cannot open plan journal: {e}");
            None
        }
    };
    let plan_span = sms_obs::tracer()
        .span("execute_plan", "bench")
        .arg("label", label)
        .arg("runs", &plan.len().to_string());
    let todo: Vec<&(SystemConfig, MixSpec)> = plan
        .iter()
        .filter(|(cfg, mix)| cache.lookup(cfg, mix, spec).is_none())
        .collect();
    let cached = plan.len() - todo.len();
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workers = threads.min(available).max(1).min(todo.len().max(1));
    let telemetry = Telemetry::start(label, workers, plan.len(), cached);
    if todo.is_empty() {
        eprintln!("[{label}] all {} runs cached", plan.len());
    } else {
        if workers < threads {
            eprintln!(
                "[{label}] note: {threads} threads requested, running {workers} \
                 (available parallelism {available}, {} runs)",
                todo.len()
            );
        }
        eprintln!(
            "[{label}] {} of {} runs to simulate on {workers} thread(s)",
            todo.len(),
            plan.len()
        );
        // sms-lint: atomic(counter): work-ticket dispenser, guards no other data
        let next = AtomicUsize::new(0);
        // Shadow with references so each worker's `move` closure copies a
        // shared borrow instead of trying to move the value out of the loop.
        let next = &next;
        let todo = &todo;
        let run_fn = &run_fn;
        let telemetry_ref = &telemetry;
        let journal_ref = journal.as_ref();
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= todo.len() {
                        break;
                    }
                    let (cfg, mix) = todo[i];
                    run_one(
                        cache,
                        cfg,
                        mix,
                        spec,
                        opts,
                        run_fn,
                        telemetry_ref,
                        journal_ref,
                    );
                });
            }
        })
        // sms-lint: allow(E1): scope() only errs when a worker leaks a panic, and run_one catches them
        .expect("executor worker threads are panic-isolated");
    }
    let manifest = telemetry.finish();
    if let Some(journal) = &journal {
        journal.append_best_effort(&JournalLine::Done {
            simulated: manifest.simulated,
            failed: manifest.failed,
        });
    }
    let manifest_path = write_manifest(cache.dir(), &manifest);
    // Close the invocation span before flushing so it appears in its own
    // trace file when tracing is on.
    drop(plan_span);
    let _ = write_trace(cache.dir(), label);
    if manifest.failed > 0 {
        eprintln!(
            "[{label}] {} run(s) failed after retries; see {} and the manifest",
            manifest.failed,
            cache.quarantine_dir().display()
        );
    }
    PlanSummary {
        total: manifest.total_runs,
        cached: manifest.cached,
        simulated: manifest.simulated,
        failed: manifest.failed,
        retries: manifest.retries,
        wall_seconds: manifest.wall_seconds,
        worker_utilization: manifest.worker_utilization,
        manifest_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::RunManifest;
    use sms_sim::system::RunSpec;

    fn tiny_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = 1;
        cfg.llc.num_slices = 1;
        cfg.noc.mesh_cols = 1;
        cfg.noc.mesh_rows = 1;
        cfg.dram.num_controllers = 1;
        cfg
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sms-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// A deterministic stand-in simulation: results derived purely from
    /// the cache key, with zero host time.
    fn fake_run(cfg: &SystemConfig, mix: &MixSpec, spec: RunSpec) -> Result<SimResult, SimError> {
        let (h1, h2) = fnv128(cache_key(cfg, mix, spec).as_bytes());
        Ok(SimResult {
            cores: vec![],
            elapsed_cycles: h1 % 100_000 + 1,
            total_dram_bytes: h2 % 977 * 64,
            total_bandwidth_gbps: (h1 % 64) as f64,
            noc_transfers: h1 % 311,
            noc_crossings: h2 % 173,
            llc_accesses: h1 % 997,
            llc_hits: h1 % 499,
            host_seconds: 0.0,
        })
    }

    fn spec_n(n: u64) -> RunSpec {
        RunSpec {
            warmup_instructions: 0,
            measure_instructions: n,
        }
    }

    fn fake_plan(names: &[&str]) -> Vec<(SystemConfig, MixSpec)> {
        let cfg = tiny_cfg();
        names
            .iter()
            .map(|n| (cfg.clone(), MixSpec::homogeneous(n, 1, 7)))
            .collect()
    }

    #[test]
    fn cache_round_trip_and_hit() {
        let dir = tmpdir("rt");
        let mut sim = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let mix = MixSpec::homogeneous("leela_r", 1, 1);
        let spec = RunSpec {
            warmup_instructions: 1000,
            measure_instructions: 20_000,
        };
        assert!(sim.lookup(&cfg, &mix, spec).is_none());
        let a = sim.run_mix(&cfg, &mix, spec).unwrap();
        let b = sim.lookup(&cfg, &mix, spec).expect("cached now");
        assert_eq!(a.cores[0].cycles, b.cores[0].cycles);

        // A fresh instance must hit the on-disk layer.
        let fresh = CachedSim::open(&dir).unwrap();
        let c = fresh.lookup(&cfg, &mix, spec).expect("disk hit");
        assert_eq!(a.cores[0].cycles, c.cores[0].cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_requests_get_distinct_entries() {
        let dir = tmpdir("distinct");
        let mut sim = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let spec = spec_n(10_000);
        let a = sim
            .run_mix(&cfg, &MixSpec::homogeneous("leela_r", 1, 1), spec)
            .unwrap();
        let b = sim
            .run_mix(&cfg, &MixSpec::homogeneous("lbm_r", 1, 1), spec)
            .unwrap();
        assert_ne!(a.cores[0].label, b.cores[0].label);
        assert_eq!(sim.memory_len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn execute_plan_fills_cache() {
        let dir = tmpdir("plan");
        let cache = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let spec = spec_n(5_000);
        let plan: Vec<(SystemConfig, MixSpec)> = ["leela_r", "lbm_r", "mcf_r"]
            .iter()
            .map(|n| (cfg.clone(), MixSpec::homogeneous(n, 1, 7)))
            .collect();
        let summary = execute_plan(&cache, &plan, spec, 4, "test");
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.simulated, 3);
        for (c, m) in &plan {
            assert!(cache.lookup(c, m, spec).is_some());
        }
        // Second execution is a no-op (covered entries skipped).
        let again = execute_plan(&cache, &plan, spec, 4, "test");
        assert_eq!(again.cached, 3);
        assert_eq!(again.simulated, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_distinguishes_spec() {
        let cfg = tiny_cfg();
        let mix = MixSpec::homogeneous("leela_r", 1, 1);
        assert_ne!(
            cache_key(&cfg, &mix, spec_n(1)),
            cache_key(&cfg, &mix, spec_n(2))
        );
    }

    #[test]
    fn fnv128_spreads() {
        let (a1, a2) = fnv128(b"hello");
        let (b1, b2) = fnv128(b"hellp");
        assert!(a1 != b1 || a2 != b2);
    }

    #[test]
    fn panicking_run_is_quarantined_and_plan_completes() {
        // The acceptance scenario: one plan entry always panics. The plan
        // must complete the other runs, quarantine the failure, report it
        // in the JSON manifest, and return a nonzero failure count — all
        // without aborting the process.
        let dir = tmpdir("quarantine");
        let cache = CachedSim::open(&dir).unwrap();
        let spec = spec_n(5_000);
        let plan = fake_plan(&["leela_r", "boom", "mcf_r"]);
        let summary = execute_plan_with(
            &cache,
            &plan,
            spec,
            2,
            "faulty",
            ExecOptions::with_retries(1),
            |cfg, mix, spec| {
                if mix.benchmarks[0] == "boom" {
                    panic!("injected fault");
                }
                fake_run(cfg, mix, spec)
            },
        );
        assert_eq!(summary.total, 3);
        assert_eq!(summary.simulated, 2);
        assert_eq!(summary.failed, 1, "the panicking run must be counted");
        assert_eq!(summary.retries, 1, "one retry before quarantine");
        assert!(cache.lookup(&plan[0].0, &plan[0].1, spec).is_some());
        assert!(cache.lookup(&plan[2].0, &plan[2].1, spec).is_some());
        assert!(cache.lookup(&plan[1].0, &plan[1].1, spec).is_none());
        assert_eq!(cache.quarantine_count(), 1);

        // The quarantine record carries the panic message.
        let qdir = cache.quarantine_dir();
        let entry = std::fs::read_dir(&qdir).unwrap().next().unwrap().unwrap();
        let record: QuarantineRecord =
            serde_json::from_str(&std::fs::read_to_string(entry.path()).unwrap()).unwrap();
        assert!(record.error.contains("injected fault"), "{}", record.error);
        assert_eq!(record.attempts, 2);

        // And the manifest reports the failure.
        let manifest = RunManifest::load(summary.manifest_path.expect("manifest written")).unwrap();
        assert_eq!(manifest.failed, 1);
        assert_eq!(manifest.failed_keys.len(), 1);
        assert!(manifest.worker_utilization >= 0.0 && manifest.worker_utilization <= 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_failure_is_retried_to_success() {
        let dir = tmpdir("retry");
        let cache = CachedSim::open(&dir).unwrap();
        let spec = spec_n(5_000);
        let plan = fake_plan(&["leela_r", "lbm_r"]);
        let failed_once = Mutex::new(std::collections::HashSet::new());
        let summary = execute_plan_with(
            &cache,
            &plan,
            spec,
            1,
            "flaky",
            ExecOptions::with_retries(1),
            move |cfg, mix, spec| {
                if failed_once.lock().insert(mix.benchmarks[0].clone()) {
                    return Err(SimError::Panicked("transient".to_owned()));
                }
                fake_run(cfg, mix, spec)
            },
        );
        assert_eq!(summary.simulated, 2);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.retries, 2, "each run failed exactly once");
        assert_eq!(cache.quarantine_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_same_key_inserts_never_tear() {
        // Regression: all writers used to share `<hash>.tmp`, so two
        // threads inserting the same key could interleave writes and
        // publish a torn file. Unique per-writer temp names make the
        // rename atomic regardless of interleaving.
        let dir = tmpdir("race");
        let cache = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let mix = MixSpec::homogeneous("leela_r", 1, 1);
        let spec = spec_n(5_000);
        let result = fake_run(&cfg, &mix, spec).unwrap();
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    for _ in 0..25 {
                        cache.insert(&cfg, &mix, spec, &result);
                    }
                });
            }
        })
        .unwrap();
        // No temp litter, and a fresh instance reads back intact JSON.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let fresh = CachedSim::open(&dir).unwrap();
        let back = fresh.lookup(&cfg, &mix, spec).expect("intact entry");
        assert_eq!(back.elapsed_cycles, result.elapsed_cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_disk_degrades_to_memory_only() {
        let dir = tmpdir("degrade");
        let cache = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let mix = MixSpec::homogeneous("leela_r", 1, 1);
        let spec = spec_n(5_000);
        // Replace the cache directory with a plain file: every disk write
        // now fails, even for root.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"not a directory").unwrap();
        let result = fake_run(&cfg, &mix, spec).unwrap();
        cache.insert(&cfg, &mix, spec, &result);
        assert!(!cache.disk_available(), "first failure must degrade");
        // The memory layer still serves, and further inserts are silent.
        assert!(cache.lookup(&cfg, &mix, spec).is_some());
        cache.insert(&cfg, &MixSpec::homogeneous("lbm_r", 1, 1), spec, &result);
        assert_eq!(cache.memory_len(), 2);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn single_and_multi_threaded_plans_cache_identically() {
        // Determinism: executing the same plan with 1 thread and with N
        // threads must produce byte-identical cache files (scheduling must
        // not leak into results).
        let spec = spec_n(5_000);
        let plan = fake_plan(&["leela_r", "lbm_r", "mcf_r", "gcc_r", "x264_r", "nab_r"]);
        let snapshot = |tag: &str, threads: usize| {
            let dir = tmpdir(tag);
            let cache = CachedSim::open(&dir).unwrap();
            let summary = execute_plan_with(
                &cache,
                &plan,
                spec,
                threads,
                tag,
                ExecOptions::with_retries(0),
                fake_run,
            );
            assert_eq!(summary.failed, 0);
            let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
                .unwrap()
                .flatten()
                .filter(|e| e.path().is_file())
                .map(|e| {
                    (
                        e.file_name().to_string_lossy().into_owned(),
                        std::fs::read(e.path()).unwrap(),
                    )
                })
                .collect();
            files.sort();
            let _ = std::fs::remove_dir_all(&dir);
            files
        };
        let serial = snapshot("det-serial", 1);
        let parallel = snapshot("det-parallel", 4);
        assert_eq!(serial.len(), plan.len());
        assert_eq!(
            serial, parallel,
            "cache contents must not depend on thread count"
        );
    }

    #[test]
    fn hung_run_is_quarantined_within_deadline_and_plan_completes() {
        // The watchdog acceptance scenario: one entry stalls forever. The
        // executor must abandon it at the deadline, quarantine it as hung
        // without retrying (a hang is not transient), and finish the rest
        // of the plan promptly.
        let dir = tmpdir("hung");
        let cache = CachedSim::open(&dir).unwrap();
        let spec = spec_n(5_000);
        let plan = fake_plan(&["leela_r", "stall", "mcf_r"]);
        let opts = ExecOptions {
            retries: 3,
            run_timeout: Some(Duration::from_millis(150)),
        };
        let started = Instant::now();
        let summary = execute_plan_with(&cache, &plan, spec, 2, "hangs", opts, |cfg, mix, spec| {
            if mix.benchmarks[0] == "stall" {
                std::thread::sleep(Duration::from_secs(600));
            }
            fake_run(cfg, mix, spec)
        });
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "the watchdog must not wait out the stall"
        );
        assert_eq!(summary.simulated, 2);
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.retries, 0, "hung runs are not retried");
        assert_eq!(cache.quarantine_count(), 1);
        let qdir = cache.quarantine_dir();
        let entry = std::fs::read_dir(&qdir).unwrap().next().unwrap().unwrap();
        let record: QuarantineRecord =
            serde_json::from_str(&std::fs::read_to_string(entry.path()).unwrap()).unwrap();
        assert!(record.error.contains("hung"), "{}", record.error);
        assert!(record.error.contains("150ms"), "{}", record.error);
        assert_eq!(record.attempts, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_leaves_healthy_runs_untouched() {
        // With a generous deadline every run completes on the detached
        // attempt thread and results flow back unchanged.
        let dir = tmpdir("healthy-watchdog");
        let cache = CachedSim::open(&dir).unwrap();
        let spec = spec_n(5_000);
        let plan = fake_plan(&["leela_r", "lbm_r"]);
        let opts = ExecOptions {
            retries: 0,
            run_timeout: Some(Duration::from_secs(60)),
        };
        let summary = execute_plan_with(&cache, &plan, spec, 2, "healthy", opts, fake_run);
        assert_eq!(summary.simulated, 2);
        assert_eq!(summary.failed, 0);
        for (c, m) in &plan {
            assert!(cache.lookup(c, m, spec).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_a_counted_miss_and_resimulated() {
        let dir = tmpdir("corrupt");
        let cache = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let mix = MixSpec::homogeneous("leela_r", 1, 1);
        let spec = spec_n(5_000);
        let result = fake_run(&cfg, &mix, spec).unwrap();
        cache.insert(&cfg, &mix, spec, &result);

        // Flip a byte inside the stored result payload.
        let path = dir.join(format!(
            "{}.json",
            key_hash_hex(&cache_key(&cfg, &mix, spec))
        ));
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = bytes.len() - 10;
        bytes[pos] ^= 0x5a;
        std::fs::write(&path, &bytes).unwrap();

        // A fresh instance (no memory copy) must reject the entry...
        let fresh = CachedSim::open(&dir).unwrap();
        assert!(
            fresh.lookup(&cfg, &mix, spec).is_none(),
            "corrupt entry must miss"
        );
        // ...count it in the global registry...
        let reg: serde_json::Value = serde_json::from_str(&sms_obs::registry().to_json()).unwrap();
        let total: f64 = reg["sms_cache_corrupt_total"]["samples"]
            .as_array()
            .expect("corrupt counter family exists")
            .iter()
            .map(|s| s["value"].as_f64().unwrap())
            .sum();
        assert!(total >= 1.0, "corruption must be counted, got {total}");
        // ...and a fresh insert repairs the file in place.
        fresh.insert(&cfg, &mix, spec, &result);
        let repaired = CachedSim::open(&dir).unwrap();
        let back = repaired
            .lookup(&cfg, &mix, spec)
            .expect("repaired entry loads");
        assert_eq!(back.elapsed_cycles, result.elapsed_cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_cache_entries_without_checksum_still_load() {
        let dir = tmpdir("v1");
        let cache = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let mix = MixSpec::homogeneous("leela_r", 1, 1);
        let spec = spec_n(5_000);
        let result = fake_run(&cfg, &mix, spec).unwrap();
        cache.insert(&cfg, &mix, spec, &result);

        // Strip the v2 fields, emulating a pre-checksum cache file.
        let path = dir.join(format!(
            "{}.json",
            key_hash_hex(&cache_key(&cfg, &mix, spec))
        ));
        let mut v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("schema_version");
        obj.remove("checksum");
        std::fs::write(&path, serde_json::to_string(&v).unwrap()).unwrap();

        let fresh = CachedSim::open(&dir).unwrap();
        let back = fresh.lookup(&cfg, &mix, spec).expect("v1 entry loads");
        assert_eq!(back.elapsed_cycles, result.elapsed_cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn success_absolves_an_earlier_quarantine() {
        // A key quarantined by a previous (faulted) invocation must be
        // released when a later invocation simulates it successfully —
        // otherwise a resumed sweep could never converge to the fault-free
        // final state.
        let dir = tmpdir("absolve");
        let cache = CachedSim::open(&dir).unwrap();
        let spec = spec_n(5_000);
        let plan = fake_plan(&["leela_r"]);
        let (cfg, mix) = &plan[0];
        cache.quarantine(
            cfg,
            mix,
            spec,
            &SimError::Panicked("earlier crash".into()),
            2,
        );
        assert_eq!(cache.quarantine_count(), 1);
        let summary = execute_plan_with(
            &cache,
            &plan,
            spec,
            1,
            "absolve",
            ExecOptions::with_retries(0),
            fake_run,
        );
        assert_eq!(summary.simulated, 1);
        assert_eq!(cache.quarantine_count(), 0, "success must clear the record");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn executor_journals_runs_and_completion() {
        let dir = tmpdir("journal");
        let cache = CachedSim::open(&dir).unwrap();
        let spec = spec_n(5_000);
        let plan = fake_plan(&["leela_r", "boom", "mcf_r"]);
        let summary = execute_plan_with(
            &cache,
            &plan,
            spec,
            1,
            "journaled",
            ExecOptions::with_retries(0),
            |cfg, mix, spec| {
                if mix.benchmarks[0] == "boom" {
                    return Err(SimError::Panicked("boom".to_owned()));
                }
                fake_run(cfg, mix, spec)
            },
        );
        assert_eq!(summary.failed, 1);
        let replayed = crate::journal::replay(cache.dir(), "journaled").unwrap();
        assert_eq!(replayed.completed.len(), 2);
        assert_eq!(replayed.quarantined.len(), 1);
        assert!(replayed.done, "a finished invocation must journal `done`");
        assert_eq!(replayed.torn_lines, 0);
        assert!(replayed.header.is_none(), "bare executor writes no header");

        // Re-running with a healthy run function re-simulates the failed
        // entry; the journal's latest state absorbs the success.
        let again = execute_plan_with(
            &cache,
            &plan,
            spec,
            1,
            "journaled",
            ExecOptions::with_retries(0),
            fake_run,
        );
        assert_eq!(again.failed, 0);
        let replayed = crate::journal::replay(cache.dir(), "journaled").unwrap();
        assert_eq!(replayed.completed.len(), 3);
        assert!(replayed.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
