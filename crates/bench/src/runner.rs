//! Simulation execution with a persistent on-disk result cache and a
//! multi-threaded plan executor.
//!
//! Every distinct `(machine config, workload mix, run spec)` triple is
//! keyed by a hash of its canonical JSON encoding; results are stored as
//! JSON files under the cache directory, so re-running an experiment
//! binary only simulates what is missing. The stored key string is
//! verified on load, ruling out silent hash collisions.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sms_core::pipeline::{DirectSim, Simulate};
use sms_sim::config::SystemConfig;
use sms_sim::stats::SimResult;
use sms_sim::system::RunSpec;
use sms_workloads::mix::MixSpec;

/// 128-bit FNV-1a over a byte string.
fn fnv128(bytes: &[u8]) -> (u64, u64) {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x6c62_272e_07bb_0142;
    for &b in bytes {
        h1 ^= u64::from(b);
        h1 = h1.wrapping_mul(0x1000_0000_01b3);
        h2 ^= u64::from(b.rotate_left(3));
        h2 = h2.wrapping_mul(0x1000_0000_01b3);
    }
    (h1, h2)
}

/// Fingerprint of the workload-suite definition, so cached results are
/// invalidated when benchmark profiles change (a `MixSpec` holds only
/// benchmark *names*).
fn suite_fingerprint() -> u64 {
    use std::sync::OnceLock;
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        let json = serde_json::to_string(&sms_workloads::spec::suite()).expect("suite serializes");
        let (h1, h2) = fnv128(json.as_bytes());
        h1 ^ h2.rotate_left(17)
    })
}

/// Canonical cache key for one simulation request.
pub fn cache_key(cfg: &SystemConfig, mix: &MixSpec, spec: RunSpec) -> String {
    // serde_json serialization of these types is deterministic (struct
    // field order), so the JSON string is a canonical encoding; the suite
    // fingerprint ties the key to the workload definitions behind the
    // benchmark names.
    format!(
        "v{:016x}|{}|{}|{}",
        suite_fingerprint(),
        serde_json::to_string(cfg).expect("config serializes"),
        serde_json::to_string(mix).expect("mix serializes"),
        serde_json::to_string(&spec).expect("spec serializes"),
    )
}

#[derive(Debug, Serialize, Deserialize)]
struct CacheEntry {
    key: String,
    result: SimResult,
}

/// A caching simulator: checks the in-memory map, then disk, then runs.
#[derive(Debug, Clone)]
pub struct CachedSim {
    dir: PathBuf,
    memory: Arc<Mutex<std::collections::HashMap<String, SimResult>>>,
}

impl CachedSim {
    /// Open (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            dir: dir.as_ref().to_owned(),
            memory: Arc::new(Mutex::new(std::collections::HashMap::new())),
        })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        let (h1, h2) = fnv128(key.as_bytes());
        self.dir.join(format!("{h1:016x}{h2:016x}.json"))
    }

    /// Look up a result without simulating.
    pub fn lookup(&self, cfg: &SystemConfig, mix: &MixSpec, spec: RunSpec) -> Option<SimResult> {
        let key = cache_key(cfg, mix, spec);
        if let Some(hit) = self.memory.lock().get(&key) {
            return Some(hit.clone());
        }
        let path = self.path_for(&key);
        let data = std::fs::read_to_string(path).ok()?;
        let entry: CacheEntry = serde_json::from_str(&data).ok()?;
        if entry.key != key {
            return None; // hash collision or stale file: treat as miss
        }
        self.memory.lock().insert(key, entry.result.clone());
        Some(entry.result)
    }

    /// Insert a freshly computed result.
    pub fn insert(&self, cfg: &SystemConfig, mix: &MixSpec, spec: RunSpec, result: &SimResult) {
        let key = cache_key(cfg, mix, spec);
        let entry = CacheEntry {
            key: key.clone(),
            result: result.clone(),
        };
        let path = self.path_for(&key);
        // Write via a temp file so interrupted runs never leave torn JSON.
        let tmp = path.with_extension("tmp");
        if serde_json::to_writer(
            std::fs::File::create(&tmp).expect("cache dir writable"),
            &entry,
        )
        .is_ok()
        {
            let _ = std::fs::rename(&tmp, &path);
        }
        self.memory.lock().insert(key, result.clone());
    }

    /// Number of entries currently in the in-memory layer.
    pub fn memory_len(&self) -> usize {
        self.memory.lock().len()
    }
}

impl Simulate for CachedSim {
    fn run_mix(&mut self, cfg: &SystemConfig, mix: &MixSpec, spec: RunSpec) -> SimResult {
        if let Some(hit) = self.lookup(cfg, mix, spec) {
            return hit;
        }
        let result = DirectSim.run_mix(cfg, mix, spec);
        self.insert(cfg, mix, spec, &result);
        result
    }
}

/// Execute a run plan into the cache, using up to `threads` worker
/// threads (capped by available parallelism); already-cached entries are
/// skipped. Progress is reported on stderr via `label`.
pub fn execute_plan(
    cache: &CachedSim,
    plan: &[(SystemConfig, MixSpec)],
    spec: RunSpec,
    threads: usize,
    label: &str,
) {
    let todo: Vec<&(SystemConfig, MixSpec)> = plan
        .iter()
        .filter(|(cfg, mix)| cache.lookup(cfg, mix, spec).is_none())
        .collect();
    if todo.is_empty() {
        eprintln!("[{label}] all {} runs cached", plan.len());
        return;
    }
    eprintln!(
        "[{label}] {} of {} runs to simulate",
        todo.len(),
        plan.len()
    );
    let workers = threads
        .min(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
        .max(1);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= todo.len() {
                    break;
                }
                let (cfg, mix) = todo[i];
                let result = DirectSim.run_mix(cfg, mix, spec);
                cache.insert(cfg, mix, spec, &result);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if d % 10 == 0 || d == todo.len() {
                    eprintln!("[{label}] {d}/{} done", todo.len());
                }
            });
        }
    })
    .expect("worker threads must not panic");
}

#[cfg(test)]
mod tests {
    use super::*;
    use sms_sim::system::RunSpec;

    fn tiny_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = 1;
        cfg.llc.num_slices = 1;
        cfg.noc.mesh_cols = 1;
        cfg.noc.mesh_rows = 1;
        cfg.dram.num_controllers = 1;
        cfg
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sms-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn cache_round_trip_and_hit() {
        let dir = tmpdir("rt");
        let mut sim = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let mix = MixSpec::homogeneous("leela_r", 1, 1);
        let spec = RunSpec {
            warmup_instructions: 1000,
            measure_instructions: 20_000,
        };
        assert!(sim.lookup(&cfg, &mix, spec).is_none());
        let a = sim.run_mix(&cfg, &mix, spec);
        let b = sim.lookup(&cfg, &mix, spec).expect("cached now");
        assert_eq!(a.cores[0].cycles, b.cores[0].cycles);

        // A fresh instance must hit the on-disk layer.
        let fresh = CachedSim::open(&dir).unwrap();
        let c = fresh.lookup(&cfg, &mix, spec).expect("disk hit");
        assert_eq!(a.cores[0].cycles, c.cores[0].cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_requests_get_distinct_entries() {
        let dir = tmpdir("distinct");
        let mut sim = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let spec = RunSpec {
            warmup_instructions: 0,
            measure_instructions: 10_000,
        };
        let a = sim.run_mix(&cfg, &MixSpec::homogeneous("leela_r", 1, 1), spec);
        let b = sim.run_mix(&cfg, &MixSpec::homogeneous("lbm_r", 1, 1), spec);
        assert_ne!(a.cores[0].label, b.cores[0].label);
        assert_eq!(sim.memory_len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn execute_plan_fills_cache() {
        let dir = tmpdir("plan");
        let cache = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let spec = RunSpec {
            warmup_instructions: 0,
            measure_instructions: 5_000,
        };
        let plan: Vec<(SystemConfig, MixSpec)> = ["leela_r", "lbm_r", "mcf_r"]
            .iter()
            .map(|n| (cfg.clone(), MixSpec::homogeneous(n, 1, 7)))
            .collect();
        execute_plan(&cache, &plan, spec, 4, "test");
        for (c, m) in &plan {
            assert!(cache.lookup(c, m, spec).is_some());
        }
        // Second execution is a no-op (covered entries skipped).
        execute_plan(&cache, &plan, spec, 4, "test");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_distinguishes_spec() {
        let cfg = tiny_cfg();
        let mix = MixSpec::homogeneous("leela_r", 1, 1);
        let s1 = RunSpec {
            warmup_instructions: 0,
            measure_instructions: 1,
        };
        let s2 = RunSpec {
            warmup_instructions: 0,
            measure_instructions: 2,
        };
        assert_ne!(cache_key(&cfg, &mix, s1), cache_key(&cfg, &mix, s2));
    }

    #[test]
    fn fnv128_spreads() {
        let (a1, a2) = fnv128(b"hello");
        let (b1, b2) = fnv128(b"hellp");
        assert!(a1 != b1 || a2 != b2);
    }
}
