//! Run every experiment in sequence, printing each report and writing it
//! under `results/figures/`.
//!
//! Usage: `cargo run --release -p sms-bench --bin run_experiments [ids...]`
//! with optional figure ids (e.g. `fig4 fig5`) to run a subset.

use sms_bench::ctx::Ctx;
use sms_bench::experiments as ex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);
    let mut ctx = Ctx::from_env();
    eprintln!(
        "budget: {} instructions, threads: {}, results: {}",
        ctx.cfg.spec.measure_instructions,
        ctx.threads,
        ctx.results_dir.display()
    );

    if want("table1") {
        ex::table1::run(&ctx).emit(&ctx);
    }
    if want("fig3") {
        ex::fig3::run(&mut ctx).emit(&ctx);
    }
    if want("fig4") {
        ex::fig4::run(&mut ctx).emit(&ctx);
    }
    if want("fig5") {
        ex::fig5::run(&mut ctx).emit(&ctx);
    }
    if want("fig6") {
        ex::fig6::run(&mut ctx).emit(&ctx);
    }
    if want("fig7") {
        ex::fig7::run(&mut ctx).emit(&ctx);
    }
    if want("fig8") {
        ex::fig8::run(&mut ctx).emit(&ctx);
    }
    if want("fig9") {
        ex::fig9::run(&mut ctx).emit(&ctx);
    }
    if want("fig10") {
        ex::fig10::run(&mut ctx).emit(&ctx);
    }
    if want("fig11") {
        ex::fig11::run(&mut ctx).emit(&ctx);
    }
    if want("fig12") {
        ex::fig12::run(&mut ctx).emit(&ctx);
    }
    if want("ext_64core") {
        ex::ext_64core::run(&mut ctx).emit(&ctx);
    }
    if want("ext_multithreaded") {
        ex::ext_multithreaded::run(&mut ctx).emit(&ctx);
    }
    if want("ablation_quantum") {
        ex::ablations::quantum(&mut ctx).emit(&ctx);
    }
    if want("ablation_svr") {
        ex::ablations::svr(&mut ctx).emit(&ctx);
    }
    if want("ablation_replacement") {
        ex::ablations::replacement(&mut ctx).emit(&ctx);
    }
    if want("ablation_rowbuffer") {
        ex::ablations::row_buffer(&mut ctx).emit(&ctx);
    }
    if want("ablation_krr") {
        ex::ablations::krr(&mut ctx).emit(&ctx);
    }
}
