//! Run every experiment in sequence, printing each report and writing it
//! under `results/figures/`.
//!
//! Usage: `cargo run --release -p sms-bench --bin run_experiments [ids...]`
//! with optional figure ids (e.g. `fig4 fig5`) to run a subset.
//!
//! A failing experiment does not abort the batch: its error is reported
//! and the remaining experiments still run. The process exits nonzero if
//! any experiment failed.

use sms_bench::ctx::{Ctx, Report};
use sms_bench::experiments as ex;
use sms_sim::error::SimError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);
    let mut ctx = Ctx::from_env();
    eprintln!(
        "budget: {} instructions, threads: {}, results: {}",
        ctx.cfg.spec.measure_instructions,
        ctx.threads,
        ctx.results_dir.display()
    );

    let mut failures: Vec<(&str, SimError)> = Vec::new();

    if want("table1") {
        ex::table1::run(&ctx).emit(&ctx);
    }

    {
        let mut attempt = |id: &'static str, run: fn(&mut Ctx) -> Result<Report, SimError>| {
            if !want(id) {
                return;
            }
            match run(&mut ctx) {
                Ok(report) => report.emit(&ctx),
                Err(e) => {
                    eprintln!("experiment {id} failed: {e}");
                    failures.push((id, e));
                }
            }
        };

        attempt("fig3", ex::fig3::run);
        attempt("fig4", ex::fig4::run);
        attempt("fig5", ex::fig5::run);
        attempt("fig6", ex::fig6::run);
        attempt("fig7", ex::fig7::run);
        attempt("fig8", ex::fig8::run);
        attempt("fig9", ex::fig9::run);
        attempt("fig10", ex::fig10::run);
        attempt("fig11", ex::fig11::run);
        attempt("fig12", ex::fig12::run);
        attempt("ext_64core", ex::ext_64core::run);
        attempt("ext_multithreaded", ex::ext_multithreaded::run);
        attempt("ablation_quantum", ex::ablations::quantum);
        attempt("ablation_svr", ex::ablations::svr);
        attempt("ablation_replacement", ex::ablations::replacement);
        attempt("ablation_rowbuffer", ex::ablations::row_buffer);
        attempt("ablation_krr", ex::ablations::krr);
    }

    if !failures.is_empty() {
        eprintln!("{} experiment(s) failed:", failures.len());
        for (id, e) in &failures {
            eprintln!("  {id}: {e}");
        }
        std::process::exit(1);
    }
}
