//! Cache integrity checking and repair (`sms fsck`).
//!
//! [`fsck`] walks every artifact class under a result-cache directory —
//! cache entries, leftover temp files, quarantine records, run manifests,
//! timeline files, and plan journals — verifies each one (JSON shape, key
//! against file stem, payload checksum), and removes what cannot be
//! trusted. Cache entries are cheap to regenerate (`sms resume`
//! re-simulates evicted keys), so eviction is always safe; journals are
//! *repaired* instead (bad lines dropped, good lines kept) because they
//! carry resume state. Valid entries are never touched.

use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::journal::{journal_dir, JournalLine};
use crate::runner::{key_hash_hex, result_checksum, CacheEntry};
use crate::telemetry::RunManifest;
use crate::timeline::{timelines_dir, TimelineFile};

/// What kind of damage a defective file exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum DefectKind {
    /// The file ends mid-document (empty or cut off), the signature of a
    /// kill during a non-atomic write.
    Truncated,
    /// The file is complete but not parseable as its expected type.
    Torn,
    /// The stored payload checksum does not match the payload.
    Checksum,
    /// The stored key does not hash to the file's stem.
    StaleKey,
    /// A structurally valid file whose contents fail validation.
    BadRecord,
    /// A `.tmp` file orphaned by an interrupted atomic write.
    Leftover,
}

impl std::fmt::Display for DefectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Truncated => "truncated",
            Self::Torn => "torn",
            Self::Checksum => "checksum",
            Self::StaleKey => "stale_key",
            Self::BadRecord => "bad_record",
            Self::Leftover => "leftover",
        };
        f.write_str(s)
    }
}

/// What fsck did about a defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum FsckAction {
    /// The file was removed (its contents are regenerable).
    Evicted,
    /// The file was rewritten with the damaged parts dropped.
    Repaired,
}

/// One defective file found by [`fsck`].
#[derive(Debug, Clone, Serialize)]
pub struct Defect {
    /// The offending file.
    pub path: PathBuf,
    /// Damage classification.
    pub kind: DefectKind,
    /// Human-readable detail (parse error, checksum values, …).
    pub detail: String,
    /// What was done about it.
    pub action: FsckAction,
}

/// The result of one [`fsck`] pass.
#[derive(Debug, Clone, Serialize)]
pub struct FsckReport {
    /// Files examined.
    pub scanned: usize,
    /// Files that verified clean.
    pub valid: usize,
    /// Defective files, in scan order (deterministic: paths are sorted).
    pub defects: Vec<Defect>,
}

impl FsckReport {
    /// Whether the cache verified fully clean.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty()
    }

    /// Human-readable rendering (CLI `sms fsck`).
    pub fn render(&self) -> String {
        let mut out = format!(
            "fsck: {} file(s) scanned, {} valid, {} defect(s)\n",
            self.scanned,
            self.valid,
            self.defects.len()
        );
        for d in &self.defects {
            out.push_str(&format!(
                "  {} {} ({}): {}\n",
                match d.action {
                    FsckAction::Evicted => "evicted",
                    FsckAction::Repaired => "repaired",
                },
                d.path.display(),
                d.kind,
                d.detail,
            ));
        }
        out
    }
}

/// Sorted `.json`-like files directly under `dir` with the given
/// extension; an absent directory is an empty list.
fn sorted_files(dir: &Path, ext: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == ext))
            .collect(),
        Err(_) => Vec::new(),
    };
    files.sort();
    files
}

fn classify_parse_error(e: &serde_json::Error) -> DefectKind {
    if e.is_eof() {
        DefectKind::Truncated
    } else {
        DefectKind::Torn
    }
}

struct Scan {
    scanned: usize,
    valid: usize,
    defects: Vec<Defect>,
}

impl Scan {
    fn evict(&mut self, path: &Path, kind: DefectKind, detail: String) {
        let _ = std::fs::remove_file(path);
        self.defects.push(Defect {
            path: path.to_owned(),
            kind,
            detail,
            action: FsckAction::Evicted,
        });
    }
}

/// Verify one cache entry file; returns the defect, if any.
fn check_cache_entry(path: &Path) -> Result<(), (DefectKind, String)> {
    let data =
        std::fs::read(path).map_err(|e| (DefectKind::Truncated, format!("unreadable: {e}")))?;
    let entry: CacheEntry =
        serde_json::from_slice(&data).map_err(|e| (classify_parse_error(&e), e.to_string()))?;
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    let expected = key_hash_hex(&entry.key);
    if stem != expected {
        return Err((
            DefectKind::StaleKey,
            format!("stored key hashes to {expected}, file stem is {stem}"),
        ));
    }
    if let Some(stored) = &entry.checksum {
        let actual = result_checksum(&entry.result);
        if *stored != actual {
            return Err((
                DefectKind::Checksum,
                format!("stored {stored}, payload hashes to {actual}"),
            ));
        }
    }
    Ok(())
}

/// Verify one quarantine record; returns the defect, if any.
fn check_quarantine(path: &Path) -> Result<(), (DefectKind, String)> {
    let data =
        std::fs::read(path).map_err(|e| (DefectKind::Truncated, format!("unreadable: {e}")))?;
    let record: crate::runner::QuarantineRecord =
        serde_json::from_slice(&data).map_err(|e| (classify_parse_error(&e), e.to_string()))?;
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    let expected = key_hash_hex(&record.key);
    if stem != expected {
        return Err((
            DefectKind::StaleKey,
            format!("quarantined key hashes to {expected}, file stem is {stem}"),
        ));
    }
    Ok(())
}

/// Repair one journal file in place: keep parseable lines, drop the rest.
/// Returns `Some((dropped, detail))` when a rewrite happened.
fn repair_journal(path: &Path) -> std::io::Result<Option<(usize, String)>> {
    let text = std::fs::read_to_string(path)?;
    let mut good: Vec<&str> = Vec::new();
    let mut dropped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match serde_json::from_str::<JournalLine>(line) {
            Ok(_) => good.push(line),
            Err(_) => dropped += 1,
        }
    }
    if dropped == 0 {
        return Ok(None);
    }
    let mut rewritten = good.join("\n");
    if !rewritten.is_empty() {
        rewritten.push('\n');
    }
    let tmp = path.with_extension("jsonl.tmp");
    std::fs::write(&tmp, rewritten)?;
    std::fs::rename(&tmp, path)?;
    Ok(Some((
        dropped,
        format!("dropped {dropped} unparseable line(s), kept {}", good.len()),
    )))
}

/// Verify every artifact under the cache directory, evicting what cannot
/// be trusted and repairing journals. Valid files are never modified.
///
/// # Errors
///
/// Returns an I/O error when `cache_dir` itself cannot be read; defects
/// in individual files are reported, not raised.
pub fn fsck(cache_dir: &Path) -> std::io::Result<FsckReport> {
    // An fsck of a cache that was never created is vacuously clean only
    // if the directory exists; a missing root is the caller's bug.
    std::fs::metadata(cache_dir)?;
    let mut scan = Scan {
        scanned: 0,
        valid: 0,
        defects: Vec::new(),
    };

    // Top-level cache entries.
    for path in sorted_files(cache_dir, "json") {
        scan.scanned += 1;
        match check_cache_entry(&path) {
            Ok(()) => scan.valid += 1,
            Err((kind, detail)) => scan.evict(&path, kind, detail),
        }
    }
    // Orphaned temp files from interrupted atomic writes.
    for path in sorted_files(cache_dir, "tmp") {
        scan.scanned += 1;
        scan.evict(
            &path,
            DefectKind::Leftover,
            "orphaned temp file from an interrupted write".to_owned(),
        );
    }
    // Quarantine records.
    for path in sorted_files(&cache_dir.join("quarantine"), "json") {
        scan.scanned += 1;
        match check_quarantine(&path) {
            Ok(()) => scan.valid += 1,
            Err((kind, detail)) => scan.evict(&path, kind, detail),
        }
    }
    // Run manifests.
    for path in sorted_files(&cache_dir.join("manifests"), "json") {
        scan.scanned += 1;
        match RunManifest::load(&path) {
            Ok(_) => scan.valid += 1,
            Err(e) => scan.evict(&path, DefectKind::BadRecord, e.to_string()),
        }
    }
    // Timeline files.
    for path in sorted_files(&timelines_dir(cache_dir), "json") {
        scan.scanned += 1;
        match TimelineFile::load(&path) {
            Ok(_) => scan.valid += 1,
            Err(e) => scan.evict(&path, DefectKind::BadRecord, e.to_string()),
        }
    }
    // Plan journals: repaired, not evicted — they carry resume state.
    for path in sorted_files(&journal_dir(cache_dir), "jsonl") {
        scan.scanned += 1;
        match repair_journal(&path) {
            Ok(None) => scan.valid += 1,
            Ok(Some((_, detail))) => scan.defects.push(Defect {
                path: path.clone(),
                kind: DefectKind::Torn,
                detail,
                action: FsckAction::Repaired,
            }),
            Err(e) => scan.evict(&path, DefectKind::Truncated, format!("unreadable: {e}")),
        }
    }

    Ok(FsckReport {
        scanned: scan.scanned,
        valid: scan.valid,
        defects: scan.defects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{JournalLine, PlanJournal};
    use crate::runner::{cache_key, CachedSim};
    use crate::telemetry::RunStatus;
    use sms_sim::config::SystemConfig;
    use sms_sim::stats::SimResult;
    use sms_sim::system::RunSpec;
    use sms_workloads::mix::MixSpec;

    fn tiny_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = 1;
        cfg.llc.num_slices = 1;
        cfg.noc.mesh_cols = 1;
        cfg.noc.mesh_rows = 1;
        cfg.dram.num_controllers = 1;
        cfg
    }

    fn fake_result(seed: u64) -> SimResult {
        SimResult {
            cores: vec![],
            elapsed_cycles: seed + 1,
            total_dram_bytes: seed * 64,
            total_bandwidth_gbps: 1.0,
            noc_transfers: seed,
            noc_crossings: seed / 2,
            llc_accesses: seed * 3,
            llc_hits: seed,
            host_seconds: 0.0,
        }
    }

    fn spec() -> RunSpec {
        RunSpec {
            warmup_instructions: 0,
            measure_instructions: 5_000,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sms-fsck-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Seed a cache with `n` valid entries, returning their paths.
    fn seed_cache(dir: &Path, n: u64) -> Vec<PathBuf> {
        let cache = CachedSim::open(dir).unwrap();
        let cfg = tiny_cfg();
        (0..n)
            .map(|i| {
                let mix = MixSpec::homogeneous("leela_r", 1, i);
                cache.insert(&cfg, &mix, spec(), &fake_result(i));
                dir.join(format!(
                    "{}.json",
                    key_hash_hex(&cache_key(&cfg, &mix, spec()))
                ))
            })
            .collect()
    }

    #[test]
    fn clean_cache_reports_clean() {
        let dir = tmpdir("clean");
        seed_cache(&dir, 3);
        let report = fsck(&dir).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.scanned, 3);
        assert_eq!(report.valid, 3);
        assert!(report.render().contains("0 defect(s)"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_cache_dir_is_an_error() {
        let dir = tmpdir("gone");
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(fsck(&dir).is_err());
    }

    #[test]
    fn each_damage_class_is_detected_and_only_the_damaged_file_evicted() {
        // The satellite scenario: torn JSON, truncated file, bit-flipped
        // payload, and stale-key file side by side with valid entries.
        // Each must be detected, classified, and evicted without touching
        // the valid ones.
        let dir = tmpdir("classes");
        let paths = seed_cache(&dir, 6);

        // [0] torn: chop the tail mid-document => Truncated (EOF).
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        std::fs::write(&paths[0], &text[..text.len() / 2]).unwrap();
        // [1] empty file => Truncated.
        std::fs::write(&paths[1], b"").unwrap();
        // [2] bit-flip inside the payload => Checksum. Entry seed 2 stores
        // elapsed_cycles 3; flipping bit 2 of the digit ('3' -> '7') keeps
        // the JSON valid, so only the checksum can catch it.
        let text = std::fs::read_to_string(&paths[2]).unwrap();
        assert!(text.contains("\"elapsed_cycles\":3"));
        std::fs::write(
            &paths[2],
            text.replace("\"elapsed_cycles\":3", "\"elapsed_cycles\":7"),
        )
        .unwrap();
        // [3] stale key: copy a valid entry under a wrong stem.
        let stale = dir.join("00000000000000000000000000000000.json");
        std::fs::copy(&paths[4], &stale).unwrap();
        // Plus garbage that parses as JSON but not as an entry => Torn.
        let garbage = dir.join("ffffffffffffffffffffffffffffffff.json");
        std::fs::write(&garbage, b"{\"not\": \"an entry\"}").unwrap();

        let report = fsck(&dir).unwrap();
        assert_eq!(report.scanned, 8);
        assert_eq!(report.valid, 3, "{}", report.render());
        assert_eq!(report.defects.len(), 5, "{}", report.render());
        let kind_of = |p: &Path| {
            report
                .defects
                .iter()
                .find(|d| d.path == p)
                .map(|d| d.kind)
                .unwrap_or_else(|| panic!("no defect recorded for {}", p.display()))
        };
        assert_eq!(kind_of(&paths[0]), DefectKind::Truncated);
        assert_eq!(kind_of(&paths[1]), DefectKind::Truncated);
        assert_eq!(kind_of(&paths[2]), DefectKind::Checksum);
        assert_eq!(kind_of(&stale), DefectKind::StaleKey);
        assert_eq!(kind_of(&garbage), DefectKind::Torn);
        for d in &report.defects {
            assert_eq!(d.action, FsckAction::Evicted);
            assert!(!d.path.exists(), "{} must be evicted", d.path.display());
        }
        // The valid entries survive byte-identical and a second pass is
        // clean.
        assert!(paths[3].exists() && paths[4].exists() && paths[5].exists());
        let again = fsck(&dir).unwrap();
        assert!(again.is_clean());
        assert_eq!(again.scanned, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_tmp_files_are_evicted() {
        let dir = tmpdir("tmpfiles");
        seed_cache(&dir, 1);
        let tmp = dir.join("deadbeef.12345.0.tmp");
        std::fs::write(&tmp, b"{\"half\": ").unwrap();
        let report = fsck(&dir).unwrap();
        assert_eq!(report.defects.len(), 1);
        assert_eq!(report.defects[0].kind, DefectKind::Leftover);
        assert!(!tmp.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_quarantine_and_manifest_and_timeline_records_are_evicted() {
        let dir = tmpdir("records");
        seed_cache(&dir, 1);
        let qdir = dir.join("quarantine");
        std::fs::create_dir_all(&qdir).unwrap();
        std::fs::write(
            qdir.join("notahash.json"),
            b"{\"key\": \"k\", \"mix\": \"m\", \"error\": \"e\", \"attempts\": 1}",
        )
        .unwrap();
        let mdir = dir.join("manifests");
        std::fs::create_dir_all(&mdir).unwrap();
        std::fs::write(mdir.join("bad.json"), b"[1, 2]").unwrap();
        let tdir = dir.join("timelines");
        std::fs::create_dir_all(&tdir).unwrap();
        std::fs::write(tdir.join("bad.json"), b"{}").unwrap();
        let report = fsck(&dir).unwrap();
        assert_eq!(report.defects.len(), 3, "{}", report.render());
        assert!(report
            .defects
            .iter()
            .all(|d| d.action == FsckAction::Evicted));
        assert!(
            report
                .defects
                .iter()
                .any(|d| d.kind == DefectKind::StaleKey),
            "{}",
            report.render()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_is_repaired_in_place() {
        let dir = tmpdir("journal");
        seed_cache(&dir, 1);
        let journal = PlanJournal::open_append(&dir, "sweep").unwrap();
        journal
            .append(&JournalLine::Run {
                key_hash: "aa".into(),
                status: RunStatus::Ok,
            })
            .unwrap();
        let jpath = journal.path().to_owned();
        drop(journal);
        // Tear the tail, as a kill mid-append would.
        let mut text = std::fs::read_to_string(&jpath).unwrap();
        text.push_str("{\"t\":\"run\",\"key");
        std::fs::write(&jpath, text).unwrap();

        let report = fsck(&dir).unwrap();
        assert_eq!(report.defects.len(), 1, "{}", report.render());
        assert_eq!(report.defects[0].action, FsckAction::Repaired);
        assert!(jpath.exists(), "repair must keep the journal");
        let replayed = crate::journal::replay(&dir, "sweep").unwrap();
        assert_eq!(replayed.completed.len(), 1);
        assert_eq!(replayed.torn_lines, 0, "repair must drop the torn line");
        let again = fsck(&dir).unwrap();
        assert!(again.is_clean(), "{}", again.render());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
