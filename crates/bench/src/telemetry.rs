//! Execution telemetry for the plan executor: per-run records, cache and
//! quarantine counters, worker utilization, and a structured JSON
//! run-manifest written next to the result cache.
//!
//! The manifest (one per `execute_plan` label, overwritten on re-run) is
//! the machine-readable account of a sweep: what ran, what was already
//! cached, what failed after retries, and summary statistics (IPC,
//! DRAM/NoC utilization) for every simulated run. The human-facing side is
//! a single progress line on stderr that replaces the executor's former
//! ad-hoc `eprintln!`s.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sms_obs::{Counter, Family, Histogram, Registry};
use sms_sim::config::{SystemConfig, CORE_FREQ_GHZ, LINE_SIZE};
use sms_sim::stats::SimResult;
use sms_workloads::mix::MixSpec;

/// Manifest schema version; bump when the JSON layout changes.
///
/// v2 added `wall_percentiles` and switched emission to sorted-key JSON.
/// v3 added the `registry` metrics snapshot; v2 manifests (no snapshot)
/// still load. v4 added the optional aggregate phase `profile` (present
/// only when the plan ran with profiling enabled); v1–v3 manifests all
/// still load.
pub const MANIFEST_SCHEMA_VERSION: u32 = 4;

/// p50/p95/p99 of a latency or wall-time sample set, in the samples'
/// unit. Shared between the sweep manifest and the `sms-serve` metrics
/// endpoint so both report tail behaviour the same way.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Nearest-rank p50/p95/p99 of `samples` (non-finite values ignored).
///
/// Degenerate inputs are well-defined rather than panicking or producing
/// NaN: an empty slice (or one holding only NaN/infinite values) returns
/// `None`, and a single finite sample yields that value for all three
/// percentiles — nearest-rank never interpolates, so every reported
/// percentile is an actual observed sample.
pub fn percentiles(samples: &[f64]) -> Option<Percentiles> {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let pick = |q: f64| -> f64 {
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    };
    Some(Percentiles {
        p50: pick(0.50),
        p95: pick(0.95),
        p99: pick(0.99),
    })
}

/// Outcome of one plan entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RunStatus {
    /// Simulated successfully (possibly after retries).
    Ok,
    /// Failed every attempt and was quarantined.
    Quarantined,
}

/// Summary statistics of one successful run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Mean per-core IPC.
    pub mean_ipc: f64,
    /// Aggregate achieved DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Achieved DRAM bandwidth over configured DRAM capacity (0..1).
    pub dram_utilization: f64,
    /// Achieved NoC bisection bandwidth over configured capacity (0..1).
    pub noc_utilization: f64,
    /// Cycles simulated in the measured phase.
    pub elapsed_cycles: u64,
}

impl RunSummary {
    /// Extract summary statistics from a run on `cfg`.
    pub fn from_result(cfg: &SystemConfig, r: &SimResult) -> Self {
        let mean_ipc = if r.cores.is_empty() {
            0.0
        } else {
            r.cores.iter().map(|c| c.ipc).sum::<f64>() / r.cores.len() as f64
        };
        let noc_gbps = if r.elapsed_cycles == 0 {
            0.0
        } else {
            (r.noc_crossings * LINE_SIZE) as f64 / r.elapsed_cycles as f64 * CORE_FREQ_GHZ
        };
        let dram_cap = cfg.dram.total_bandwidth_gbps();
        let noc_cap = cfg.noc.bisection_bandwidth_gbps();
        Self {
            mean_ipc,
            dram_gbps: r.total_bandwidth_gbps,
            dram_utilization: if dram_cap > 0.0 {
                r.total_bandwidth_gbps / dram_cap
            } else {
                0.0
            },
            noc_utilization: if noc_cap > 0.0 {
                noc_gbps / noc_cap
            } else {
                0.0
            },
            elapsed_cycles: r.elapsed_cycles,
        }
    }
}

/// One plan entry's execution record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Hex hash of the cache key (the cache file stem).
    pub key_hash: String,
    /// Human-readable mix description, e.g. `32x lbm_r` or `lbm_r+mcf_r`.
    pub mix: String,
    /// Cores in the machine configuration.
    pub cores: u32,
    /// Outcome.
    pub status: RunStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Host wall-clock seconds spent on this entry (all attempts).
    pub wall_seconds: f64,
    /// Summary statistics (successful runs only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub summary: Option<RunSummary>,
    /// Error message (quarantined runs only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

/// The structured account of one `execute_plan` invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest schema version.
    pub schema_version: u32,
    /// The executor label (e.g. `homogeneous`).
    pub label: String,
    /// Plan size.
    pub total_runs: usize,
    /// Entries satisfied by the cache before execution.
    pub cached: usize,
    /// Entries simulated successfully this invocation.
    pub simulated: usize,
    /// Entries quarantined after exhausting retries.
    pub failed: usize,
    /// Total retry attempts across all entries.
    pub retries: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the whole invocation.
    pub wall_seconds: f64,
    /// Sum of per-run busy seconds over `workers * wall_seconds` (0..1).
    pub worker_utilization: f64,
    /// p50/p95/p99 of per-run wall seconds (absent in v1 manifests and
    /// when nothing ran this invocation).
    #[serde(default)]
    pub wall_percentiles: Option<Percentiles>,
    /// Hex key hashes of quarantined entries (also under `quarantine/`).
    pub failed_keys: Vec<String>,
    /// Per-entry records, in completion order.
    pub runs: Vec<RunRecord>,
    /// Snapshot of the executor's `sms-obs` metrics registry at finish
    /// time, keyed by metric family name (absent in pre-v3 manifests).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub registry: Option<serde_json::Value>,
    /// Aggregate phase profile across the runs simulated this invocation
    /// (absent in pre-v4 manifests and when profiling was not enabled).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profile: Option<Vec<crate::profile::PhaseStatRecord>>,
}

impl RunManifest {
    /// Load a manifest from disk.
    ///
    /// # Errors
    ///
    /// Returns an error when the file is unreadable or not a manifest.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Compact human-readable rendering (CLI `sms manifest`).
    pub fn render(&self) -> String {
        let mut out = format!(
            "sweep `{}`: {} runs ({} cached, {} simulated, {} quarantined, {} retries)\n\
             {} workers, {:.1}s wall, {:.0}% worker utilization\n",
            self.label,
            self.total_runs,
            self.cached,
            self.simulated,
            self.failed,
            self.retries,
            self.workers,
            self.wall_seconds,
            self.worker_utilization * 100.0,
        );
        if let Some(p) = self.wall_percentiles {
            out.push_str(&format!(
                "run wall time p50 {:.2}s, p95 {:.2}s, p99 {:.2}s\n",
                p.p50, p.p95, p.p99
            ));
        }
        for r in self
            .runs
            .iter()
            .filter(|r| r.status == RunStatus::Quarantined)
        {
            out.push_str(&format!(
                "  quarantined {} ({}): {}\n",
                r.key_hash,
                r.mix,
                r.error.as_deref().unwrap_or("unknown error"),
            ));
        }
        if let Some(slowest) = self
            .runs
            .iter()
            .max_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
        {
            out.push_str(&format!(
                "  slowest run: {} ({}) {:.2}s\n",
                slowest.key_hash, slowest.mix, slowest.wall_seconds
            ));
        }
        out
    }
}

/// Short human label for a mix: `Nx name` for homogeneous mixes, else the
/// benchmark names joined with `+` (truncated).
pub fn mix_label(mix: &MixSpec) -> String {
    let n = mix.benchmarks.len();
    if n >= 1 && mix.benchmarks.iter().all(|b| b == &mix.benchmarks[0]) {
        return format!("{n}x {}", mix.benchmarks[0]);
    }
    let mut label = mix.benchmarks.join("+");
    if label.len() > 48 {
        label.truncate(45);
        label.push_str("...");
    }
    label
}

/// Live telemetry collector for one `execute_plan` invocation. All
/// recording methods take `&self` and are called from worker threads.
#[derive(Debug)]
pub struct Telemetry {
    label: String,
    workers: usize,
    total_runs: usize,
    cached: usize,
    todo: usize,
    started: Instant,
    // sms-lint: atomic(counter): completed-run tally, read only for progress/manifest
    simulated: AtomicUsize,
    // sms-lint: atomic(counter): quarantined-run tally, read only for progress/manifest
    failed: AtomicUsize,
    // sms-lint: atomic(counter): retry tally, read only for progress/manifest
    retries: AtomicUsize,
    // sms-lint: atomic(counter): busy-time accumulator, read only for utilization
    busy_micros: AtomicU64,
    records: Mutex<Vec<RunRecord>>,
    /// Print a progress line every this many completions (the final
    /// completion always prints).
    progress_every: usize,
    /// Per-invocation metrics registry, snapshotted into the manifest.
    registry: Arc<Registry>,
    obs_runs: Arc<Family<Counter>>,
    obs_retries: Arc<Counter>,
    obs_run_wall_micros: Arc<Histogram>,
}

impl Telemetry {
    /// Start telemetry for a plan of `total_runs` entries of which
    /// `cached` were already satisfied, running on `workers` threads.
    pub fn start(label: &str, workers: usize, total_runs: usize, cached: usize) -> Self {
        let todo = total_runs - cached;
        let registry = Arc::new(Registry::new());
        let obs_runs = registry.counter_family(
            "sms_bench_runs_total",
            "Completed plan entries by outcome.",
            &["status"],
        );
        let obs_retries = registry.counter(
            "sms_bench_retries_total",
            "Failed attempts that were re-run.",
        );
        let obs_run_wall_micros = registry.histogram(
            "sms_bench_run_wall_micros",
            "Host wall-clock time per plan entry (all attempts), microseconds.",
        );
        registry
            .counter(
                "sms_bench_cached_runs_total",
                "Plan entries satisfied by the result cache before execution.",
            )
            .inc_by(cached as u64);
        Self {
            label: label.to_owned(),
            workers,
            total_runs,
            cached,
            todo,
            started: Instant::now(),
            simulated: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            busy_micros: AtomicU64::new(0),
            records: Mutex::new(Vec::with_capacity(todo)),
            progress_every: if todo <= 20 { 1 } else { 10 },
            registry,
            obs_runs,
            obs_retries,
            obs_run_wall_micros,
        }
    }

    /// The invocation's metrics registry (snapshotted into the manifest).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Record one retry attempt (a failed attempt that will be re-run).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.obs_retries.inc();
    }

    /// Record a completed entry and print the progress line when due.
    pub fn record(&self, record: RunRecord) {
        let wall_micros = (record.wall_seconds * 1e6) as u64;
        self.busy_micros.fetch_add(wall_micros, Ordering::Relaxed);
        self.obs_run_wall_micros.observe(wall_micros);
        let (counter, status) = match record.status {
            RunStatus::Ok => (&self.simulated, "ok"),
            RunStatus::Quarantined => (&self.failed, "quarantined"),
        };
        // sms-lint: atomic(counter): status tally via local binding (simulated/failed)
        counter.fetch_add(1, Ordering::Relaxed);
        self.obs_runs.with(&[status]).inc();
        self.records.lock().push(record);
        self.progress();
    }

    fn progress(&self) {
        let simulated = self.simulated.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let done = simulated + failed;
        if done != self.todo && !done.is_multiple_of(self.progress_every) {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let eta = if rate > 0.0 {
            (self.todo - done) as f64 / rate
        } else {
            0.0
        };
        let failures = if failed > 0 {
            format!(", {failed} failed")
        } else {
            String::new()
        };
        eprintln!(
            "[{}] {done}/{} done{failures} ({rate:.1} runs/s, eta {eta:.0}s)",
            self.label, self.todo,
        );
    }

    /// Finalize into a manifest.
    pub fn finish(&self) -> RunManifest {
        let wall = self.started.elapsed().as_secs_f64();
        let busy = self.busy_micros.load(Ordering::Relaxed) as f64 / 1e6;
        let runs = self.records.lock().clone();
        let failed_keys = runs
            .iter()
            .filter(|r| r.status == RunStatus::Quarantined)
            .map(|r| r.key_hash.clone())
            .collect();
        let wall_times: Vec<f64> = runs.iter().map(|r| r.wall_seconds).collect();
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            label: self.label.clone(),
            total_runs: self.total_runs,
            cached: self.cached,
            simulated: self.simulated.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            workers: self.workers,
            wall_seconds: wall,
            worker_utilization: if wall > 0.0 && self.workers > 0 {
                (busy / (wall * self.workers as f64)).min(1.0)
            } else {
                0.0
            },
            wall_percentiles: percentiles(&wall_times),
            failed_keys,
            runs,
            registry: serde_json::from_str(&self.registry.to_json()).ok(),
            // Populated after the fact by `execute_plan_with_profiles`;
            // the executor itself runs detached.
            profile: None,
        }
    }
}

/// Flush the global tracer's ring to `dir/traces/<label>.json` as Chrome
/// `trace_event` JSON (load it at `chrome://tracing` or Perfetto),
/// returning the path. A no-op returning `None` when tracing is disabled
/// or nothing was recorded; write failures warn rather than abort, like
/// [`write_manifest`].
pub fn write_trace(dir: &Path, label: &str) -> Option<PathBuf> {
    let tracer = sms_obs::tracer();
    if !tracer.is_enabled() || tracer.is_empty() {
        return None;
    }
    let dir = dir.join("traces");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "[{label}] warning: cannot create trace dir {}: {e}",
            dir.display()
        );
        return None;
    }
    let path = dir.join(format!("{}.json", sanitize_label(label)));
    match std::fs::write(&path, tracer.chrome_json()) {
        Ok(()) => {
            eprintln!("[{label}] trace written to {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!(
                "[{label}] warning: cannot write trace {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// Write `manifest` as pretty JSON with deterministically sorted keys to
/// `dir/manifests/<label>.json`, returning the path. Failures are
/// reported, not fatal: a sweep must not die because its diagnostics
/// directory is unwritable.
pub fn write_manifest(dir: &Path, manifest: &RunManifest) -> Option<PathBuf> {
    if let Err(e) = sms_faults::check("manifest.flush") {
        eprintln!("[{}] warning: cannot write manifest: {e}", manifest.label);
        return None;
    }
    let dir = dir.join("manifests");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "[{}] warning: cannot create manifest dir {}: {e}",
            manifest.label,
            dir.display()
        );
        return None;
    }
    let path = dir.join(format!("{}.json", sanitize_label(&manifest.label)));
    match sms_core::artifact::to_sorted_pretty_json(manifest) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!(
                    "[{}] warning: cannot write manifest {}: {e}",
                    manifest.label,
                    path.display()
                );
                None
            }
        },
        Err(e) => {
            eprintln!("[{}] warning: cannot encode manifest: {e}", manifest.label);
            None
        }
    }
}

/// Restrict a user-supplied label to filename-safe characters, matching
/// the stems used for journal, manifest, and explore artifacts.
pub fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(status: RunStatus, wall: f64) -> RunRecord {
        RunRecord {
            key_hash: "abc".into(),
            mix: "2x lbm_r".into(),
            cores: 2,
            status,
            attempts: 1,
            wall_seconds: wall,
            summary: None,
            error: if status == RunStatus::Quarantined {
                Some("boom".into())
            } else {
                None
            },
        }
    }

    #[test]
    fn telemetry_counts_and_manifest_round_trip() {
        let t = Telemetry::start("test", 2, 5, 2);
        t.record(record(RunStatus::Ok, 0.5));
        t.record_retry();
        t.record(record(RunStatus::Quarantined, 0.1));
        t.record(record(RunStatus::Ok, 0.2));
        let m = t.finish();
        assert_eq!(m.total_runs, 5);
        assert_eq!(m.cached, 2);
        assert_eq!(m.simulated, 2);
        assert_eq!(m.failed, 1);
        assert_eq!(m.retries, 1);
        assert_eq!(m.failed_keys, vec!["abc".to_owned()]);
        assert_eq!(m.schema_version, MANIFEST_SCHEMA_VERSION);

        // The obs registry tracked the same counts and is snapshotted
        // into the manifest.
        let reg = m.registry.as_ref().expect("registry snapshot present");
        assert_eq!(
            reg["sms_bench_runs_total"]["samples"]
                .as_array()
                .unwrap()
                .iter()
                .map(|s| s["value"].as_f64().unwrap())
                .sum::<f64>(),
            3.0
        );
        assert_eq!(reg["sms_bench_retries_total"]["samples"][0]["value"], 1.0);
        assert_eq!(
            reg["sms_bench_cached_runs_total"]["samples"][0]["value"],
            2.0
        );
        assert_eq!(reg["sms_bench_run_wall_micros"]["samples"][0]["count"], 3.0);

        let dir = std::env::temp_dir().join(format!("sms-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_manifest(&dir, &m).expect("manifest written");
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back.simulated, 2);
        assert_eq!(back.runs.len(), 3);
        assert!(back.render().contains("quarantined"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mix_labels_compress_homogeneous_mixes() {
        let homo = MixSpec::homogeneous("lbm_r", 4, 1);
        assert_eq!(mix_label(&homo), "4x lbm_r");
        let hetero = MixSpec {
            benchmarks: vec!["a".into(), "b".into()],
            seed: 0,
        };
        assert_eq!(mix_label(&hetero), "a+b");
    }

    #[test]
    fn run_summary_utilization_is_bounded_and_positive() {
        let cfg = SystemConfig::target_32core();
        let r = SimResult {
            cores: vec![],
            elapsed_cycles: 1000,
            total_dram_bytes: 64_000,
            total_bandwidth_gbps: 64.0,
            noc_transfers: 10,
            noc_crossings: 5,
            llc_accesses: 0,
            llc_hits: 0,
            host_seconds: 0.1,
        };
        let s = RunSummary::from_result(&cfg, &r);
        assert!(s.dram_utilization > 0.0 && s.dram_utilization <= 1.0);
        assert!(s.noc_utilization >= 0.0);
    }

    #[test]
    fn sanitized_labels_are_filesystem_safe() {
        assert_eq!(sanitize_label("64-core/PRS x"), "64-core_PRS_x");
    }

    #[test]
    fn percentiles_nearest_rank() {
        assert_eq!(percentiles(&[]), None);
        assert_eq!(percentiles(&[f64::NAN]), None);
        let one = percentiles(&[3.0]).unwrap();
        assert_eq!((one.p50, one.p95, one.p99), (3.0, 3.0, 3.0));
        // Two samples: p50 is the lower, the tails are the upper — every
        // value is an observed sample (nearest-rank never interpolates).
        let two = percentiles(&[7.0, 1.0]).unwrap();
        assert_eq!((two.p50, two.p95, two.p99), (1.0, 7.0, 7.0));
        // 1..=100: nearest-rank percentiles are exactly the rank values,
        // regardless of input order.
        let mut v: Vec<f64> = (1..=100).rev().map(f64::from).collect();
        v.push(f64::INFINITY); // ignored
        let p = percentiles(&v).unwrap();
        assert_eq!((p.p50, p.p95, p.p99), (50.0, 95.0, 99.0));
    }

    #[test]
    fn manifest_records_wall_percentiles_and_sorted_keys() {
        let t = Telemetry::start("pct", 1, 3, 0);
        t.record(record(RunStatus::Ok, 0.1));
        t.record(record(RunStatus::Ok, 0.2));
        t.record(record(RunStatus::Ok, 0.9));
        let m = t.finish();
        let p = m.wall_percentiles.expect("percentiles present");
        assert_eq!(p.p50, 0.2);
        assert_eq!(p.p99, 0.9);
        assert!(m.render().contains("p95"));

        let dir = std::env::temp_dir().join(format!("sms-telemetry-pct-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_manifest(&dir, &m).expect("manifest written");
        let text = std::fs::read_to_string(&path).unwrap();
        // Emission is canonical: keys sorted, so re-serializing the parsed
        // value reproduces the bytes.
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(serde_json::to_string_pretty(&v).unwrap(), text);
        let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Older manifests still load: v3 lacked the profile aggregate,
        // v2 additionally lacked the registry snapshot, and v1 also
        // lacked wall percentiles.
        let mut v3 = v.clone();
        v3.as_object_mut().unwrap().remove("profile");
        v3["schema_version"] = serde_json::json!(3);
        std::fs::write(&path, serde_json::to_string(&v3).unwrap()).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back.profile, None);
        assert!(back.registry.is_some());

        let mut v2 = v.clone();
        v2.as_object_mut().unwrap().remove("profile");
        v2.as_object_mut().unwrap().remove("registry");
        v2["schema_version"] = serde_json::json!(2);
        std::fs::write(&path, serde_json::to_string(&v2).unwrap()).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back.registry, None);
        assert!(back.wall_percentiles.is_some());

        let mut v1 = v.clone();
        v1.as_object_mut().unwrap().remove("wall_percentiles");
        v1.as_object_mut().unwrap().remove("registry");
        v1["schema_version"] = serde_json::json!(1);
        std::fs::write(&path, serde_json::to_string(&v1).unwrap()).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back.wall_percentiles, None);
        assert_eq!(back.registry, None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
