//! Per-run phase profiles: an opt-in run function for the plan executor
//! that attaches an [`sms_obs::Profiler`] to every simulated run and
//! writes the resulting [`PhaseProfile`] under
//! `<cache>/profiles/<key_hash>.json`.
//!
//! The plain executor runs detached, so sweeps pay nothing for this
//! capability; wiring [`profile_run_fn`] through the
//! [`execute_plan_with`](crate::runner::execute_plan_with) seam attaches
//! a fresh profiler per run. The profiler only observes host time — the
//! `SimResult` is bit-identical with and without it (proved by the
//! determinism tests in `sms-sim`). Besides the per-run files, the run
//! function folds every run's profile into a shared aggregate that
//! [`execute_plan_with_profiles`] embeds into the v4 run-manifest.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sms_obs::{PhaseProfile, PhaseStat, Profiler};
use sms_sim::config::SystemConfig;
use sms_sim::error::SimError;
use sms_sim::stats::SimResult;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_workloads::mix::MixSpec;

use crate::runner::{cache_key, key_hash_hex, CachedSim, PlanSummary};
use crate::telemetry::{mix_label, write_manifest, RunManifest};

/// Profile file schema version; bump when the JSON layout changes.
pub const PROFILE_FILE_SCHEMA_VERSION: u32 = 1;

/// Serde mirror of one [`PhaseStat`] (`sms-obs` is dependency-free and
/// renders its own JSON; the bench crate owns the serde form).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStatRecord {
    /// Full phase path (`parent;child` collapsed-stack form).
    pub path: String,
    /// Completed scopes.
    pub count: u64,
    /// Total nanoseconds, including time spent in child phases.
    pub total_nanos: u64,
    /// Nanoseconds not attributed to any direct child phase.
    pub self_nanos: u64,
}

impl From<&PhaseStat> for PhaseStatRecord {
    fn from(s: &PhaseStat) -> Self {
        Self {
            path: s.path.clone(),
            count: s.count,
            total_nanos: s.total_nanos,
            self_nanos: s.self_nanos,
        }
    }
}

/// Convert a profile into its serde record form (phases keep their
/// sorted-by-path order).
pub fn phase_records(profile: &PhaseProfile) -> Vec<PhaseStatRecord> {
    profile.phases.iter().map(PhaseStatRecord::from).collect()
}

/// Rebuild a [`PhaseProfile`] from its serde record form.
pub fn records_to_profile(records: &[PhaseStatRecord]) -> PhaseProfile {
    let mut profile = PhaseProfile {
        phases: records
            .iter()
            .map(|r| PhaseStat {
                path: r.path.clone(),
                count: r.count,
                total_nanos: r.total_nanos,
                self_nanos: r.self_nanos,
            })
            .collect(),
    };
    profile.phases.sort_by(|a, b| a.path.cmp(&b.path));
    profile
}

/// One profile file: the phase breakdown of a single simulated run,
/// written next to the result cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileFile {
    /// Profile file schema version.
    pub schema_version: u32,
    /// Hex hash of the run's cache key (also the file stem).
    pub key_hash: String,
    /// Human-readable mix description.
    pub mix: String,
    /// Cores in the machine configuration.
    pub cores: u32,
    /// Per-phase stats, sorted by path.
    pub phases: Vec<PhaseStatRecord>,
}

impl ProfileFile {
    /// Load a profile file from disk.
    ///
    /// # Errors
    ///
    /// Returns an error when the file is unreadable or not a profile.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Write the file as sorted-key pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates encoding and filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json =
            sms_core::artifact::to_sorted_pretty_json(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }
}

/// Where [`profile_run_fn`] writes its files.
pub fn profiles_dir(cache_dir: &Path) -> PathBuf {
    cache_dir.join("profiles")
}

/// A run function for the `execute_plan_with` seam that attaches a fresh
/// [`Profiler`] to every simulated run, writes the run's [`ProfileFile`]
/// under `<cache_dir>/profiles/`, and folds the snapshot into
/// `aggregate`. Write failures warn and drop the profile rather than
/// failing the run — the `SimResult` is identical either way (the
/// profiler is read-only with respect to simulated state).
pub fn profile_run_fn(
    cache_dir: &Path,
    aggregate: Arc<Mutex<PhaseProfile>>,
) -> impl Fn(&SystemConfig, &MixSpec, RunSpec) -> Result<SimResult, SimError> + Send + Sync + 'static
{
    let dir = profiles_dir(cache_dir);
    move |cfg, mix, spec| {
        let profiler = Profiler::new();
        let mut system = MulticoreSystem::new(cfg.clone(), mix.sources())?;
        system.attach_profiler(&profiler);
        let result = system.run(spec)?;
        let snapshot = profiler.snapshot();
        aggregate.lock().merge(&snapshot);
        let file = ProfileFile {
            schema_version: PROFILE_FILE_SCHEMA_VERSION,
            key_hash: key_hash_hex(&cache_key(cfg, mix, spec)),
            mix: mix_label(mix),
            cores: cfg.num_cores,
            phases: phase_records(&snapshot),
        };
        write_profile(&dir, &file);
        Ok(result)
    }
}

/// [`execute_plan_with`](crate::runner::execute_plan_with) preconfigured
/// with [`profile_run_fn`]: every simulated (non-cached) run leaves a
/// profile file behind, and the aggregate across all of them is embedded
/// into the run-manifest (`profile` field, schema v4) and returned. This
/// is what `sms sweep --profile` calls.
pub fn execute_plan_with_profiles(
    cache: &CachedSim,
    plan: &[(SystemConfig, MixSpec)],
    spec: RunSpec,
    threads: usize,
    label: &str,
) -> (PlanSummary, PhaseProfile) {
    let aggregate = Arc::new(Mutex::new(PhaseProfile::default()));
    let run_fn = profile_run_fn(cache.dir(), Arc::clone(&aggregate));
    let mut summary = crate::runner::execute_plan_with(
        cache,
        plan,
        spec,
        threads,
        label,
        crate::runner::ExecOptions::from_env(),
        run_fn,
    );
    let profile = aggregate.lock().clone();
    // The executor wrote the manifest before the aggregate existed;
    // re-write it with the profile embedded. Best-effort like every other
    // diagnostics write.
    if !profile.is_empty() {
        if let Some(path) = &summary.manifest_path {
            match RunManifest::load(path) {
                Ok(mut manifest) => {
                    manifest.profile = Some(phase_records(&profile));
                    summary.manifest_path = write_manifest(cache.dir(), &manifest);
                }
                Err(e) => eprintln!("[{label}] warning: cannot embed profile in manifest: {e}"),
            }
        }
    }
    (summary, profile)
}

/// Best-effort write of one profile file as sorted-key pretty JSON.
fn write_profile(dir: &Path, file: &ProfileFile) {
    let write = || -> std::io::Result<()> {
        sms_faults::check_io("profile.write")?;
        std::fs::create_dir_all(dir)?;
        file.save(dir.join(format!("{}.json", file.key_hash)))
    };
    if let Err(e) = write() {
        eprintln!(
            "warning: cannot write profile for {} ({}): {e}",
            file.key_hash, file.mix
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = 1;
        cfg.llc.num_slices = 1;
        cfg.noc.mesh_cols = 1;
        cfg.noc.mesh_rows = 1;
        cfg.dram.num_controllers = 1;
        cfg
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sms-profile-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn record_round_trip_preserves_the_profile() {
        let profiler = Profiler::new();
        profiler.phase("sim.run").record(1_000);
        profiler.phase("sim.run;window.fork").record(600);
        let snap = profiler.snapshot();
        let records = phase_records(&snap);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].path, "sim.run");
        assert_eq!(records[0].self_nanos, 400);
        let back = records_to_profile(&records);
        assert_eq!(back, snap);
    }

    #[test]
    fn profile_run_fn_writes_files_and_embeds_the_manifest_aggregate() {
        let dir = tmpdir("files");
        let cache = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let spec = RunSpec {
            warmup_instructions: 0,
            measure_instructions: 5_000,
        };
        let plan: Vec<(SystemConfig, MixSpec)> = ["leela_r", "lbm_r"]
            .iter()
            .map(|n| (cfg.clone(), MixSpec::homogeneous(n, 1, 7)))
            .collect();
        let (summary, profile) = execute_plan_with_profiles(&cache, &plan, spec, 2, "prof");
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.simulated, 2);
        assert!(!profile.is_empty(), "aggregate covers the simulated runs");
        let run = profile
            .phases
            .iter()
            .find(|p| p.path == "sim.run")
            .expect("root phase recorded");
        assert_eq!(run.count, 2, "one sim.run per simulated run");

        let pdir = profiles_dir(cache.dir());
        let mut files: Vec<PathBuf> = std::fs::read_dir(&pdir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .collect();
        files.sort();
        assert_eq!(files.len(), 2);
        for path in &files {
            let pf = ProfileFile::load(path).unwrap();
            assert_eq!(pf.schema_version, PROFILE_FILE_SCHEMA_VERSION);
            assert_eq!(pf.cores, 1);
            assert_eq!(
                path.file_stem().unwrap().to_str().unwrap(),
                pf.key_hash,
                "file stem is the key hash"
            );
            let per_run = records_to_profile(&pf.phases);
            assert!(per_run.root_total_nanos() > 0, "run time attributed");
        }

        // The aggregate is embedded into the (v4) run-manifest.
        let manifest = RunManifest::load(summary.manifest_path.expect("manifest written")).unwrap();
        let embedded = manifest.profile.expect("profile embedded in manifest");
        assert_eq!(records_to_profile(&embedded), profile);

        // Re-running is all-cached: no new profiles, manifest has none.
        let (again, empty) = execute_plan_with_profiles(&cache, &plan, spec, 2, "prof");
        assert_eq!(again.cached, 2);
        assert!(empty.is_empty(), "cached runs record no phases");
        let manifest = RunManifest::load(again.manifest_path.expect("manifest written")).unwrap();
        assert!(manifest.profile.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_profile_dir_drops_the_file_but_not_the_run() {
        let dir = tmpdir("fault");
        std::fs::create_dir_all(&dir).unwrap();
        // Occupy the profiles directory path with a plain file so every
        // profile write fails (the `profile.write` failpoint exercises the
        // same code path under `SMS_FAULTS` in the chaos tests).
        std::fs::write(profiles_dir(&dir), b"not a directory").unwrap();
        let aggregate = Arc::new(Mutex::new(PhaseProfile::default()));
        let run_fn = profile_run_fn(&dir, Arc::clone(&aggregate));
        let cfg = tiny_cfg();
        let mix = MixSpec::homogeneous("leela_r", 1, 7);
        let spec = RunSpec {
            warmup_instructions: 0,
            measure_instructions: 5_000,
        };
        let result = run_fn(&cfg, &mix, spec).expect("run survives the write failure");
        assert!(result.elapsed_cycles > 0);
        assert!(!aggregate.lock().is_empty(), "aggregate still folded");
        assert!(
            profiles_dir(&dir).is_file(),
            "no profile directory created over the blocker"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
