//! Per-run epoch timelines: an opt-in run function for the plan executor
//! that records every simulated run's per-sync-window samples and writes
//! them under `<cache>/timelines/<key_hash>.json`.
//!
//! The plain executor runs with a [`sms_sim::NullSink`], so sweeps pay
//! nothing for this capability; wiring [`timeline_run_fn`] through the
//! [`execute_plan_with`](crate::runner::execute_plan_with) seam swaps in a
//! [`RecordingSink`] per run. Each file carries the run's
//! [`SimTimeline`] plus a snapshot of the global `sms-obs` registry, and
//! is rendered by `sms timeline`.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use sms_sim::config::SystemConfig;
use sms_sim::error::SimError;
use sms_sim::stats::SimResult;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_sim::{RecordingSink, SimTimeline};
use sms_workloads::mix::MixSpec;

use crate::runner::{cache_key, key_hash_hex, CachedSim, PlanSummary};
use crate::telemetry::mix_label;

/// Timeline file schema version; bump when the JSON layout changes.
pub const TIMELINE_SCHEMA_VERSION: u32 = 1;

/// One timeline file: the epoch-resolved record of a single simulated
/// run, written next to the result cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineFile {
    /// Timeline file schema version.
    pub schema_version: u32,
    /// Hex hash of the run's cache key (also the file stem).
    pub key_hash: String,
    /// Human-readable mix description.
    pub mix: String,
    /// Cores in the machine configuration.
    pub cores: u32,
    /// Per-sync-window samples of the measured phase.
    pub timeline: SimTimeline,
    /// Snapshot of the global `sms-obs` metrics registry at write time
    /// (absent when written by older versions).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub registry: Option<serde_json::Value>,
}

impl TimelineFile {
    /// Load a timeline file from disk.
    ///
    /// # Errors
    ///
    /// Returns an error when the file is unreadable or not a timeline.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Write the file as sorted-key pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates encoding and filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json =
            sms_core::artifact::to_sorted_pretty_json(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }
}

/// Where [`timeline_run_fn`] writes its files.
pub fn timelines_dir(cache_dir: &Path) -> PathBuf {
    cache_dir.join("timelines")
}

/// A run function for the `execute_plan_with` seam that simulates with a
/// [`RecordingSink`] and writes each run's [`TimelineFile`] under
/// `<cache_dir>/timelines/`. Write failures warn and drop the timeline
/// rather than failing the run — the `SimResult` is identical either way
/// (sampling is read-only).
pub fn timeline_run_fn(
    cache_dir: &Path,
) -> impl Fn(&SystemConfig, &MixSpec, RunSpec) -> Result<SimResult, SimError> + Send + Sync + 'static
{
    let dir = timelines_dir(cache_dir);
    move |cfg, mix, spec| {
        let mut sink = RecordingSink::new();
        let mut system = MulticoreSystem::new(cfg.clone(), mix.sources())?;
        let result = system.run_with_sink(spec, &mut sink)?;
        let file = TimelineFile {
            schema_version: TIMELINE_SCHEMA_VERSION,
            key_hash: key_hash_hex(&cache_key(cfg, mix, spec)),
            mix: mix_label(mix),
            cores: cfg.num_cores,
            timeline: SimTimeline {
                sync_quantum: cfg.sync_quantum,
                num_cores: cfg.num_cores,
                samples: sink.into_samples(),
            },
            registry: serde_json::from_str(&sms_obs::registry().to_json()).ok(),
        };
        write_timeline(&dir, &file);
        Ok(result)
    }
}

/// [`execute_plan_with`](crate::runner::execute_plan_with) preconfigured
/// with [`timeline_run_fn`]: every simulated (non-cached) run leaves a
/// timeline file behind. This is what `sms sweep --timelines` calls.
pub fn execute_plan_with_timelines(
    cache: &CachedSim,
    plan: &[(SystemConfig, MixSpec)],
    spec: RunSpec,
    threads: usize,
    label: &str,
) -> PlanSummary {
    let run_fn = timeline_run_fn(cache.dir());
    crate::runner::execute_plan_with(
        cache,
        plan,
        spec,
        threads,
        label,
        crate::runner::ExecOptions::from_env(),
        run_fn,
    )
}

/// Best-effort write of one timeline file as sorted-key pretty JSON.
fn write_timeline(dir: &Path, file: &TimelineFile) {
    let write = || -> std::io::Result<()> {
        sms_faults::check_io("timeline.write")?;
        std::fs::create_dir_all(dir)?;
        file.save(dir.join(format!("{}.json", file.key_hash)))
    };
    if let Err(e) = write() {
        eprintln!(
            "warning: cannot write timeline for {} ({}): {e}",
            file.key_hash, file.mix
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = 1;
        cfg.llc.num_slices = 1;
        cfg.noc.mesh_cols = 1;
        cfg.noc.mesh_rows = 1;
        cfg.dram.num_controllers = 1;
        cfg
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("sms-timeline-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn timeline_run_fn_writes_one_file_per_simulated_run() {
        let dir = tmpdir("files");
        let cache = CachedSim::open(&dir).unwrap();
        let cfg = tiny_cfg();
        let spec = RunSpec {
            warmup_instructions: 0,
            measure_instructions: 5_000,
        };
        let plan: Vec<(SystemConfig, MixSpec)> = ["leela_r", "lbm_r"]
            .iter()
            .map(|n| (cfg.clone(), MixSpec::homogeneous(n, 1, 7)))
            .collect();
        let summary = execute_plan_with_timelines(&cache, &plan, spec, 2, "tl");
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.simulated, 2);

        let tdir = timelines_dir(cache.dir());
        let mut files: Vec<PathBuf> = std::fs::read_dir(&tdir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .collect();
        files.sort();
        assert_eq!(files.len(), 2);
        for path in &files {
            let tl = TimelineFile::load(path).unwrap();
            assert_eq!(tl.schema_version, TIMELINE_SCHEMA_VERSION);
            assert_eq!(tl.cores, 1);
            assert_eq!(
                path.file_stem().unwrap().to_str().unwrap(),
                tl.key_hash,
                "file stem is the key hash"
            );
            assert!(!tl.timeline.samples.is_empty(), "epochs recorded");
            assert!(tl
                .timeline
                .samples
                .windows(2)
                .all(|w| w[0].cycle < w[1].cycle));
            assert!(tl.registry.is_some(), "registry snapshot embedded");
            assert!(!tl.timeline.render().is_empty());
        }

        // Re-running is all-cached: no run function calls, no new files.
        let again = execute_plan_with_timelines(&cache, &plan, spec, 2, "tl");
        assert_eq!(again.cached, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeline_file_without_registry_still_loads() {
        // Forward compatibility with files written before the registry
        // snapshot existed.
        let dir = tmpdir("compat");
        std::fs::create_dir_all(&dir).unwrap();
        let json = r#"{
            "schema_version": 1,
            "key_hash": "ab12",
            "mix": "1x leela_r",
            "cores": 1,
            "timeline": {"sync_quantum": 1000, "num_cores": 1, "samples": []}
        }"#;
        let path = dir.join("ab12.json");
        std::fs::write(&path, json).unwrap();
        let tl = TimelineFile::load(&path).unwrap();
        assert_eq!(tl.registry, None);
        assert_eq!(tl.timeline.sync_quantum, 1_000);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
