//! # sms-bench — experiment harness
//!
//! Reproduces every table and figure of *Scale-Model Architectural
//! Simulation* on the `sms-sim`/`sms-workloads` substrate:
//!
//! * [`runner`] — persistent simulation-result cache (checksummed
//!   entries) + fault-tolerant plan executor (panic isolation, bounded
//!   retries, quarantine, watchdog deadline via `SMS_RUN_TIMEOUT_SECS`),
//! * [`journal`] — append-only fsync'd plan journal enabling crash-safe
//!   sweep resume (`sms resume`),
//! * [`fsck`](mod@fsck) — cache integrity verification and repair
//!   (`sms fsck`),
//! * [`telemetry`] — per-run records, `sms-obs` counters, the JSON
//!   run-manifest, and Chrome-trace flushing,
//! * [`timeline`] — opt-in per-run epoch timelines written next to the
//!   cache (`sms sweep --timelines`, rendered by `sms timeline`),
//! * [`profile`] — opt-in per-run phase profiles written next to the
//!   cache (`sms sweep --profile`), aggregated into the run-manifest,
//! * [`ctx`] — experiment context (env-var knobs, report emission),
//! * [`experiments`] — one driver per table/figure,
//! * [`table`] — text-table rendering.
//!
//! Failure-prone paths (cache read/write, journal append, manifest and
//! timeline flush, the run body itself) carry deterministic `sms-faults`
//! failpoints, armed via the `SMS_FAULTS` environment variable and free
//! when it is unset.
//!
//! Run individual figures via `cargo bench -p sms-bench --bench fig4_homogeneous`
//! (plain harnesses that print the paper's series), or everything via the
//! `run_experiments` binary. The `SMS_BUDGET` environment variable sets
//! the per-instance instruction budget (default 500k).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ctx;
pub mod experiments;
pub mod fsck;
pub mod journal;
pub mod profile;
pub mod runner;
pub mod table;
pub mod telemetry;
pub mod timeline;

pub use ctx::{Ctx, Report};
pub use fsck::{fsck, Defect, DefectKind, FsckAction, FsckReport};
pub use journal::{
    journal_path, replay, JournalLine, JournalReplay, PlanHeader, PlanJournal,
    JOURNAL_SCHEMA_VERSION,
};
pub use profile::{
    execute_plan_with_profiles, phase_records, profile_run_fn, profiles_dir, records_to_profile,
    PhaseStatRecord, ProfileFile, PROFILE_FILE_SCHEMA_VERSION,
};
pub use runner::{
    cache_key, execute_plan, execute_plan_with, key_hash_hex, result_checksum, CachedSim,
    ExecOptions, PlanSummary, QuarantineRecord, CACHE_SCHEMA_VERSION,
};
pub use telemetry::{
    percentiles, write_trace, Percentiles, RunManifest, RunRecord, RunStatus, RunSummary,
};
pub use timeline::{
    execute_plan_with_timelines, timeline_run_fn, timelines_dir, TimelineFile,
    TIMELINE_SCHEMA_VERSION,
};
