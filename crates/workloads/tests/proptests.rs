//! Property-based tests for workload generation invariants.

use proptest::prelude::*;
use sms_sim::trace::{InstructionSource, MicroOp};
use sms_workloads::generator::SyntheticSource;
use sms_workloads::mix::MixSpec;
use sms_workloads::multithreaded::DataParallelThread;
use sms_workloads::spec::suite;

proptest! {
    #[test]
    fn instruction_mix_tracks_profile(bench_idx in 0usize..29, seed in 0u64..32) {
        let profile = suite()[bench_idx].clone();
        let mut src = SyntheticSource::new(profile.clone(), 0, seed);
        let (mut loads, mut stores, mut branches, mut instrs) = (0u64, 0u64, 0u64, 0u64);
        while instrs < 400_000 {
            match src.next_op() {
                MicroOp::Load { .. } => { loads += 1; instrs += 1; }
                MicroOp::Store { .. } => { stores += 1; instrs += 1; }
                MicroOp::Branch { .. } => { branches += 1; instrs += 1; }
                MicroOp::Compute { count } => instrs += u64::from(count),
            }
        }
        let t = instrs as f64;
        prop_assert!((loads as f64 / t - profile.load_frac).abs() < 0.02);
        prop_assert!((stores as f64 / t - profile.store_frac).abs() < 0.02);
        prop_assert!((branches as f64 / t - profile.branch_frac).abs() < 0.02);
    }

    #[test]
    fn branch_miss_rate_tracks_profile(bench_idx in 0usize..29) {
        let profile = suite()[bench_idx].clone();
        prop_assume!(profile.branch_frac > 0.01);
        let mut src = SyntheticSource::new(profile.clone(), 0, 11);
        let (mut misses, mut branches) = (0u64, 0u64);
        for _ in 0..300_000 {
            if let MicroOp::Branch { mispredicted } = src.next_op() {
                branches += 1;
                if mispredicted { misses += 1; }
            }
        }
        prop_assume!(branches > 1000);
        let rate = misses as f64 / branches as f64;
        prop_assert!((rate - profile.branch_miss_rate).abs() < 0.01,
            "{}: rate {rate} vs {}", profile.name, profile.branch_miss_rate);
    }

    #[test]
    fn random_mixes_are_valid_and_deterministic(
        t in 1usize..33,
        seed in 0u64..64,
    ) {
        let pool = suite();
        let a = MixSpec::random(&pool, t, seed);
        let b = MixSpec::random(&pool, t, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), t);
        let names: Vec<&str> = pool.iter().map(|p| p.name).collect();
        for bench in &a.benchmarks {
            prop_assert!(names.contains(&bench.as_str()));
        }
        // Sources build without panicking.
        let sources = a.sources();
        prop_assert_eq!(sources.len(), t);
    }

    #[test]
    fn truncated_mix_is_a_prefix(t in 2usize..32, keep in 1usize..32, seed in 0u64..16) {
        let keep = keep.min(t);
        let mix = MixSpec::random(&suite(), t, seed);
        let tr = mix.truncated(keep);
        prop_assert_eq!(tr.len(), keep);
        prop_assert_eq!(&tr.benchmarks[..], &mix.benchmarks[..keep]);
    }

    #[test]
    fn data_parallel_threads_emit_valid_ops(
        bench_idx in 0usize..29,
        threads in 1u32..8,
        seed in 0u64..16,
    ) {
        let profile = suite()[bench_idx].clone();
        for id in 0..threads {
            let mut t = DataParallelThread::new(profile.clone(), id, threads, seed);
            for _ in 0..2_000 {
                match t.next_op() {
                    MicroOp::Compute { count } => prop_assert!(count > 0),
                    MicroOp::Store { addr } => {
                        prop_assert!(addr < (256u64 << 40), "stores stay private");
                    }
                    _ => {}
                }
            }
        }
    }
}
