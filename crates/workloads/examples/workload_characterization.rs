//! Characterize the 29 synthetic benchmarks on a single-core PRS scale
//! model (1 MB LLC, 4 GB/s DRAM): IPC, LLC MPKI, bandwidth utilization.
//!
//! Run with `cargo run --release --example workload_characterization`.

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_workloads::mix::MixSpec;
use sms_workloads::spec::suite;

fn single_core_prs() -> SystemConfig {
    let mut cfg = SystemConfig::target_32core();
    cfg.num_cores = 1;
    cfg.llc.num_slices = 1;
    cfg.noc.mesh_cols = 1;
    cfg.noc.mesh_rows = 1;
    cfg.noc.cross_section_links = 1;
    cfg.noc.link_bandwidth_gbps = 4.0;
    cfg.dram.num_controllers = 1;
    cfg.dram.controller_bandwidth_gbps = 4.0;
    cfg
}

fn main() {
    let instr: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    println!(
        "{:<14} {:>6} {:>9} {:>9} {:>10} {:>8}",
        "benchmark", "IPC", "LLC MPKI", "BW GB/s", "Minstr/s", "host s"
    );
    let mut total_host = 0.0;
    for profile in suite() {
        let mix = MixSpec::homogeneous(profile.name, 1, 42);
        let mut sys = MulticoreSystem::new(single_core_prs(), mix.sources()).expect("valid config");
        let r = sys
            .run(RunSpec::with_default_warmup(instr))
            .expect("run succeeds");
        let c = &r.cores[0];
        total_host += r.host_seconds;
        println!(
            "{:<14} {:>6.3} {:>9.2} {:>9.2} {:>10.1} {:>8.2}",
            c.label,
            c.ipc,
            c.llc_mpki,
            c.bandwidth_gbps,
            c.instructions as f64 / r.host_seconds / 1e6,
            r.host_seconds
        );
    }
    println!("total measured host time: {total_host:.1} s");
}
