// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_workloads::mix::MixSpec;

fn scaled(f: u32) -> SystemConfig {
    // PRS scale-down of the 32-core target by factor 32/f cores.
    let mut cfg = SystemConfig::target_32core();
    cfg.num_cores = f;
    cfg.llc.num_slices = f;
    let (cols, rows) = match f {
        32 => (8, 4),
        16 => (4, 4),
        8 => (4, 2),
        4 => (2, 2),
        2 => (2, 1),
        1 => (1, 1),
        _ => unreachable!(),
    };
    cfg.noc.mesh_cols = cols;
    cfg.noc.mesh_rows = rows;
    // Table I NoC: 32:4x32, 16:4x16, 8:2x16, 4:2x8, 2:1x8, 1:1x4
    let (csl, lbw) = match f {
        32 => (4, 32.0),
        16 => (4, 16.0),
        8 => (2, 16.0),
        4 => (2, 8.0),
        2 => (1, 8.0),
        1 => (1, 4.0),
        _ => unreachable!(),
    };
    cfg.noc.cross_section_links = csl;
    cfg.noc.link_bandwidth_gbps = lbw;
    // Table I DRAM MC-first: 32:8x16, 16:4x16, 8:2x16, 4:1x16, 2:1x8, 1:1x4
    let (mcs, mbw) = match f {
        32 => (8, 16.0),
        16 => (4, 16.0),
        8 => (2, 16.0),
        4 => (1, 16.0),
        2 => (1, 8.0),
        1 => (1, 4.0),
        _ => unreachable!(),
    };
    cfg.dram.num_controllers = mcs;
    cfg.dram.controller_bandwidth_gbps = mbw;
    cfg
}

fn nrs_1core() -> SystemConfig {
    let mut cfg = SystemConfig::target_32core();
    cfg.num_cores = 1;
    // Keep shared resources at target size; mesh must still cover 1 core
    // but keep the 4x8 mesh so NUCA distances stay target-like.
    cfg
}

fn main() {
    let instr = 1_000_000u64;
    for name in [
        "lbm_r",
        "mcf_r",
        "gcc_r",
        "leela_r",
        "bwaves_r",
        "xalancbmk_r",
    ] {
        let run = |cfg: SystemConfig, n: usize| -> (f64, f64) {
            let mix = MixSpec::homogeneous(name, n, 42);
            let mut sys = MulticoreSystem::new(cfg, mix.sources()).unwrap();
            let r = sys.run(RunSpec::with_default_warmup(instr)).unwrap();
            // mean IPC across cores & host time
            let m = r.cores.iter().map(|c| c.ipc).sum::<f64>() / r.cores.len() as f64;
            (m, r.host_seconds)
        };
        let (prs1, t1) = run(scaled(1), 1);
        let (nrs1, _) = run(nrs_1core(), 1);
        let (prs2, _) = run(scaled(2), 2);
        let (prs4, _) = run(scaled(4), 4);
        let (prs8, _) = run(scaled(8), 8);
        let (prs16, _) = run(scaled(16), 16);
        let (tgt, t32) = run(scaled(32), 32);
        println!("{name:<13} tgt={tgt:.3} prs1={prs1:.3} ({:+.1}%) nrs1={nrs1:.3} ({:+.1}%) prs2={prs2:.3} prs4={prs4:.3} prs8={prs8:.3} prs16={prs16:.3} speedup={:.1}x",
            (prs1/tgt-1.0)*100.0, (nrs1/tgt-1.0)*100.0, t32/t1);
    }
}
