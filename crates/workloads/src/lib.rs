//! # sms-workloads — synthetic SPEC CPU2017-like workloads
//!
//! Statistical benchmark profiles ([`spec`]), a deterministic micro-op
//! generator implementing the simulator's
//! [`InstructionSource`](sms_sim::trace::InstructionSource) ([`generator`]),
//! and multiprogram mix construction with the paper's train/eval splits
//! ([`mix`]).
//!
//! # Example
//!
//! Run a 2-core homogeneous `lbm_r` mix:
//!
//! ```
//! use sms_sim::config::SystemConfig;
//! use sms_sim::system::{MulticoreSystem, RunSpec};
//! use sms_workloads::mix::MixSpec;
//!
//! # fn main() -> Result<(), sms_sim::error::SimError> {
//! let mut cfg = SystemConfig::target_32core();
//! cfg.num_cores = 2;
//! cfg.llc.num_slices = 2;
//! cfg.noc.mesh_cols = 2;
//! cfg.noc.mesh_rows = 1;
//!
//! let mix = MixSpec::homogeneous("lbm_r", 2, 42);
//! let mut system = MulticoreSystem::new(cfg, mix.sources())?;
//! let result = system.run(RunSpec::with_default_warmup(50_000))?;
//! assert!(result.cores[0].ipc > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generator;
pub mod mix;
pub mod multithreaded;
pub mod rng;
pub mod spec;
pub mod trace_io;

pub use generator::SyntheticSource;
pub use mix::MixSpec;
pub use spec::{suite, BenchmarkProfile};
