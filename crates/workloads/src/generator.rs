//! Expansion of a [`BenchmarkProfile`] into a deterministic micro-op
//! stream implementing [`InstructionSource`].
//!
//! Each generated instance owns a disjoint address-space window (selected
//! by `instance_id`), so co-running instances contend for shared *capacity*
//! and *bandwidth* without ever sharing data — the multiprogram model of
//! the paper. Homogeneous mixes use the same profile with different seeds
//! and starting offsets ("co-running instances of the same benchmark, all
//! starting at slightly different offsets", §IV-2).

use sms_sim::trace::{InstructionSource, MicroOp};

use crate::rng::SplitMix64;
use crate::spec::{BenchmarkProfile, NUM_LAYERS};

/// Bits of private address space per instance (1 TiB windows).
const INSTANCE_SPACE_BITS: u32 = 40;
/// Offset of the code region within an instance's window.
const CODE_REGION_OFFSET: u64 = 1 << 38;
/// Streaming accesses touch 8-byte elements.
const STREAM_ELEMENT_BYTES: u64 = 8;
/// Average fetch blocks between control-flow discontinuities in the code
/// stream.
const CODE_JUMP_PERIOD: u64 = 32;
/// Size of the hot (L1-I-resident) code region.
const HOT_CODE_BYTES: u64 = 8 * 1024;

/// A deterministic micro-op generator for one benchmark instance.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    profile: BenchmarkProfile,
    rng: SplitMix64,
    /// Base byte address of this instance's private window.
    base: u64,
    /// Start offset of each working-set layer within the window.
    layer_starts: [u64; NUM_LAYERS],
    /// Streaming cursor per layer (bytes within the layer).
    stream_cursors: [u64; NUM_LAYERS],
    /// Cumulative layer-selection thresholds.
    layer_cum: [f64; NUM_LAYERS],
    /// Op-type thresholds: load / store / branch (else compute).
    op_cum: [f64; 3],
    /// Cold-path code-fetch cursor (bytes within the code region).
    code_cursor: u64,
    /// Hot-loop code-fetch cursor.
    hot_code_cursor: u64,
    code_rng: SplitMix64,
}

impl SyntheticSource {
    /// Create instance `instance_id` of `profile`, seeded by `seed`.
    ///
    /// Distinct `(instance_id, seed)` pairs give independent streams in
    /// disjoint address spaces; equal pairs give identical streams.
    ///
    /// # Panics
    ///
    /// Panics if the profile is inconsistent
    /// ([`BenchmarkProfile::is_consistent`]) or `instance_id` does not fit
    /// the address-space partitioning (max 255, matching the simulator's
    /// core-id width).
    pub fn new(profile: BenchmarkProfile, instance_id: u32, seed: u64) -> Self {
        assert!(
            profile.is_consistent(),
            "inconsistent profile {}",
            profile.name
        );
        assert!(instance_id < 256, "instance_id {instance_id} out of range");

        let base = u64::from(instance_id) << INSTANCE_SPACE_BITS;

        // Lay the data layers out back to back, 1 MiB-aligned.
        let mut layer_starts = [0u64; NUM_LAYERS];
        let mut cursor = 0u64;
        for (i, layer) in profile.layers.iter().enumerate() {
            layer_starts[i] = cursor;
            let aligned = layer.bytes.div_ceil(1 << 20) << 20;
            cursor += aligned.max(1 << 20);
        }
        assert!(
            cursor < CODE_REGION_OFFSET,
            "data layers overflow the instance window"
        );

        let mut layer_cum = [0.0f64; NUM_LAYERS];
        let mut acc = 0.0;
        for (i, layer) in profile.layers.iter().enumerate() {
            acc += layer.weight;
            layer_cum[i] = acc;
        }
        // Guard against floating-point shortfall in the last bucket.
        layer_cum[NUM_LAYERS - 1] = 1.0;

        // Emission probabilities per *op*: compute ops carry
        // `mean_compute_run` instructions on average, so their op-level
        // weight is the instruction-level weight divided by the run length.
        let compute_frac = 1.0 - profile.load_frac - profile.store_frac - profile.branch_frac;
        let w_compute = compute_frac / f64::from(profile.mean_compute_run);
        let total = profile.load_frac + profile.store_frac + profile.branch_frac + w_compute;
        let op_cum = [
            profile.load_frac / total,
            (profile.load_frac + profile.store_frac) / total,
            (profile.load_frac + profile.store_frac + profile.branch_frac) / total,
        ];

        let mut rng = SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F);
        // "Slightly different offsets": randomize the streaming cursors.
        let mut stream_cursors = [0u64; NUM_LAYERS];
        for (i, layer) in profile.layers.iter().enumerate() {
            if layer.bytes >= STREAM_ELEMENT_BYTES {
                stream_cursors[i] =
                    rng.next_below(layer.bytes / STREAM_ELEMENT_BYTES) * STREAM_ELEMENT_BYTES;
            }
        }
        let code_cursor = rng.next_below(profile.code_bytes / 64) * 64;

        Self {
            code_rng: SplitMix64::new(seed ^ 0x5851_F42D_4C95_7F2D),
            profile,
            rng,
            base,
            layer_starts,
            stream_cursors,
            layer_cum,
            op_cum,
            code_cursor,
            hot_code_cursor: 0,
        }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Generate a data address (and whether a load at it chases pointers).
    fn data_address(&mut self) -> (u64, bool) {
        let r = self.rng.next_f64();
        let mut layer = NUM_LAYERS - 1;
        for (i, &cum) in self.layer_cum.iter().enumerate() {
            if r < cum {
                layer = i;
                break;
            }
        }
        let bytes = self.profile.layers[layer].bytes;
        debug_assert!(bytes > 0, "zero-weight layers are never selected");
        let start = self.base + self.layer_starts[layer];

        if self.rng.next_f64() < self.profile.stream_frac {
            // Sequential 8-byte-element walk: eight accesses per line.
            let c = self.stream_cursors[layer];
            self.stream_cursors[layer] = (c + STREAM_ELEMENT_BYTES) % bytes;
            (start + c, false)
        } else {
            let line = self.rng.next_below(bytes.div_ceil(64).max(1));
            let dependent = self.rng.next_f64() < self.profile.chase_frac;
            (start + line * 64, dependent)
        }
    }
}

impl InstructionSource for SyntheticSource {
    fn next_op(&mut self) -> MicroOp {
        let r = self.rng.next_f64();
        if r < self.op_cum[0] {
            let (addr, dependent) = self.data_address();
            MicroOp::Load { addr, dependent }
        } else if r < self.op_cum[1] {
            let (addr, _) = self.data_address();
            MicroOp::Store { addr }
        } else if r < self.op_cum[2] {
            MicroOp::Branch {
                mispredicted: self.rng.next_f64() < self.profile.branch_miss_rate,
            }
        } else {
            // Uniform on [1, 2*mean-1]: mean = mean_compute_run.
            let span = u64::from(2 * self.profile.mean_compute_run - 1);
            let count = 1 + self.rng.next_below(span) as u32;
            MicroOp::Compute { count }
        }
    }

    fn code_addr(&mut self) -> u64 {
        // Two-level code locality: most fetches hit a hot, L1-I-resident
        // region (inner loops); the rest walk the full footprint
        // sequentially with occasional jumps (cold paths, unwinding,
        // library code). Real programs do not stream their entire binary
        // through the I-cache, so cold fetches are rate-limited by
        // `code_hot_frac`.
        let hot = HOT_CODE_BYTES.min(self.profile.code_bytes);
        if self.code_rng.next_f64() < self.profile.code_hot_frac {
            self.hot_code_cursor = (self.hot_code_cursor + 64) % hot;
            return self.base + CODE_REGION_OFFSET + self.hot_code_cursor;
        }
        if self.code_rng.next_below(CODE_JUMP_PERIOD) == 0 {
            self.code_cursor = self.code_rng.next_below(self.profile.code_bytes / 64) * 64;
        } else {
            self.code_cursor = (self.code_cursor + 64) % self.profile.code_bytes;
        }
        self.base + CODE_REGION_OFFSET + self.code_cursor
    }

    fn label(&self) -> &str {
        self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::by_name;

    fn source(name: &str, id: u32, seed: u64) -> SyntheticSource {
        SyntheticSource::new(by_name(name).unwrap(), id, seed)
    }

    fn op_histogram(src: &mut SyntheticSource, n: u64) -> (f64, f64, f64, u64) {
        let (mut loads, mut stores, mut branches, mut instrs) = (0u64, 0u64, 0u64, 0u64);
        while instrs < n {
            match src.next_op() {
                MicroOp::Load { .. } => {
                    loads += 1;
                    instrs += 1;
                }
                MicroOp::Store { .. } => {
                    stores += 1;
                    instrs += 1;
                }
                MicroOp::Branch { .. } => {
                    branches += 1;
                    instrs += 1;
                }
                MicroOp::Compute { count } => instrs += u64::from(count),
            }
        }
        let t = instrs as f64;
        (
            loads as f64 / t,
            stores as f64 / t,
            branches as f64 / t,
            instrs,
        )
    }

    #[test]
    fn instruction_mix_matches_profile() {
        let profile = by_name("gcc_r").unwrap();
        let mut src = source("gcc_r", 0, 1);
        let (l, s, b, _) = op_histogram(&mut src, 2_000_000);
        assert!((l - profile.load_frac).abs() < 0.01, "load frac {l}");
        assert!((s - profile.store_frac).abs() < 0.01, "store frac {s}");
        assert!((b - profile.branch_frac).abs() < 0.01, "branch frac {b}");
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = source("mcf_r", 3, 99);
        let mut b = source("mcf_r", 3, 99);
        for _ in 0..10_000 {
            assert_eq!(a.next_op(), b.next_op());
            assert_eq!(a.code_addr(), b.code_addr());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = source("mcf_r", 3, 1);
        let mut b = source("mcf_r", 3, 2);
        let mut diff = 0;
        for _ in 0..1000 {
            if a.next_op() != b.next_op() {
                diff += 1;
            }
        }
        assert!(diff > 100);
    }

    #[test]
    fn instances_have_disjoint_address_spaces() {
        let mut a = source("lbm_r", 0, 7);
        let mut b = source("lbm_r", 1, 7);
        let collect = |s: &mut SyntheticSource| {
            let mut addrs = Vec::new();
            while addrs.len() < 1000 {
                match s.next_op() {
                    MicroOp::Load { addr, .. } | MicroOp::Store { addr } => addrs.push(addr),
                    _ => {}
                }
            }
            addrs
        };
        let aa = collect(&mut a);
        let bb = collect(&mut b);
        let window = 1u64 << INSTANCE_SPACE_BITS;
        assert!(aa.iter().all(|&x| x < window));
        assert!(bb.iter().all(|&x| (window..2 * window).contains(&x)));
    }

    #[test]
    fn chaser_emits_dependent_loads() {
        let mut mcf = source("mcf_r", 0, 5);
        let mut dependent = 0;
        let mut loads = 0;
        for _ in 0..100_000 {
            if let MicroOp::Load { dependent: d, .. } = mcf.next_op() {
                loads += 1;
                if d {
                    dependent += 1;
                }
            }
        }
        let frac = f64::from(dependent) / f64::from(loads);
        // chase applies only to non-streaming loads: expect roughly
        // (1 - stream) * chase = 0.9 * 0.7 = 0.63.
        assert!((frac - 0.63).abs() < 0.05, "dependent frac {frac}");
    }

    #[test]
    fn streamer_emits_no_dependent_loads() {
        let mut lbm = source("lbm_r", 0, 5);
        for _ in 0..50_000 {
            if let MicroOp::Load { dependent, .. } = lbm.next_op() {
                assert!(!dependent);
            }
        }
    }

    #[test]
    fn addresses_fall_in_declared_layers() {
        let profile = by_name("xz_r").unwrap();
        let mut src = source("xz_r", 0, 3);
        let total_span: u64 = profile
            .layers
            .iter()
            .map(|l| (l.bytes.div_ceil(1 << 20) << 20).max(1 << 20))
            .sum();
        for _ in 0..100_000 {
            if let MicroOp::Load { addr, .. } | MicroOp::Store { addr } = src.next_op() {
                assert!(addr < total_span, "addr {addr:#x} beyond layers");
            }
        }
    }

    #[test]
    fn code_addresses_stay_in_code_region() {
        let profile = by_name("gcc_r").unwrap();
        let mut src = source("gcc_r", 2, 3);
        let base = 2u64 << INSTANCE_SPACE_BITS;
        for _ in 0..10_000 {
            let a = src.code_addr();
            assert!(a >= base + CODE_REGION_OFFSET);
            assert!(a < base + CODE_REGION_OFFSET + profile.code_bytes);
        }
    }

    #[test]
    fn offsets_differ_between_instances() {
        // Same seed, different instance ids still start at the same place
        // within their window (seed controls offsets), so use different
        // seeds for offsets as mixes do.
        let a = source("bwaves_r", 0, 1).stream_cursors;
        let b = source("bwaves_r", 0, 2).stream_cursors;
        assert_ne!(a, b, "different seeds must give different start offsets");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn instance_id_bounds_checked() {
        let _ = SyntheticSource::new(by_name("gcc_r").unwrap(), 256, 0);
    }

    #[test]
    fn compute_runs_have_requested_mean() {
        let mut src = source("lbm_r", 0, 11); // mean run 6
        let mut total = 0u64;
        let mut n = 0u64;
        for _ in 0..200_000 {
            if let MicroOp::Compute { count } = src.next_op() {
                total += u64::from(count);
                n += 1;
            }
        }
        let mean = total as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean run {mean}");
    }
}
