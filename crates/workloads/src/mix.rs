//! Multiprogram workload-mix construction and train/eval splits.
//!
//! Mirrors the paper's §IV-2 methodology:
//!
//! * **Homogeneous mixes**: `T` co-running instances of the same benchmark
//!   with different starting offsets.
//! * **Heterogeneous mixes**: `T` benchmarks drawn (with repetition) from a
//!   pool, seeded for reproducibility.
//! * **Splits**: leave-one-out over the 29-benchmark suite for homogeneous
//!   experiments; a random 8-benchmark evaluation set against the 21
//!   remaining training benchmarks for heterogeneous experiments.

use serde::{Deserialize, Serialize};
use sms_sim::trace::InstructionSource;

use crate::generator::SyntheticSource;
use crate::rng::SplitMix64;
use crate::spec::{suite, BenchmarkProfile};

/// A multiprogram workload mix: one benchmark name per core.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MixSpec {
    /// Benchmark names, one per core slot.
    pub benchmarks: Vec<String>,
    /// Seed controlling the instances' private streams and offsets.
    pub seed: u64,
}

impl MixSpec {
    /// A homogeneous mix: `t` instances of `name`.
    ///
    /// # Examples
    ///
    /// ```
    /// let mix = sms_workloads::mix::MixSpec::homogeneous("lbm_r", 4, 1);
    /// assert_eq!(mix.benchmarks.len(), 4);
    /// assert!(mix.benchmarks.iter().all(|b| b == "lbm_r"));
    /// ```
    pub fn homogeneous(name: &str, t: usize, seed: u64) -> Self {
        Self {
            benchmarks: vec![name.to_owned(); t],
            seed,
        }
    }

    /// A heterogeneous mix of `t` benchmarks drawn uniformly (with
    /// repetition) from `pool`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty or `t` is zero.
    pub fn random(pool: &[BenchmarkProfile], t: usize, seed: u64) -> Self {
        assert!(!pool.is_empty(), "pool must be non-empty");
        assert!(t > 0, "mix size must be non-zero");
        let mut rng = SplitMix64::new(seed ^ 0xC2B2_AE3D_27D4_EB4F);
        let benchmarks = (0..t)
            .map(|_| {
                pool[rng.next_below(pool.len() as u64) as usize]
                    .name
                    .to_owned()
            })
            .collect();
        Self { benchmarks, seed }
    }

    /// A mix of `t` instances filled round-robin from `names`
    /// (`names[i % names.len()]` for slot `i`) — the CLI convention for
    /// spreading a short benchmark list over a machine's cores.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty or `t` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// let names = ["lbm_r".to_owned(), "mcf_r".to_owned()];
    /// let mix = sms_workloads::mix::MixSpec::fill(&names, 4, 1);
    /// assert_eq!(mix.benchmarks, ["lbm_r", "mcf_r", "lbm_r", "mcf_r"]);
    /// ```
    pub fn fill(names: &[String], t: usize, seed: u64) -> Self {
        assert!(!names.is_empty(), "names must be non-empty");
        assert!(t > 0, "mix size must be non-zero");
        Self {
            benchmarks: (0..t).map(|i| names[i % names.len()].clone()).collect(),
            seed,
        }
    }

    /// Number of slots (cores) in the mix.
    pub fn len(&self) -> usize {
        self.benchmarks.len()
    }

    /// Whether the mix has no slots.
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }

    /// Truncate the mix to its first `t` slots (used when running a mix on
    /// a scale model with fewer cores than the target).
    pub fn truncated(&self, t: usize) -> Self {
        Self {
            benchmarks: self.benchmarks.iter().take(t).cloned().collect(),
            seed: self.seed,
        }
    }

    /// Instantiate one [`SyntheticSource`] per slot, each with a distinct
    /// derived seed and a disjoint address-space window.
    ///
    /// # Panics
    ///
    /// Panics if a benchmark name is unknown or the mix exceeds 255 slots.
    pub fn sources(&self) -> Vec<Box<dyn InstructionSource>> {
        self.benchmarks
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let profile = crate::spec::by_name(name)
                    // sms-lint: allow(E1): documented panic; specs are validated against the suite upstream
                    .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
                let instance_seed = derive_seed(self.seed, i as u64);
                Box::new(SyntheticSource::new(profile, i as u32, instance_seed))
                    as Box<dyn InstructionSource>
            })
            .collect()
    }
}

/// Derive an independent per-instance seed from a mix seed.
fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut r = SplitMix64::new(seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    r.next_u64()
}

/// Train/eval split of the full suite for heterogeneous experiments:
/// `eval_count` random benchmarks form the evaluation set, the rest the
/// training set (paper: 8 eval / 21 train).
///
/// # Panics
///
/// Panics if `eval_count` is zero or not smaller than the suite size.
pub fn eval_train_split(
    eval_count: usize,
    seed: u64,
) -> (Vec<BenchmarkProfile>, Vec<BenchmarkProfile>) {
    let mut all = suite();
    assert!(eval_count > 0 && eval_count < all.len());
    let mut rng = SplitMix64::new(seed ^ 0x1656_67B1_9E37_79F9);
    // Fisher-Yates partial shuffle.
    for i in 0..eval_count {
        let j = i + rng.next_below((all.len() - i) as u64) as usize;
        all.swap(i, j);
    }
    let train = all.split_off(eval_count);
    (all, train)
}

/// Leave-one-out folds over the suite for homogeneous experiments: yields
/// `(held-out benchmark, remaining 28 training benchmarks)` per fold.
pub fn leave_one_out() -> Vec<(BenchmarkProfile, Vec<BenchmarkProfile>)> {
    let all = suite();
    (0..all.len())
        .map(|i| {
            let held = all[i].clone();
            let rest = all
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, p)| p.clone())
                .collect();
            (held, rest)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_mix_shape() {
        let m = MixSpec::homogeneous("gcc_r", 32, 7);
        assert_eq!(m.len(), 32);
        assert!(m.benchmarks.iter().all(|b| b == "gcc_r"));
    }

    #[test]
    fn random_mix_is_deterministic() {
        let pool = suite();
        let a = MixSpec::random(&pool, 32, 5);
        let b = MixSpec::random(&pool, 32, 5);
        assert_eq!(a, b);
        let c = MixSpec::random(&pool, 32, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn random_mix_draws_from_pool() {
        let pool: Vec<_> = suite().into_iter().take(3).collect();
        let names: Vec<&str> = pool.iter().map(|p| p.name).collect();
        let m = MixSpec::random(&pool, 64, 9);
        assert!(m.benchmarks.iter().all(|b| names.contains(&b.as_str())));
        // With 64 draws from 3 benchmarks, all should appear.
        for n in names {
            assert!(m.benchmarks.iter().any(|b| b == n), "{n} missing");
        }
    }

    #[test]
    fn truncation_preserves_prefix_and_seed() {
        let pool = suite();
        let m = MixSpec::random(&pool, 32, 5);
        let t = m.truncated(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.benchmarks[..], m.benchmarks[..4]);
        assert_eq!(t.seed, m.seed);
    }

    #[test]
    fn sources_have_distinct_labels_matching_mix() {
        let m = MixSpec::homogeneous("mcf_r", 4, 3);
        let sources = m.sources();
        assert_eq!(sources.len(), 4);
        for s in &sources {
            assert_eq!(s.label(), "mcf_r");
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let m = MixSpec {
            benchmarks: vec!["not_a_benchmark".into()],
            seed: 0,
        };
        let _ = m.sources();
    }

    #[test]
    fn eval_train_split_partition() {
        let (eval, train) = eval_train_split(8, 42);
        assert_eq!(eval.len(), 8);
        assert_eq!(train.len(), 21);
        let all: std::collections::HashSet<&str> =
            eval.iter().chain(train.iter()).map(|p| p.name).collect();
        assert_eq!(all.len(), 29, "split must partition the suite");
    }

    #[test]
    fn eval_train_split_deterministic() {
        let (e1, _) = eval_train_split(8, 42);
        let (e2, _) = eval_train_split(8, 42);
        assert_eq!(e1, e2);
        let (e3, _) = eval_train_split(8, 43);
        assert_ne!(e1, e3);
    }

    #[test]
    fn leave_one_out_folds() {
        let folds = leave_one_out();
        assert_eq!(folds.len(), 29);
        for (held, rest) in &folds {
            assert_eq!(rest.len(), 28);
            assert!(rest.iter().all(|p| p.name != held.name));
        }
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..64).map(|i| derive_seed(1234, i)).collect();
        assert_eq!(seeds.len(), 64);
    }
}
