//! Data-parallel multi-threaded workloads (paper §V-E6, future work).
//!
//! The paper conjectures that scale-model simulation "might be easily
//! applied to data-parallel multi-threaded workloads in which all threads
//! execute the same code (on different data elements) and there is very
//! little or no communication between threads", behaving like the
//! homogeneous multiprogram mixes. This module provides exactly that
//! workload class so the conjecture can be tested:
//!
//! * all threads run the same benchmark profile (same code footprint, in
//!   a **shared** code region),
//! * the largest working-set layer (the dataset) is **shared read-only**,
//!   with each thread streaming its own chunk — so threads cooperate on
//!   LLC capacity instead of competing with private copies,
//! * stores always go to per-thread private regions (private outputs),
//!   so no write sharing and no coherence traffic exists — matching the
//!   paper's "no communication" premise.

use sms_sim::trace::{InstructionSource, MicroOp};

use crate::generator::SyntheticSource;
use crate::rng::SplitMix64;
use crate::spec::{BenchmarkProfile, NUM_LAYERS};

/// Address-space window reserved for shared data (above any per-instance
/// window; instance ids are < 256).
const SHARED_BASE: u64 = 256u64 << 40;

/// One thread of a data-parallel application.
///
/// Wraps a [`SyntheticSource`] and rewrites its dataset-layer loads and
/// code fetches into the shared region; each thread's sequential streaming
/// is confined to its own chunk of the shared dataset.
#[derive(Debug, Clone)]
pub struct DataParallelThread {
    inner: SyntheticSource,
    /// Start of this instance's private window (rewritten to shared).
    private_base: u64,
    /// Byte range of the dataset layer within the instance window.
    dataset_start: u64,
    dataset_end: u64,
    /// This thread's chunk of the shared dataset.
    chunk_start: u64,
    chunk_len: u64,
    /// Offset of the code region within the window.
    code_offset: u64,
    label: String,
    rng: SplitMix64,
}

impl DataParallelThread {
    /// Create thread `thread_id` of `threads` running `profile`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero, `thread_id >= threads`, or the profile
    /// is inconsistent.
    pub fn new(profile: BenchmarkProfile, thread_id: u32, threads: u32, seed: u64) -> Self {
        assert!(threads > 0, "need at least one thread");
        assert!(thread_id < threads, "thread_id out of range");
        let label = format!("{}#mt", profile.name);

        // Reconstruct the generator's layer placement (back-to-back,
        // 1 MiB aligned) to locate the dataset (last) layer.
        let mut starts = [0u64; NUM_LAYERS];
        let mut cursor = 0u64;
        for (i, layer) in profile.layers.iter().enumerate() {
            starts[i] = cursor;
            let aligned = layer.bytes.div_ceil(1 << 20) << 20;
            cursor += aligned.max(1 << 20);
        }
        let dataset_idx = NUM_LAYERS - 1;
        let dataset_start = starts[dataset_idx];
        let dataset_bytes = profile.layers[dataset_idx].bytes.max(1 << 20);
        let chunk_len = (dataset_bytes / u64::from(threads)).max(64);

        let inner = SyntheticSource::new(profile, thread_id, seed);
        Self {
            private_base: u64::from(thread_id) << 40,
            dataset_start,
            dataset_end: dataset_start + dataset_bytes,
            chunk_start: u64::from(thread_id) * chunk_len,
            chunk_len,
            code_offset: 1 << 38,
            label,
            inner,
            rng: SplitMix64::new(seed ^ 0x0DDB_1A5E_5BAD_5EED),
        }
    }

    /// Rewrite a private dataset-layer address into the shared region,
    /// confining sequential positions to this thread's chunk.
    fn shared_addr(&mut self, addr: u64) -> u64 {
        let offset = addr - self.private_base;
        debug_assert!(offset >= self.dataset_start && offset < self.dataset_end);
        let within = offset - self.dataset_start;
        // Random accesses roam the whole shared dataset; sequential ones
        // are folded into the thread's chunk. We cannot see which pattern
        // produced the address, so fold deterministically and let a small
        // random fraction roam (read-only sharing makes both safe).
        if self.rng.next_below(8) == 0 {
            SHARED_BASE + self.dataset_start + within
        } else {
            SHARED_BASE + self.dataset_start + self.chunk_start + (within % self.chunk_len)
        }
    }
}

impl InstructionSource for DataParallelThread {
    fn next_op(&mut self) -> MicroOp {
        match self.inner.next_op() {
            MicroOp::Load { addr, dependent } => {
                let offset = addr.wrapping_sub(self.private_base);
                if offset >= self.dataset_start && offset < self.dataset_end {
                    MicroOp::Load {
                        addr: self.shared_addr(addr),
                        dependent,
                    }
                } else {
                    MicroOp::Load { addr, dependent }
                }
            }
            // Stores always stay private (per-thread outputs; no write
            // sharing, hence no coherence in the paper's premise).
            other => other,
        }
    }

    fn code_addr(&mut self) -> u64 {
        // All threads fetch the same shared code image.
        let a = self.inner.code_addr();
        SHARED_BASE + self.code_offset + (a - self.private_base - self.code_offset)
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Build the thread sources for a `threads`-way data-parallel run of
/// `profile`.
pub fn data_parallel_sources(
    profile: &BenchmarkProfile,
    threads: u32,
    seed: u64,
) -> Vec<Box<dyn InstructionSource>> {
    (0..threads)
        .map(|t| {
            let mut r = SplitMix64::new(seed ^ (u64::from(t) << 32));
            Box::new(DataParallelThread::new(
                profile.clone(),
                t,
                threads,
                r.next_u64(),
            )) as Box<dyn InstructionSource>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::by_name;

    fn thread(name: &str, id: u32, n: u32) -> DataParallelThread {
        DataParallelThread::new(by_name(name).unwrap(), id, n, 7)
    }

    #[test]
    fn dataset_loads_land_in_shared_region() {
        let mut t = thread("lbm_r", 1, 4);
        let mut shared = 0u64;
        let mut private = 0u64;
        for _ in 0..50_000 {
            if let MicroOp::Load { addr, .. } = t.next_op() {
                if addr >= SHARED_BASE {
                    shared += 1;
                } else {
                    private += 1;
                    assert!(addr >> 40 == 1, "private loads stay in own window");
                }
            }
        }
        assert!(shared > 0, "lbm's dataset layer must produce shared loads");
        assert!(private > 0, "hot layers stay private");
    }

    #[test]
    fn stores_never_touch_shared_region() {
        let mut t = thread("lbm_r", 2, 4);
        for _ in 0..50_000 {
            if let MicroOp::Store { addr } = t.next_op() {
                assert!(addr < SHARED_BASE, "stores must stay private");
            }
        }
    }

    #[test]
    fn code_is_shared_across_threads() {
        let mut a = thread("gcc_r", 0, 4);
        let mut b = thread("gcc_r", 3, 4);
        let ca = a.code_addr();
        let cb = b.code_addr();
        assert!(ca >= SHARED_BASE && cb >= SHARED_BASE);
        // Same shared code window (same upper bits).
        assert_eq!(ca >> 30, cb >> 30);
    }

    #[test]
    fn threads_stream_disjoint_chunks() {
        // Collect the chunk-confined (non-roaming) sequential shared loads
        // of two threads and check their ranges are disjoint.
        let range = |id: u32| -> (u64, u64) {
            let t = thread("lbm_r", id, 4);
            (
                SHARED_BASE + t.dataset_start + t.chunk_start,
                SHARED_BASE + t.dataset_start + t.chunk_start + t.chunk_len,
            )
        };
        let (a0, a1) = range(0);
        let (b0, b1) = range(1);
        assert!(a1 <= b0 || b1 <= a0, "chunks must not overlap");
    }

    #[test]
    fn sources_builder_shapes() {
        let profile = by_name("roms_r").unwrap();
        let sources = data_parallel_sources(&profile, 4, 9);
        assert_eq!(sources.len(), 4);
        for s in &sources {
            assert_eq!(s.label(), "roms_r#mt");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn thread_id_bounds() {
        let _ = thread("gcc_r", 4, 4);
    }

    #[test]
    fn runs_on_the_simulator() {
        use sms_sim::config::SystemConfig;
        use sms_sim::system::{MulticoreSystem, RunSpec};
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = 4;
        cfg.llc.num_slices = 4;
        cfg.noc.mesh_cols = 2;
        cfg.noc.mesh_rows = 2;
        let profile = by_name("roms_r").unwrap();
        let mut sys = MulticoreSystem::new(cfg, data_parallel_sources(&profile, 4, 1)).unwrap();
        let r = sys
            .run(RunSpec {
                warmup_instructions: 5_000,
                measure_instructions: 40_000,
            })
            .unwrap();
        for c in &r.cores {
            assert!(c.ipc > 0.0);
        }
    }
}
