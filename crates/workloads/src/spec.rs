//! Synthetic benchmark profiles modelled after the SPEC CPU2017 suite.
//!
//! Each [`BenchmarkProfile`] is a compact statistical description of a
//! benchmark: instruction mix, branch predictability, a four-layer working
//! set (L1-resident, L2-scale, LLC-scale, DRAM-scale), access-pattern mix
//! (streaming / random / pointer-chasing) and code footprint. The
//! [`generator`](crate::generator) module expands a profile into a
//! deterministic micro-op stream.
//!
//! The 29 profiles span the same qualitative range as the paper's SPEC
//! CPU2017 setup: compute-bound kernels (`exchange2`, `leela`, `povray`),
//! bandwidth-bound streamers (`lbm`, `bwaves`, `fotonik3d`, `roms`),
//! latency-bound pointer chasers (`mcf`, `omnetpp`, `xalancbmk`) and
//! everything in between. Parameters are hand-calibrated for qualitative
//! fidelity (LLC-MPKI ordering, bandwidth diversity), not for absolute
//! SPEC scores — see DESIGN.md for the substitution rationale.

use serde::{Deserialize, Serialize};

/// Number of working-set layers in a profile.
pub const NUM_LAYERS: usize = 4;

/// One working-set layer: a region of `bytes` receiving `weight` of the
/// benchmark's data accesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WsLayer {
    /// Region size in bytes (0 disables the layer).
    pub bytes: u64,
    /// Fraction of data accesses landing in this layer; weights across the
    /// profile's layers must sum to 1.
    pub weight: f64,
}

const fn kib(k: u64) -> u64 {
    k * 1024
}
const fn mib(m: u64) -> u64 {
    m * 1024 * 1024
}

/// Statistical description of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// SPEC-style benchmark name.
    pub name: &'static str,
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of instructions that are conditional branches.
    pub branch_frac: f64,
    /// Fraction of branches the (hybrid) predictor mispredicts.
    pub branch_miss_rate: f64,
    /// Working-set layers from hottest/smallest to coldest/largest.
    pub layers: [WsLayer; NUM_LAYERS],
    /// Fraction of data accesses that stream sequentially through their
    /// layer (8-byte elements, so eight accesses share a cache line).
    pub stream_frac: f64,
    /// Fraction of *random* loads that are pointer-chasing (dependent on
    /// the previous load).
    pub chase_frac: f64,
    /// Code footprint in bytes (drives the L1-I model).
    pub code_bytes: u64,
    /// Fraction of instruction fetches served from the hot (L1-I-resident)
    /// code region; the remainder walk the full footprint.
    pub code_hot_frac: f64,
    /// Mean length of compute-instruction runs between memory/branch ops.
    pub mean_compute_run: u32,
}

impl BenchmarkProfile {
    /// Check internal consistency: fractions in range, layer weights
    /// summing to 1 (within tolerance), non-zero code footprint.
    pub fn is_consistent(&self) -> bool {
        let fracs = self.load_frac + self.store_frac + self.branch_frac;
        let wsum: f64 = self.layers.iter().map(|l| l.weight).sum();
        self.load_frac >= 0.0
            && self.store_frac >= 0.0
            && self.branch_frac >= 0.0
            && fracs < 1.0
            && (0.0..=1.0).contains(&self.branch_miss_rate)
            && (0.0..=1.0).contains(&self.stream_frac)
            && (0.0..=1.0).contains(&self.chase_frac)
            && (wsum - 1.0).abs() < 1e-9
            && self.layers.iter().all(|l| l.weight >= 0.0)
            && self
                .layers
                .iter()
                .all(|l| l.weight == 0.0 || l.bytes >= 4096)
            && self.code_bytes >= 4096
            && (0.0..=1.0).contains(&self.code_hot_frac)
            && self.mean_compute_run >= 1
    }
}

macro_rules! profile {
    ($name:literal, ld=$ld:expr, st=$st:expr, br=$br:expr, miss=$miss:expr,
     layers=[$(($b:expr, $w:expr)),+], stream=$stream:expr, chase=$chase:expr,
     code=$code:expr, hot=$hot:expr, run=$run:expr) => {
        BenchmarkProfile {
            name: $name,
            load_frac: $ld,
            store_frac: $st,
            branch_frac: $br,
            branch_miss_rate: $miss,
            layers: [$(WsLayer { bytes: $b, weight: $w }),+],
            stream_frac: $stream,
            chase_frac: $chase,
            code_bytes: $code,
            code_hot_frac: $hot,
            mean_compute_run: $run,
        }
    };
}

/// The 29-benchmark suite: SPECrate 2017 int (10) + fp (13) plus six
/// larger-footprint `_s` variants, matching the paper's `N = 29`.
pub fn suite() -> Vec<BenchmarkProfile> {
    vec![
        // ---- SPECrate 2017 Integer ----
        profile!(
            "perlbench_r",
            ld = 0.28,
            st = 0.12,
            br = 0.22,
            miss = 0.02,
            layers = [
                (kib(16), 0.925),
                (kib(128), 0.05),
                (mib(2), 0.015),
                (mib(64), 0.01)
            ],
            stream = 0.2,
            chase = 0.15,
            code = kib(512),
            hot = 0.9,
            run = 3
        ),
        profile!(
            "gcc_r",
            ld = 0.27,
            st = 0.11,
            br = 0.21,
            miss = 0.025,
            layers = [
                (kib(16), 0.888),
                (kib(192), 0.06),
                (mib(4), 0.034),
                (mib(128), 0.018)
            ],
            stream = 0.25,
            chase = 0.2,
            code = mib(2),
            hot = 0.85,
            run = 3
        ),
        profile!(
            "mcf_r",
            ld = 0.32,
            st = 0.08,
            br = 0.2,
            miss = 0.04,
            layers = [
                (kib(16), 0.795),
                (kib(128), 0.08),
                (mib(4), 0.07),
                (mib(1024), 0.055)
            ],
            stream = 0.1,
            chase = 0.7,
            code = kib(64),
            hot = 0.99,
            run = 3
        ),
        profile!(
            "omnetpp_r",
            ld = 0.3,
            st = 0.12,
            br = 0.2,
            miss = 0.03,
            layers = [
                (kib(16), 0.862),
                (kib(128), 0.065),
                (mib(8), 0.048),
                (mib(256), 0.025)
            ],
            stream = 0.1,
            chase = 0.6,
            code = kib(512),
            hot = 0.92,
            run = 3
        ),
        profile!(
            "xalancbmk_r",
            ld = 0.3,
            st = 0.08,
            br = 0.25,
            miss = 0.025,
            layers = [
                (kib(16), 0.896),
                (kib(128), 0.06),
                (mib(4), 0.029),
                (mib(128), 0.015)
            ],
            stream = 0.15,
            chase = 0.45,
            code = mib(1),
            hot = 0.88,
            run = 3
        ),
        profile!(
            "x264_r",
            ld = 0.3,
            st = 0.12,
            br = 0.08,
            miss = 0.01,
            layers = [
                (kib(16), 0.94),
                (kib(128), 0.045),
                (mib(2), 0.012),
                (mib(32), 0.003)
            ],
            stream = 0.6,
            chase = 0.02,
            code = kib(256),
            hot = 0.97,
            run = 4
        ),
        profile!(
            "deepsjeng_r",
            ld = 0.25,
            st = 0.08,
            br = 0.18,
            miss = 0.030,
            layers = [
                (kib(16), 0.9565),
                (kib(128), 0.04),
                (mib(1), 0.003),
                (mib(16), 0.0005)
            ],
            stream = 0.2,
            chase = 0.1,
            code = kib(128),
            hot = 0.98,
            run = 3
        ),
        profile!(
            "leela_r",
            ld = 0.24,
            st = 0.07,
            br = 0.16,
            miss = 0.025,
            layers = [
                (kib(16), 0.9668),
                (kib(96), 0.032),
                (kib(512), 0.001),
                (mib(8), 0.0002)
            ],
            stream = 0.15,
            chase = 0.1,
            code = kib(128),
            hot = 0.98,
            run = 3
        ),
        profile!(
            "exchange2_r",
            ld = 0.2,
            st = 0.08,
            br = 0.2,
            miss = 0.012,
            layers = [
                (kib(16), 0.968),
                (kib(64), 0.029),
                (kib(256), 0.003),
                (mib(1), 0.0)
            ],
            stream = 0.3,
            chase = 0.0,
            code = kib(64),
            hot = 0.995,
            run = 4
        ),
        profile!(
            "xz_r",
            ld = 0.28,
            st = 0.1,
            br = 0.15,
            miss = 0.03,
            layers = [
                (kib(16), 0.862),
                (kib(128), 0.08),
                (mib(8), 0.038),
                (mib(192), 0.02)
            ],
            stream = 0.35,
            chase = 0.15,
            code = kib(128),
            hot = 0.98,
            run = 3
        ),
        // ---- SPECrate 2017 Floating Point ----
        profile!(
            "bwaves_r",
            ld = 0.35,
            st = 0.1,
            br = 0.04,
            miss = 0.005,
            layers = [
                (kib(16), 0.74),
                (kib(128), 0.08),
                (mib(4), 0.05),
                (mib(512), 0.13)
            ],
            stream = 0.85,
            chase = 0.0,
            code = kib(64),
            hot = 0.99,
            run = 6
        ),
        profile!(
            "cactuBSSN_r",
            ld = 0.34,
            st = 0.12,
            br = 0.03,
            miss = 0.005,
            layers = [
                (kib(16), 0.76),
                (kib(256), 0.08),
                (mib(8), 0.06),
                (mib(384), 0.1)
            ],
            stream = 0.7,
            chase = 0.0,
            code = kib(256),
            hot = 0.97,
            run = 6
        ),
        profile!(
            "namd_r",
            ld = 0.28,
            st = 0.08,
            br = 0.05,
            miss = 0.008,
            layers = [
                (kib(16), 0.952),
                (kib(192), 0.04),
                (mib(2), 0.006),
                (mib(48), 0.002)
            ],
            stream = 0.4,
            chase = 0.0,
            code = kib(256),
            hot = 0.97,
            run = 6
        ),
        profile!(
            "parest_r",
            ld = 0.3,
            st = 0.09,
            br = 0.08,
            miss = 0.012,
            layers = [
                (kib(16), 0.907),
                (kib(192), 0.05),
                (mib(4), 0.025),
                (mib(128), 0.018)
            ],
            stream = 0.4,
            chase = 0.1,
            code = kib(512),
            hot = 0.93,
            run = 5
        ),
        profile!(
            "povray_r",
            ld = 0.28,
            st = 0.09,
            br = 0.12,
            miss = 0.012,
            layers = [
                (kib(16), 0.9722),
                (kib(96), 0.025),
                (kib(512), 0.002),
                (mib(4), 0.0008)
            ],
            stream = 0.2,
            chase = 0.05,
            code = kib(512),
            hot = 0.95,
            run = 4
        ),
        profile!(
            "lbm_r",
            ld = 0.32,
            st = 0.18,
            br = 0.02,
            miss = 0.002,
            layers = [
                (kib(16), 0.39),
                (kib(128), 0.08),
                (mib(4), 0.07),
                (mib(448), 0.46)
            ],
            stream = 0.95,
            chase = 0.0,
            code = kib(32),
            hot = 0.999,
            run = 6
        ),
        profile!(
            "wrf_r",
            ld = 0.3,
            st = 0.1,
            br = 0.07,
            miss = 0.01,
            layers = [
                (kib(16), 0.845),
                (kib(192), 0.06),
                (mib(6), 0.05),
                (mib(192), 0.045)
            ],
            stream = 0.55,
            chase = 0.0,
            code = mib(1),
            hot = 0.9,
            run = 5
        ),
        profile!(
            "blender_r",
            ld = 0.28,
            st = 0.1,
            br = 0.1,
            miss = 0.015,
            layers = [
                (kib(16), 0.917),
                (kib(128), 0.04),
                (mib(4), 0.025),
                (mib(96), 0.018)
            ],
            stream = 0.35,
            chase = 0.05,
            code = mib(1),
            hot = 0.92,
            run = 4
        ),
        profile!(
            "cam4_r",
            ld = 0.3,
            st = 0.1,
            br = 0.08,
            miss = 0.012,
            layers = [
                (kib(16), 0.845),
                (kib(192), 0.06),
                (mib(8), 0.05),
                (mib(256), 0.045)
            ],
            stream = 0.5,
            chase = 0.0,
            code = kib(1536),
            hot = 0.9,
            run = 5
        ),
        profile!(
            "imagick_r",
            ld = 0.27,
            st = 0.09,
            br = 0.06,
            miss = 0.006,
            layers = [
                (kib(16), 0.9545),
                (kib(128), 0.04),
                (mib(2), 0.004),
                (mib(32), 0.0015)
            ],
            stream = 0.6,
            chase = 0.0,
            code = kib(256),
            hot = 0.98,
            run = 6
        ),
        profile!(
            "nab_r",
            ld = 0.28,
            st = 0.08,
            br = 0.07,
            miss = 0.008,
            layers = [
                (kib(16), 0.96),
                (kib(128), 0.034),
                (mib(1), 0.004),
                (mib(24), 0.002)
            ],
            stream = 0.35,
            chase = 0.05,
            code = kib(128),
            hot = 0.98,
            run = 6
        ),
        profile!(
            "fotonik3d_r",
            ld = 0.34,
            st = 0.1,
            br = 0.03,
            miss = 0.004,
            layers = [
                (kib(16), 0.67),
                (kib(128), 0.1),
                (mib(8), 0.07),
                (mib(320), 0.16)
            ],
            stream = 0.8,
            chase = 0.0,
            code = kib(128),
            hot = 0.99,
            run = 6
        ),
        profile!(
            "roms_r",
            ld = 0.33,
            st = 0.11,
            br = 0.05,
            miss = 0.006,
            layers = [
                (kib(16), 0.69),
                (kib(192), 0.1),
                (mib(8), 0.08),
                (mib(384), 0.13)
            ],
            stream = 0.75,
            chase = 0.0,
            code = kib(256),
            hot = 0.97,
            run = 6
        ),
        // ---- SPECspeed 2017 FP variants (larger footprints) ----
        profile!(
            "bwaves_s",
            ld = 0.35,
            st = 0.1,
            br = 0.04,
            miss = 0.005,
            layers = [
                (kib(16), 0.69),
                (kib(128), 0.08),
                (mib(8), 0.06),
                (mib(1536), 0.17)
            ],
            stream = 0.88,
            chase = 0.0,
            code = kib(64),
            hot = 0.99,
            run = 6
        ),
        profile!(
            "cactuBSSN_s",
            ld = 0.34,
            st = 0.12,
            br = 0.03,
            miss = 0.005,
            layers = [
                (kib(16), 0.72),
                (kib(256), 0.08),
                (mib(12), 0.065),
                (mib(1024), 0.135)
            ],
            stream = 0.72,
            chase = 0.0,
            code = kib(256),
            hot = 0.97,
            run = 6
        ),
        profile!(
            "lbm_s",
            ld = 0.32,
            st = 0.18,
            br = 0.02,
            miss = 0.002,
            layers = [
                (kib(16), 0.32),
                (kib(128), 0.07),
                (mib(4), 0.06),
                (mib(1280), 0.55)
            ],
            stream = 0.96,
            chase = 0.0,
            code = kib(32),
            hot = 0.999,
            run = 6
        ),
        profile!(
            "wrf_s",
            ld = 0.3,
            st = 0.1,
            br = 0.07,
            miss = 0.01,
            layers = [
                (kib(16), 0.82),
                (kib(192), 0.06),
                (mib(8), 0.06),
                (mib(512), 0.06)
            ],
            stream = 0.58,
            chase = 0.0,
            code = mib(1),
            hot = 0.9,
            run = 5
        ),
        profile!(
            "cam4_s",
            ld = 0.3,
            st = 0.1,
            br = 0.08,
            miss = 0.012,
            layers = [
                (kib(16), 0.82),
                (kib(192), 0.06),
                (mib(12), 0.06),
                (mib(768), 0.06)
            ],
            stream = 0.52,
            chase = 0.0,
            code = kib(1536),
            hot = 0.9,
            run = 5
        ),
        profile!(
            "roms_s",
            ld = 0.33,
            st = 0.11,
            br = 0.05,
            miss = 0.006,
            layers = [
                (kib(16), 0.63),
                (kib(192), 0.11),
                (mib(12), 0.09),
                (mib(1024), 0.17)
            ],
            stream = 0.78,
            chase = 0.0,
            code = kib(256),
            hot = 0.97,
            run = 6
        ),
    ]
}

/// Look up a profile by name.
///
/// # Examples
///
/// ```
/// let mcf = sms_workloads::spec::by_name("mcf_r").unwrap();
/// assert!(mcf.chase_frac > 0.5, "mcf is a pointer chaser");
/// assert!(sms_workloads::spec::by_name("nonexistent").is_none());
/// ```
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    suite().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_29_benchmarks() {
        assert_eq!(suite().len(), 29);
    }

    #[test]
    fn names_are_unique() {
        let s = suite();
        let names: std::collections::HashSet<_> = s.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn all_profiles_consistent() {
        for p in suite() {
            assert!(p.is_consistent(), "profile {} is inconsistent", p.name);
        }
    }

    #[test]
    fn suite_spans_memory_intensity() {
        let s = suite();
        // DRAM-layer weight is a proxy for memory intensity; the suite must
        // include both near-zero and heavy cases.
        let dram_weight = |p: &BenchmarkProfile| p.layers[3].weight;
        assert!(s.iter().any(|p| dram_weight(p) < 0.01));
        assert!(s.iter().any(|p| dram_weight(p) > 0.4));
    }

    #[test]
    fn suite_spans_access_patterns() {
        let s = suite();
        assert!(s.iter().any(|p| p.chase_frac > 0.5), "need pointer chasers");
        assert!(s.iter().any(|p| p.stream_frac > 0.9), "need streamers");
        assert!(
            s.iter().any(|p| p.chase_frac == 0.0 && p.stream_frac < 0.4),
            "need random-access workloads"
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("lbm_r").is_some());
        assert!(by_name("lbm_s").is_some());
        assert_eq!(by_name("lbm_r").unwrap().name, "lbm_r");
    }

    #[test]
    fn consistency_rejects_bad_profiles() {
        let mut p = by_name("gcc_r").unwrap();
        p.load_frac = 0.9; // fractions exceed 1
        assert!(!p.is_consistent());

        let mut q = by_name("gcc_r").unwrap();
        q.layers[0].weight += 0.5; // weights no longer sum to 1
        assert!(!q.is_consistent());
    }
}
