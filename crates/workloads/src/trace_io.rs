//! Trace recording and replay.
//!
//! A [`RecordedTrace`] captures a finite window of a workload's micro-op
//! stream (plus its instruction-fetch addresses) into a compact binary
//! format, so runs can be archived, shared, or replayed bit-identically —
//! e.g. to compare simulator versions on frozen inputs, or to feed this
//! crate's workloads into another simulator.
//!
//! The binary layout is a small header followed by one tag byte per op:
//!
//! ```text
//! magic "SMST" | u16 version | u32 label_len | label bytes
//! u64 op_count | ops... | u64 code_count | code addrs (u64 each)
//! tag 0: Compute  + u32 count
//! tag 1: Load     + u64 addr         (independent)
//! tag 2: Load     + u64 addr         (dependent)
//! tag 3: Store    + u64 addr
//! tag 4: Branch   (predicted)
//! tag 5: Branch   (mispredicted)
//! ```

use std::error::Error;
use std::fmt;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sms_sim::core_model::FETCH_BLOCK_INSTRUCTIONS;
use sms_sim::trace::{InstructionSource, MicroOp};

const MAGIC: &[u8; 4] = b"SMST";
const VERSION: u16 = 1;

/// Errors decoding a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The buffer does not start with the trace magic.
    BadMagic,
    /// The format version is not supported.
    BadVersion(u16),
    /// The buffer ended mid-structure.
    Truncated,
    /// An unknown op tag was encountered.
    BadTag(u8),
    /// The label is not valid UTF-8.
    BadLabel,
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "buffer is not a serialized trace (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            Self::Truncated => write!(f, "trace buffer ends mid-structure"),
            Self::BadTag(t) => write!(f, "unknown op tag {t}"),
            Self::BadLabel => write!(f, "trace label is not valid UTF-8"),
        }
    }
}

impl Error for TraceDecodeError {}

/// A finite recorded micro-op window, replayable as an
/// [`InstructionSource`] (cycling at the end like the live generators).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    label: String,
    ops: Vec<MicroOp>,
    code_addrs: Vec<u64>,
}

impl RecordedTrace {
    /// Record at least `instructions` instructions from `source`,
    /// sampling one fetch address per
    /// [`FETCH_BLOCK_INSTRUCTIONS`] as the simulator would.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn record(source: &mut dyn InstructionSource, instructions: u64) -> Self {
        assert!(instructions > 0, "cannot record an empty trace");
        let mut ops = Vec::new();
        let mut code_addrs = Vec::new();
        let mut recorded = 0u64;
        let mut fetch_residue = 0u64;
        while recorded < instructions {
            let op = source.next_op();
            recorded += op.instruction_count();
            fetch_residue += op.instruction_count();
            while fetch_residue >= FETCH_BLOCK_INSTRUCTIONS {
                fetch_residue -= FETCH_BLOCK_INSTRUCTIONS;
                code_addrs.push(source.code_addr());
            }
            ops.push(op);
        }
        Self {
            label: source.label().to_owned(),
            ops,
            code_addrs,
        }
    }

    /// Number of recorded micro-ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total instructions across the recorded ops.
    pub fn instructions(&self) -> u64 {
        self.ops.iter().map(MicroOp::instruction_count).sum()
    }

    /// A replaying source over this trace (cycling past the end).
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay {
            trace: self,
            op_pos: 0,
            code_pos: 0,
        }
    }

    /// An owning replay source, suitable for
    /// `Box<dyn InstructionSource>` slots in
    /// [`MulticoreSystem`](sms_sim::system::MulticoreSystem).
    pub fn into_replay(self) -> OwnedTraceReplay {
        OwnedTraceReplay {
            trace: self,
            op_pos: 0,
            code_pos: 0,
        }
    }

    /// Serialize into the compact binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32 + self.ops.len() * 9 + self.code_addrs.len() * 8);
        buf.put_slice(MAGIC);
        buf.put_u16(VERSION);
        buf.put_u32(self.label.len() as u32);
        buf.put_slice(self.label.as_bytes());
        buf.put_u64(self.ops.len() as u64);
        for op in &self.ops {
            match *op {
                MicroOp::Compute { count } => {
                    buf.put_u8(0);
                    buf.put_u32(count);
                }
                MicroOp::Load { addr, dependent } => {
                    buf.put_u8(if dependent { 2 } else { 1 });
                    buf.put_u64(addr);
                }
                MicroOp::Store { addr } => {
                    buf.put_u8(3);
                    buf.put_u64(addr);
                }
                MicroOp::Branch { mispredicted } => {
                    buf.put_u8(if mispredicted { 5 } else { 4 });
                }
            }
        }
        buf.put_u64(self.code_addrs.len() as u64);
        for &a in &self.code_addrs {
            buf.put_u64(a);
        }
        buf.freeze()
    }

    /// Decode a trace previously produced by [`RecordedTrace::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceDecodeError`] describing the first malformation
    /// found; the buffer is never panicked on.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, TraceDecodeError> {
        use TraceDecodeError as E;
        if data.remaining() < 4 || &data[..4] != MAGIC {
            return Err(E::BadMagic);
        }
        data.advance(4);
        if data.remaining() < 2 {
            return Err(E::Truncated);
        }
        let version = data.get_u16();
        if version != VERSION {
            return Err(E::BadVersion(version));
        }
        if data.remaining() < 4 {
            return Err(E::Truncated);
        }
        let label_len = data.get_u32() as usize;
        if data.remaining() < label_len {
            return Err(E::Truncated);
        }
        let label = std::str::from_utf8(&data[..label_len])
            .map_err(|_| E::BadLabel)?
            .to_owned();
        data.advance(label_len);

        if data.remaining() < 8 {
            return Err(E::Truncated);
        }
        let n_ops = data.get_u64() as usize;
        let mut ops = Vec::with_capacity(n_ops.min(1 << 24));
        for _ in 0..n_ops {
            if data.remaining() < 1 {
                return Err(E::Truncated);
            }
            let tag = data.get_u8();
            let op = match tag {
                0 => {
                    if data.remaining() < 4 {
                        return Err(E::Truncated);
                    }
                    MicroOp::Compute {
                        count: data.get_u32(),
                    }
                }
                1 | 2 => {
                    if data.remaining() < 8 {
                        return Err(E::Truncated);
                    }
                    MicroOp::Load {
                        addr: data.get_u64(),
                        dependent: tag == 2,
                    }
                }
                3 => {
                    if data.remaining() < 8 {
                        return Err(E::Truncated);
                    }
                    MicroOp::Store {
                        addr: data.get_u64(),
                    }
                }
                4 | 5 => MicroOp::Branch {
                    mispredicted: tag == 5,
                },
                t => return Err(E::BadTag(t)),
            };
            ops.push(op);
        }

        if data.remaining() < 8 {
            return Err(E::Truncated);
        }
        let n_code = data.get_u64() as usize;
        if data.remaining() < n_code * 8 {
            return Err(E::Truncated);
        }
        let mut code_addrs = Vec::with_capacity(n_code.min(1 << 24));
        for _ in 0..n_code {
            code_addrs.push(data.get_u64());
        }

        Ok(Self {
            label,
            ops,
            code_addrs,
        })
    }

    /// Write the trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Read a trace from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; decode failures surface as
    /// `InvalidData` I/O errors.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Replaying [`InstructionSource`] borrowed from a [`RecordedTrace`].
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    trace: &'a RecordedTrace,
    op_pos: usize,
    code_pos: usize,
}

impl InstructionSource for TraceReplay<'_> {
    fn next_op(&mut self) -> MicroOp {
        let op = self.trace.ops[self.op_pos];
        self.op_pos = (self.op_pos + 1) % self.trace.ops.len();
        op
    }

    fn code_addr(&mut self) -> u64 {
        if self.trace.code_addrs.is_empty() {
            return 0;
        }
        let a = self.trace.code_addrs[self.code_pos];
        self.code_pos = (self.code_pos + 1) % self.trace.code_addrs.len();
        a
    }

    fn label(&self) -> &str {
        &self.trace.label
    }
}

/// Owning version of [`TraceReplay`].
#[derive(Debug, Clone)]
pub struct OwnedTraceReplay {
    trace: RecordedTrace,
    op_pos: usize,
    code_pos: usize,
}

impl InstructionSource for OwnedTraceReplay {
    fn next_op(&mut self) -> MicroOp {
        let op = self.trace.ops[self.op_pos];
        self.op_pos = (self.op_pos + 1) % self.trace.ops.len();
        op
    }

    fn code_addr(&mut self) -> u64 {
        if self.trace.code_addrs.is_empty() {
            return 0;
        }
        let a = self.trace.code_addrs[self.code_pos];
        self.code_pos = (self.code_pos + 1) % self.trace.code_addrs.len();
        a
    }

    fn label(&self) -> &str {
        &self.trace.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticSource;
    use crate::spec::by_name;

    fn recorded(name: &str, n: u64) -> RecordedTrace {
        let mut src = SyntheticSource::new(by_name(name).unwrap(), 0, 42);
        RecordedTrace::record(&mut src, n)
    }

    #[test]
    fn record_captures_requested_instructions() {
        let t = recorded("gcc_r", 10_000);
        assert!(t.instructions() >= 10_000);
        assert!(t.instructions() < 10_100, "no gross overshoot");
        assert_eq!(t.replay().label(), "gcc_r");
        assert!(!t.is_empty());
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let t = recorded("mcf_r", 5_000);
        let bytes = t.to_bytes();
        let back = RecordedTrace::from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn replay_matches_recording_order() {
        let mut src = SyntheticSource::new(by_name("xz_r").unwrap(), 0, 7);
        let t = RecordedTrace::record(&mut src, 2_000);
        let mut replay = t.replay();
        // Fresh identical generator must produce the same leading ops.
        let mut fresh = SyntheticSource::new(by_name("xz_r").unwrap(), 0, 7);
        for _ in 0..t.len() {
            assert_eq!(replay.next_op(), fresh.next_op());
        }
    }

    #[test]
    fn replay_cycles_past_the_end() {
        let t = recorded("leela_r", 500);
        let mut r1 = t.replay();
        let first: Vec<MicroOp> = (0..t.len()).map(|_| r1.next_op()).collect();
        let second: Vec<MicroOp> = (0..t.len()).map(|_| r1.next_op()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn file_round_trip() {
        let t = recorded("lbm_r", 3_000);
        let path = std::env::temp_dir().join(format!("sms-trace-{}.smst", std::process::id()));
        t.save(&path).unwrap();
        let back = RecordedTrace::load(&path).unwrap();
        assert_eq!(t, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            RecordedTrace::from_bytes(b"nope"),
            Err(TraceDecodeError::BadMagic)
        );
        assert_eq!(
            RecordedTrace::from_bytes(b"SM"),
            Err(TraceDecodeError::BadMagic)
        );
        // Valid magic, bad version.
        let mut buf = Vec::from(*MAGIC);
        buf.extend_from_slice(&99u16.to_be_bytes());
        assert_eq!(
            RecordedTrace::from_bytes(&buf),
            Err(TraceDecodeError::BadVersion(99))
        );
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let t = recorded("namd_r", 1_000);
        let bytes = t.to_bytes();
        // Chop at a few strategic points: every prefix must fail cleanly,
        // never panic.
        for cut in [4usize, 6, 10, 14, 20, bytes.len() / 2, bytes.len() - 1] {
            let r = RecordedTrace::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn simulator_accepts_replayed_traces() {
        use sms_sim::config::SystemConfig;
        use sms_sim::system::{MulticoreSystem, RunSpec};

        let t = recorded("xz_r", 30_000);
        let mut cfg = SystemConfig::target_32core();
        cfg.num_cores = 1;
        cfg.llc.num_slices = 1;
        cfg.noc.mesh_cols = 1;
        cfg.noc.mesh_rows = 1;
        cfg.dram.num_controllers = 1;

        let mut sys = MulticoreSystem::new(cfg, vec![Box::new(t.into_replay())]).unwrap();
        let r = sys
            .run(RunSpec {
                warmup_instructions: 2_000,
                measure_instructions: 20_000,
            })
            .unwrap();
        assert!(r.cores[0].ipc > 0.0);
    }
}
