//! A small, fast, deterministic PRNG for workload generation.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is used instead of an
//! external RNG crate in the generation hot path: it is two instructions
//! deep, passes BigCrush, and — crucially for reproducible experiments —
//! its sequence is fixed by this crate rather than by a dependency that
//! may change its stream between versions.

/// SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds give independent
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * bound,
        // negligible for workload synthesis.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SplitMix64::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(13);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn below_zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
