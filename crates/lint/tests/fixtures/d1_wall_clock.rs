//! D1 fixture: wall-clock and entropy sources in a deterministic crate.
use std::time::Instant;

pub fn bad() -> Instant {
    Instant::now()
}

pub fn tolerated() -> std::time::SystemTime {
    // sms-lint: allow(D1): fixture demonstrates a justified suppression
    std::time::SystemTime::now()
}
