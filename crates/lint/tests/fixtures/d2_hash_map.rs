//! D2 fixture: hash-ordered containers in library code.

pub fn counts() -> std::collections::HashMap<String, u32> {
    // sms-lint: allow(D2): fixture: a suppressed occurrence right below
    std::collections::HashMap::new()
}
