//! C1 fixture, file A: acquires `first` then `second`. Paired with
//! `c1_lock_cycle_ba.rs`, which nests the same two locks the other way
//! round — together they form an acquisition-order cycle.
pub fn forward(&self) {
    let a = self.first.lock();
    let b = self.second.lock();
    drop((a, b));
}

pub fn suppressed_self_cycle(&self) {
    let outer = self.third.lock();
    // sms-lint: allow(C1): reviewed — re-entrant acquisition is guarded by a recursion flag
    let inner = self.third.lock();
    drop((outer, inner));
}
