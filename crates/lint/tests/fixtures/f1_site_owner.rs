//! F1 fixture A: first (owning) use of the `fixture.site` failpoint,
//! plus one site that DESIGN.md never mentions.

pub fn poke() -> Result<(), sms_faults::FaultError> {
    sms_faults::check("fixture.site")?;
    sms_faults::check_io("fixture.undocumented")?;
    Ok(())
}
