//! E2 fixture: silently discarded fallible writes.
use std::io::Write;

pub fn log_line(mut sink: impl Write) {
    let _ = sink.write_all(b"event\n");
}

pub fn tolerated(mut sink: impl Write) {
    // sms-lint: allow(E2): fixture: best-effort flush on shutdown
    let _ = sink.flush();
}
