//! O1 fixture: metric naming conventions.

pub fn register(r: &sms_obs::Registry) {
    r.counter("serve_hits", "cache hits");
    r.counter("sms_hits", "cache hits");
    r.gauge("sms_depth_total", "queue depth");
    // sms-lint: allow(O1): fixture: legacy dashboard name kept as-is
    r.counter("legacy_hits", "cache hits");
}
