//! C4 fixture: one documented atomic, one undocumented atomic, one
//! undocumented lock, and a suppressed undocumented use.
pub fn uses(&self) {
    self.documented.store(true, Ordering::Release);
    self.mystery.store(true, Ordering::Release);
    let g = self.secret.lock();
    drop(g);
}

pub fn suppressed(&self) {
    // sms-lint: allow(C4): scratch atomic local to this fixture
    self.scratch.store(true, Ordering::Release);
}
