//! F1 fixture B: reuses a failpoint site that fixture A already owns.

pub fn poke() -> Result<(), sms_faults::FaultError> {
    sms_faults::check("fixture.site")?;
    Ok(())
}
