//! C2 fixture: one declared counter (legal Relaxed), one control-flow
//! flag misusing Relaxed (finding), one suppressed use, and a
//! correctly-ordered flag (clean).
pub struct S {
    // sms-lint: atomic(counter): event tally, export-only reads
    hits: AtomicU64,
    stop: AtomicBool,
}

impl S {
    pub fn record(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    pub fn request_stop_suppressed(&self) {
        // sms-lint: allow(C2): single-word flag, no data published through it
        self.stop.store(true, Ordering::Relaxed);
    }

    pub fn request_stop_properly(&self) {
        self.stop.store(true, Ordering::Release);
    }
}
