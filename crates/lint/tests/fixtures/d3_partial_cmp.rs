//! D3 fixture: NaN-unsafe float comparisons.

pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn sort_tolerated(xs: &mut [f64]) {
    // sms-lint: allow(D3): fixture: inputs are pre-validated finite
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
