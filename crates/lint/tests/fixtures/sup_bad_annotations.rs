//! SUP fixture: suppressions that are themselves wrong.

// sms-lint: allow(Q9): no such rule exists
pub fn unknown_rule() {}

// sms-lint: allow(E1)
pub fn missing_reason() {}

// sms-lint: this is not the allow(RULE): reason grammar
pub fn malformed() {}
