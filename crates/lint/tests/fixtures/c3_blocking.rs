//! C3 fixture: bare recv, bare join, and an unbounded channel (three
//! findings), plus suppressed and inherently-bounded variants.
pub fn hangs(rx: &Receiver<u8>, h: JoinHandle<()>) {
    let _v = rx.recv();
    let _ = h.join();
    let (_tx, _rx2) = std::sync::mpsc::channel::<u8>();
}

pub fn bounded(rx: &Receiver<u8>, parts: &[String]) -> String {
    let _v = rx.recv_timeout(Duration::from_secs(1));
    let (_tx, _rx2) = std::sync::mpsc::sync_channel::<u8>(4);
    parts.join(", ")
}

pub fn suppressed(h: JoinHandle<()>) {
    // sms-lint: allow(C3): worker exits on a bounded tick; join is prompt
    let _ = h.join();
}
