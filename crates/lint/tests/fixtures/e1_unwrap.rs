//! E1 fixture: panicking error handling in library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn must(cond: bool) {
    if !cond {
        panic!("fixture invariant violated");
    }
}

pub fn tolerated(xs: &[u32]) -> u32 {
    // sms-lint: allow(E1): fixture: caller guarantees non-empty input
    *xs.first().expect("non-empty by contract")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
