//! C1 fixture, file B: acquires `second` then `first` — the reverse of
//! `c1_lock_cycle_ab.rs`, closing the cross-file cycle.
pub fn backward(&self) {
    let b = self.second.lock();
    let a = self.first.lock();
    drop((b, a));
}
