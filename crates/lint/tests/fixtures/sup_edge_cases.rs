//! Suppression edge cases: a multi-rule suppression covering one line,
//! a suppression inside #[cfg(test)] (exempt even when malformed), and
//! a suppression on the very last line of the file.
pub fn multi(&self, x: Option<u8>) -> u8 {
    // sms-lint: allow(E1, D2): fixture — both rules fire on the next line
    x.unwrap() + HashMap::new().len() as u8
}

#[cfg(test)]
mod tests {
    // sms-lint: allow(NOT_A_RULE)
    fn t() {
        None::<u8>.unwrap();
    }
}
// sms-lint: allow(E1): last line of file, nothing below to cover
