//! Scanner-hardening fixture: nested block comments and raw strings
//! containing `//` must not desynchronize line numbers or leak masked
//! text into rule passes.
/* outer /* inner .unwrap() */ still
commented HashMap */
pub fn after_comment(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn raw_with_slashes() -> &'static str {
    r#"not a comment: // .unwrap() HashMap
       second literal line"#
}

pub fn after_raw(x: Option<u8>) -> u8 {
    x.unwrap()
}
