//! Fixture-driven tests for every lint rule. Each fixture under
//! `tests/fixtures/` pairs a violation with a suppressed variant; the
//! assertions pin the exact rule id, line number, and finding count so
//! a scanner regression shows up as a changed line, not a vague diff.
//!
//! The final test dogfoods the checker on this very workspace: the
//! repository must lint clean.

// Test target: the workspace-wide clippy::unwrap_used deny is meant for
// library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use sms_lint::{lint_sources, LintReport};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap()
}

/// Lint one fixture as if it lived at `virtual_path` in the workspace.
/// The path matters: crate-scoped rules (D1) key off `crates/<name>/`.
fn lint_one(virtual_path: &str, fixture_name: &str) -> LintReport {
    lint_sources(
        &[(virtual_path.to_owned(), fixture(fixture_name))],
        None,
        None,
    )
}

fn rule_lines(report: &LintReport) -> Vec<(&'static str, usize)> {
    report.findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn d1_wall_clock_flagged_in_deterministic_crate() {
    let report = lint_one("crates/sim/src/fixture.rs", "d1_wall_clock.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("D1", 5)],
        "{}",
        report.render_text()
    );
    assert!(report.findings[0].message.contains("Instant::now"));
    assert_eq!(report.suppressions_honored, 1);
}

#[test]
fn d1_applies_to_the_explore_crate() {
    // Design-space exploration must be bit-identical across reruns (the
    // resume chaos test depends on it), so explore is a D1 crate.
    let report = lint_one("crates/explore/src/fixture.rs", "d1_wall_clock.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("D1", 5)],
        "{}",
        report.render_text()
    );
}

#[test]
fn d1_does_not_apply_outside_deterministic_crates() {
    // The serve crate talks to real sockets; wall-clock is allowed there.
    let report = lint_one("crates/serve/src/fixture.rs", "d1_wall_clock.rs");
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.suppressions_honored, 0);
}

#[test]
fn d2_hash_map_flagged_and_suppressed() {
    let report = lint_one("crates/serve/src/fixture.rs", "d2_hash_map.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("D2", 3)],
        "{}",
        report.render_text()
    );
    assert_eq!(report.suppressions_honored, 1);
}

#[test]
fn d3_partial_cmp_unwrap_flagged_once_not_as_e1() {
    let report = lint_one("crates/ml/src/fixture.rs", "d3_partial_cmp.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("D3", 4)],
        "{}",
        report.render_text()
    );
    assert!(report.findings[0].message.contains("total_cmp"));
    assert_eq!(report.suppressions_honored, 1);
}

#[test]
fn e1_unwrap_and_panic_flagged_tests_exempt() {
    let report = lint_one("crates/core/src/fixture.rs", "e1_unwrap.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("E1", 4), ("E1", 9)],
        "{}",
        report.render_text()
    );
    // Line 23 unwraps inside #[cfg(test)] and must not appear above.
    assert_eq!(report.suppressions_honored, 1);
}

#[test]
fn e2_discarded_write_flagged_and_suppressed() {
    let report = lint_one("crates/serve/src/fixture.rs", "e2_discarded_write.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("E2", 5)],
        "{}",
        report.render_text()
    );
    assert!(report.findings[0].message.contains("write_all"));
    assert_eq!(report.suppressions_honored, 1);
}

#[test]
fn o1_metric_names_checked_against_literal_args() {
    let report = lint_one("crates/obs/src/fixture.rs", "o1_metric_names.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("O1", 4), ("O1", 5), ("O1", 6)],
        "{}",
        report.render_text()
    );
    assert!(report.findings[0].message.contains("`sms_` prefix"));
    assert!(report.findings[1].message.contains("end in `_total`"));
    assert!(report.findings[2]
        .message
        .contains("must not end in `_total`"));
    assert_eq!(report.suppressions_honored, 1);
}

#[test]
fn f1_duplicate_and_undocumented_sites() {
    let files = vec![
        (
            "crates/sim/src/fixture_a.rs".to_owned(),
            fixture("f1_site_owner.rs"),
        ),
        (
            "crates/faults/src/fixture_b.rs".to_owned(),
            fixture("f1_site_reuse.rs"),
        ),
    ];
    let design = "Failpoints: `fixture.site` is the only documented site.";
    let report = lint_sources(&files, Some(design), None);
    // Findings sort by path: fixture_b (duplicate) before fixture_a
    // (undocumented site).
    assert_eq!(
        rule_lines(&report),
        vec![("F1", 4), ("F1", 6)],
        "{}",
        report.render_text()
    );
    let dup = &report.findings[0];
    assert_eq!(dup.path, "crates/faults/src/fixture_b.rs");
    assert!(dup
        .message
        .contains("already used in crates/sim/src/fixture_a.rs"));
    let undoc = &report.findings[1];
    assert_eq!(undoc.path, "crates/sim/src/fixture_a.rs");
    assert!(undoc
        .message
        .contains("`fixture.undocumented` is not documented"));
}

#[test]
fn f1_documented_unique_sites_are_clean() {
    let files = vec![(
        "crates/sim/src/fixture_a.rs".to_owned(),
        fixture("f1_site_owner.rs"),
    )];
    let design = "Sites: `fixture.site` and `fixture.undocumented` are both here.";
    let report = lint_sources(&files, Some(design), None);
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn bad_suppressions_are_themselves_findings() {
    let report = lint_one("crates/core/src/fixture.rs", "sup_bad_annotations.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("SUP", 3), ("SUP", 6), ("SUP", 9)],
        "{}",
        report.render_text()
    );
    assert!(report.findings[0].message.contains("unknown rule `Q9`"));
    assert!(report.findings[1].message.contains("missing a reason"));
    assert!(report.findings[2].message.contains("malformed"));
    assert_eq!(report.suppressions_honored, 0);
}

#[test]
fn c1_cross_file_lock_cycle_flagged_self_cycle_suppressible() {
    let files = vec![
        (
            "crates/serve/src/fixture_a.rs".to_owned(),
            fixture("c1_lock_cycle_ab.rs"),
        ),
        (
            "crates/serve/src/fixture_b.rs".to_owned(),
            fixture("c1_lock_cycle_ba.rs"),
        ),
    ];
    let report = lint_sources(&files, None, None);
    // One cycle, anchored at the edge leaving the lexicographically
    // smallest lock name (`serve/first` → `serve/second`, in file A).
    assert_eq!(
        rule_lines(&report),
        vec![("C1", 6)],
        "{}",
        report.render_text()
    );
    let f = &report.findings[0];
    assert_eq!(f.path, "crates/serve/src/fixture_a.rs");
    assert!(f.message.contains("potential deadlock"), "{}", f.message);
    assert!(f.message.contains("`serve/first`"), "{}", f.message);
    assert!(f.message.contains("`serve/second`"), "{}", f.message);
    // Both acquisition chains appear as evidence.
    assert!(
        f.message.contains("crates/serve/src/fixture_a.rs"),
        "{}",
        f.message
    );
    assert!(
        f.message.contains("crates/serve/src/fixture_b.rs"),
        "{}",
        f.message
    );
    // The annotated re-entrant self-cycle on `third` was suppressed.
    assert_eq!(report.suppressions_honored, 1);
}

#[test]
fn c1_same_order_everywhere_is_clean() {
    // File A alone nests first→second and third→third (suppressed);
    // without file B reversing the order there is no cross-file cycle.
    let files = vec![(
        "crates/serve/src/fixture_a.rs".to_owned(),
        fixture("c1_lock_cycle_ab.rs"),
    )];
    let report = lint_sources(&files, None, None);
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn c2_relaxed_needs_declared_counter_suppression_honored() {
    let report = lint_one("crates/serve/src/fixture.rs", "c2_relaxed_atomics.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("C2", 16)],
        "{}",
        report.render_text()
    );
    assert!(report.findings[0].message.contains("`serve/stop`"));
    assert_eq!(report.suppressions_honored, 1);
}

#[test]
fn c3_blocking_constructs_flagged_and_suppressed() {
    let report = lint_one("crates/serve/src/fixture.rs", "c3_blocking.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("C3", 4), ("C3", 5), ("C3", 6)],
        "{}",
        report.render_text()
    );
    assert!(report.findings[0].message.contains("recv_timeout"));
    assert!(report.findings[1].message.contains("join"));
    assert!(report.findings[2].message.contains("sync_channel"));
    assert_eq!(report.suppressions_honored, 1);
}

#[test]
fn c4_inventory_checked_when_present_and_suppressible() {
    let files = vec![(
        "crates/sim/src/fixture.rs".to_owned(),
        fixture("c4_inventory.rs"),
    )];
    let inventory = "Inventory: `sim/documented` is the only entry.";
    let report = lint_sources(&files, None, Some(inventory));
    assert_eq!(
        rule_lines(&report),
        vec![("C4", 5), ("C4", 6)],
        "{}",
        report.render_text()
    );
    assert!(report.findings[0].message.contains("atomic `sim/mystery`"));
    assert!(report.findings[1].message.contains("lock `sim/secret`"));
    assert_eq!(report.suppressions_honored, 1);

    // No CONCURRENCY.md, no C4 pass: downstream forks without an
    // inventory are not broken by the rule's existence.
    let absent = lint_sources(&files, None, None);
    assert!(absent.is_clean(), "{}", absent.render_text());
}

#[test]
fn scanner_survives_nested_comments_and_raw_strings() {
    // Line numbers are pinned: a masking bug that eats or adds a line
    // shifts these and fails loudly.
    let report = lint_one("crates/core/src/fixture.rs", "scan_hardening.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("E1", 7), ("E1", 16)],
        "{}",
        report.render_text()
    );
}

#[test]
fn suppression_edge_cases() {
    // Multi-rule suppression silences both rules on one line; a
    // malformed suppression inside #[cfg(test)] is exempt; a trailing
    // suppression on the last line of the file parses without panicking.
    let report = lint_one("crates/serve/src/fixture.rs", "sup_edge_cases.rs");
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.suppressions_honored, 2);
}

#[test]
fn json_rendering_is_canonical() {
    let report = lint_one("crates/serve/src/fixture.rs", "d2_hash_map.rs");
    let json = report.render_json();
    assert!(json.starts_with("{\"baselined\":0,\"clean\":false,\"files_scanned\":1,\"findings\":["));
    assert!(json.contains("\"rule\":\"D2\""));
    assert!(json.contains("\"line\":3"));
    assert!(json.ends_with("],\"schema_version\":2,\"suppressions_honored\":1}\n"));
    // Rendering twice yields byte-identical output (canonical form).
    assert_eq!(json, report.render_json());
}

#[test]
fn baseline_matching_is_line_insensitive() {
    let report = lint_one("crates/serve/src/fixture.rs", "d2_hash_map.rs");
    let baseline = report.render_baseline();
    // Shift the violation down two lines; the baseline still matches.
    let shifted = format!("\n\n{}", fixture("d2_hash_map.rs"));
    let mut moved = lint_sources(
        &[("crates/serve/src/fixture.rs".to_owned(), shifted)],
        None,
        None,
    );
    moved.apply_baseline(&baseline);
    assert!(moved.is_clean(), "{}", moved.render_text());
    assert_eq!(moved.baselined.len(), 1);
    assert_eq!(moved.baselined[0].line, 5);
}

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = sms_lint::lint_workspace(&root).unwrap();
    assert!(
        report.is_clean(),
        "the workspace must lint clean; run `sms lint` for details:\n{}",
        report.render_text()
    );
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
}
