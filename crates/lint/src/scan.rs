//! A comment- and string-literal-stripping Rust token scanner.
//!
//! `sms-lint` deliberately avoids `syn` (the workspace is std-only): the
//! rules it enforces are lexical, so a faithful *lexer* is enough. The
//! scanner produces a **masked** copy of the source — identical byte
//! length and line structure, but with comment bodies and string/char
//! literal contents blanked to spaces — so rule passes can pattern-match
//! on real code without tripping over `"a string mentioning unwrap()"`
//! or commented-out examples. String literal contents are kept on the
//! side (with their positions) for the rules that inspect *names*
//! (metric names, failpoint sites).
//!
//! The scanner also extracts:
//!
//! * `#[cfg(test)]` regions (attribute through the matching close brace
//!   of the item that follows), so every rule can exempt test code;
//! * `// sms-lint: allow(RULE): reason` suppression comments, honored on
//!   the same line and the line directly below.

/// A string literal found in the source: its 1-based line, the byte
/// offset of its opening quote in the masked text, and its raw content
/// (escape sequences are *not* decoded — the rules only match plain
/// identifiers, which need no escapes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// Byte offset of the opening quote.
    pub offset: usize,
    /// Literal content between the quotes, escapes undecoded.
    pub content: String,
}

/// A `// sms-lint: allow(RULE[, RULE...]): reason` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The rule ids inside `allow(...)`; empty when the grammar is
    /// malformed (no closing paren, or nothing between the parens).
    pub rules: Vec<String>,
    /// Whether a non-empty `: reason` followed the rule list.
    pub has_reason: bool,
}

/// A `// sms-lint: atomic(KIND): reason` annotation declaring that the
/// atomic defined on this line (or the line below) is a metric/counter
/// whose `Ordering::Relaxed` accesses are intentional (lint rule C2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicAnnotation {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The declared kind inside `atomic(...)` (`counter`, `gauge`, or
    /// `metric`); empty when the grammar is malformed.
    pub kind: String,
    /// Whether a non-empty `: reason` followed the kind.
    pub has_reason: bool,
}

/// An atomic field/static declaration registered by an
/// [`AtomicAnnotation`]: the identifier name plus where it was declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicDecl {
    /// The declared identifier (`disk_ok`, `NEXT_TID`, ...).
    pub name: String,
    /// The annotation's declared kind.
    pub kind: String,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// One scanned source file, ready for rule passes.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The crate directory name under `crates/` (e.g. `sim`), or empty.
    pub crate_name: String,
    /// Source with comments and literal bodies blanked; same byte length
    /// and line structure as the input.
    pub masked: String,
    /// String literals in order of appearance.
    pub literals: Vec<StrLit>,
    /// Suppression comments in order of appearance.
    pub suppressions: Vec<Suppression>,
    /// `atomic(...)` annotations in order of appearance.
    pub atomic_annotations: Vec<AtomicAnnotation>,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
    /// Per line (index 0 = line 1): inside a `#[cfg(test)]` region.
    test_lines: Vec<bool>,
}

impl ScannedFile {
    /// Lex `source`. `path` should be workspace-relative; the crate name
    /// is derived from a `crates/<name>/` path component when present.
    pub fn new(path: &str, source: &str) -> Self {
        let crate_name = crate_of(path);
        let lex = lex(source);
        let line_starts = line_starts(source);
        let nlines = line_starts.len();
        let test_lines = test_regions(&lex.masked, &line_starts, nlines);
        Self {
            path: path.to_owned(),
            crate_name,
            masked: lex.masked,
            literals: lex.literals,
            suppressions: lex.suppressions,
            atomic_annotations: lex.atomic_annotations,
            line_starts,
            test_lines,
        }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point; line index = i - 1, 1-based = i
        }
        .max(1)
    }

    /// Whether 1-based `line` falls inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Whether a valid suppression for `rule` covers 1-based `line`
    /// (same line, or the line directly above).
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| {
            s.has_reason
                && s.rules.iter().any(|r| r == rule)
                && (s.line == line || s.line + 1 == line)
        })
    }

    /// Whether a well-formed `atomic(...)` annotation covers 1-based
    /// `line` (same line, or the line directly above). Used by rule C2
    /// for atomics reached through local bindings, where the declaring
    /// field is out of lexical reach.
    pub fn is_atomic_annotated(&self, line: usize) -> bool {
        self.atomic_annotations
            .iter()
            .any(|a| a.has_reason && !a.kind.is_empty() && (a.line == line || a.line + 1 == line))
    }

    /// The masked text of 1-based `line` (without its newline).
    pub fn line_slice(&self, line: usize) -> &str {
        let start = match self.line_starts.get(line.saturating_sub(1)) {
            Some(&s) => s,
            None => return "",
        };
        let end = self
            .line_starts
            .get(line)
            .map_or(self.masked.len(), |&e| e.saturating_sub(1));
        self.masked.get(start..end).unwrap_or("")
    }

    /// The atomic declarations registered by this file's well-formed
    /// `atomic(...)` annotations: for each annotation, the identifier
    /// declared on the annotation's own line or the line below (the
    /// first of the two that declares an `Atomic*` field/static/binding).
    pub fn atomic_decls(&self) -> Vec<AtomicDecl> {
        let mut out = Vec::new();
        for a in &self.atomic_annotations {
            if a.kind.is_empty() || !a.has_reason {
                continue;
            }
            for line in [a.line, a.line + 1] {
                if let Some(name) = declared_atomic_ident(self.line_slice(line)) {
                    out.push(AtomicDecl {
                        name,
                        kind: a.kind.clone(),
                        line,
                    });
                    break;
                }
            }
        }
        out
    }

    /// The first string literal starting after byte `offset`, if the
    /// text between `offset` and the literal contains only whitespace
    /// (i.e. the literal is syntactically the next token — used to read
    /// a call's first argument).
    pub fn next_literal_arg(&self, offset: usize) -> Option<&StrLit> {
        let lit = self.literals.iter().find(|l| l.offset >= offset)?;
        let between = self.masked.get(offset..lit.offset)?;
        // `b` / `r` / `#` prefixes of the literal itself are masked as
        // code, so only whitespace may separate the paren and the quote.
        if between
            .chars()
            .all(|c| c.is_whitespace() || c == 'b' || c == 'r' || c == '#')
        {
            Some(lit)
        } else {
            None
        }
    }
}

/// Crate directory name from a `crates/<name>/...` path.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    while let Some(p) = parts.next() {
        if p == "crates" {
            if let Some(name) = parts.next() {
                return name.to_owned();
            }
        }
    }
    String::new()
}

fn line_starts(source: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Extract the identifier declared with an `Atomic*` type on one masked
/// line: `disk_ok: Arc<AtomicBool>,` → `disk_ok`, `static SEQ: AtomicU64`
/// → `SEQ`, `let done = AtomicBool::new(false)` → `done`. Returns `None`
/// when the line declares no atomic (or the shape is unsupported, e.g. a
/// tuple-struct field).
fn declared_atomic_ident(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    let ident = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find("Atomic") {
        let at = from + rel;
        from = at + 1;
        if at > 0 && ident(bytes[at - 1]) {
            continue; // word boundary: not inside a longer identifier
        }
        // Walk left over the type expression (`Arc<`, `[`, `&`, idents,
        // spaces) to the `:` of a field/static or the `=` of a binding.
        let mut i = at;
        while i > 0 {
            let b = bytes[i - 1];
            if ident(b) || matches!(b, b'<' | b'>' | b'[' | b']' | b'&' | b' ' | b'\t') {
                i -= 1;
            } else {
                break;
            }
        }
        if i == 0 || !matches!(bytes[i - 1], b':' | b'=') {
            continue;
        }
        // `::` is a path (e.g. `Foo::Atomic...`), not a declaration.
        if bytes[i - 1] == b':' && i >= 2 && bytes[i - 2] == b':' {
            continue;
        }
        let mut end = i - 1;
        while end > 0 && bytes[end - 1].is_ascii_whitespace() {
            end -= 1;
        }
        let mut start = end;
        while start > 0 && ident(bytes[start - 1]) {
            start -= 1;
        }
        if start < end {
            return Some(line[start..end].to_owned());
        }
    }
    None
}

struct Lexed {
    masked: String,
    literals: Vec<StrLit>,
    suppressions: Vec<Suppression>,
    atomic_annotations: Vec<AtomicAnnotation>,
}

/// Core lexer: one pass over the bytes, tracking comments, string/char
/// literals, raw strings and lifetimes.
fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut masked = bytes.to_vec();
    let mut literals = Vec::new();
    let mut suppressions = Vec::new();
    let mut atomic_annotations = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    let n = bytes.len();

    let ident = |b: u8| b == b'_' || b.is_ascii_alphanumeric();

    while i < n {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            // Line comment: blank it, but parse suppressions first.
            let end = memchr(bytes, i, b'\n');
            if let Ok(text) = std::str::from_utf8(&bytes[i..end]) {
                match parse_directive(text, line) {
                    Some(Directive::Allow(s)) => suppressions.push(s),
                    Some(Directive::Atomic(a)) => atomic_annotations.push(a),
                    None => {}
                }
            }
            blank(&mut masked, i, end);
            i = end;
        } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            // Block comment, possibly nested.
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank_keep_newlines(&mut masked, start, i);
        } else if b == b'"' {
            i = scan_string(bytes, &mut masked, &mut literals, i, &mut line);
        } else if (b == b'r' || b == b'b') && (i == 0 || !ident(bytes[i - 1])) {
            // Possible raw/byte string prefix: b" b' br" r" r#" br#".
            let mut j = i;
            let mut is_raw = false;
            if bytes[j] == b'b' {
                j += 1;
            }
            if j < n && bytes[j] == b'r' {
                is_raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            while is_raw && j < n && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < n && bytes[j] == b'"' {
                if is_raw {
                    i = scan_raw_string(bytes, &mut masked, &mut literals, j, hashes, &mut line);
                } else {
                    i = scan_string(bytes, &mut masked, &mut literals, j, &mut line);
                }
            } else if j < n && bytes[j] == b'\'' && bytes[i] == b'b' && j == i + 1 {
                i = scan_char(bytes, &mut masked, j, &mut line);
            } else {
                i += 1;
            }
        } else if b == b'\'' {
            // Char literal or lifetime.
            if i + 1 < n && bytes[i + 1] == b'\\' {
                i = scan_char(bytes, &mut masked, i, &mut line);
            } else {
                // `'x'` is a char; `'x` followed by anything else is a
                // lifetime. Find the end of the next UTF-8 char.
                let mut k = i + 2;
                while k < n && (bytes[k] & 0xc0) == 0x80 {
                    k += 1;
                }
                if k < n && bytes[k] == b'\'' {
                    i = scan_char(bytes, &mut masked, i, &mut line);
                } else {
                    i += 1; // lifetime tick: leave as code
                }
            }
        } else {
            i += 1;
        }
    }

    // Safety of from_utf8: blanks only replace whole bytes with ASCII
    // spaces inside comments/literals, never splitting a kept char.
    let masked = String::from_utf8(masked).unwrap_or_default();
    Lexed {
        masked,
        literals,
        suppressions,
        atomic_annotations,
    }
}

fn memchr(bytes: &[u8], from: usize, needle: u8) -> usize {
    bytes[from..]
        .iter()
        .position(|&b| b == needle)
        .map_or(bytes.len(), |p| from + p)
}

fn blank(masked: &mut [u8], from: usize, to: usize) {
    for b in &mut masked[from..to] {
        *b = b' ';
    }
}

fn blank_keep_newlines(masked: &mut [u8], from: usize, to: usize) {
    for b in &mut masked[from..to] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Scan a `"..."` string starting at the opening quote; record the
/// literal, blank its content, return the index after the close quote.
fn scan_string(
    bytes: &[u8],
    masked: &mut [u8],
    literals: &mut Vec<StrLit>,
    open: usize,
    line: &mut usize,
) -> usize {
    let start_line = *line;
    let mut i = open + 1;
    let n = bytes.len();
    while i < n {
        match bytes[i] {
            b'\\' if i + 1 < n => {
                // A line-continuation escape still consumes a newline.
                if bytes[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => break,
            _ => i += 1,
        }
    }
    let close = i.min(n);
    let content = String::from_utf8_lossy(&bytes[open + 1..close]).into_owned();
    literals.push(StrLit {
        line: start_line,
        offset: open,
        content,
    });
    blank_keep_newlines(masked, open + 1, close);
    close.saturating_add(1)
}

/// Scan a raw string whose opening quote is at `open` with `hashes`
/// leading `#`s.
fn scan_raw_string(
    bytes: &[u8],
    masked: &mut [u8],
    literals: &mut Vec<StrLit>,
    open: usize,
    hashes: usize,
    line: &mut usize,
) -> usize {
    let start_line = *line;
    let n = bytes.len();
    let mut i = open + 1;
    let close_pat: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while i < n {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"' && bytes[i..].starts_with(&close_pat) {
            break;
        } else {
            i += 1;
        }
    }
    let close = i.min(n);
    let content = String::from_utf8_lossy(&bytes[open + 1..close]).into_owned();
    literals.push(StrLit {
        line: start_line,
        offset: open,
        content,
    });
    blank_keep_newlines(masked, open + 1, close);
    (close + close_pat.len()).min(n)
}

/// Scan a `'...'` char (or byte-char) literal from its opening tick.
fn scan_char(bytes: &[u8], masked: &mut [u8], open: usize, line: &mut usize) -> usize {
    let n = bytes.len();
    let mut i = open + 1;
    while i < n {
        match bytes[i] {
            b'\\' if i + 1 < n => {
                if bytes[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'\'' => break,
            _ => i += 1,
        }
    }
    let close = i.min(n);
    blank_keep_newlines(masked, open + 1, close);
    close.saturating_add(1)
}

/// One parsed `sms-lint:` comment directive.
enum Directive {
    Allow(Suppression),
    Atomic(AtomicAnnotation),
}

/// Parse `sms-lint: allow(RULE[, RULE...]): reason` or
/// `sms-lint: atomic(KIND): reason` out of one line comment. Only a
/// comment whose text *starts* with `sms-lint:` (after the slashes and an
/// optional doc marker) counts, so prose that merely mentions the marker
/// is ignored. Returns `None` for ordinary comments; malformed directives
/// come back with empty `rules`/`kind` so the caller can report them.
fn parse_directive(comment: &str, line: usize) -> Option<Directive> {
    let text = comment.strip_prefix("//")?;
    let text = text.strip_prefix(['/', '!']).unwrap_or(text);
    let rest = text.trim_start().strip_prefix("sms-lint:")?;
    let rest = rest.trim_start();
    if let Some(rest) = rest.strip_prefix("atomic(") {
        let Some(close) = rest.find(')') else {
            return Some(Directive::Atomic(AtomicAnnotation {
                line,
                kind: String::new(),
                has_reason: false,
            }));
        };
        let kind = rest[..close].trim().to_owned();
        let tail = rest[close + 1..].trim_start();
        let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        return Some(Directive::Atomic(AtomicAnnotation {
            line,
            kind,
            has_reason,
        }));
    }
    let malformed = || {
        Directive::Allow(Suppression {
            line,
            rules: Vec::new(),
            has_reason: false,
        })
    };
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(malformed());
    };
    let Some(close) = rest.find(')') else {
        return Some(malformed());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..].trim_start();
    let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
    Some(Directive::Allow(Suppression {
        line,
        rules,
        has_reason,
    }))
}

/// Mark the line ranges covered by `#[cfg(test)]` items.
fn test_regions(masked: &str, line_starts: &[usize], nlines: usize) -> Vec<bool> {
    let mut test = vec![false; nlines];
    let bytes = masked.as_bytes();
    let n = bytes.len();
    let mut from = 0usize;
    while let Some(rel) = masked[from..].find("#[cfg(test)]") {
        let attr_at = from + rel;
        let mut i = attr_at + "#[cfg(test)]".len();
        // Skip whitespace and further attributes to the item body.
        loop {
            while i < n && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i + 1 < n && bytes[i] == b'#' && bytes[i + 1] == b'[' {
                let mut depth = 0usize;
                while i < n {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        // Scan to the item's opening brace (or a bodyless `;`).
        let mut end = i;
        while end < n && bytes[end] != b'{' && bytes[end] != b';' {
            end += 1;
        }
        if end < n && bytes[end] == b'{' {
            let mut depth = 0usize;
            while end < n {
                match bytes[end] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
        }
        let first = line_index(line_starts, attr_at);
        let last = line_index(line_starts, end.min(n.saturating_sub(1)));
        for l in &mut test[first..=last.min(nlines - 1)] {
            *l = true;
        }
        from = end.min(n.saturating_sub(1)).max(attr_at + 1);
        if from >= n {
            break;
        }
    }
    test
}

/// 0-based line index of byte `offset`.
fn line_index(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings_but_keeps_layout() {
        let src = "let a = \"unwrap()\"; // .unwrap() here\nlet b = 1; /* panic!() */\n";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        assert_eq!(f.masked.len(), src.len());
        assert!(!f.masked.contains("unwrap"));
        assert!(!f.masked.contains("panic"));
        assert_eq!(f.masked.lines().count(), src.lines().count());
        assert_eq!(f.literals.len(), 1);
        assert_eq!(f.literals[0].content, "unwrap()");
        assert_eq!(f.literals[0].line, 1);
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let s = r#\"a \" b\"#; let t = b\"x\"; }";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        assert!(f.masked.contains("fn f<'a>"), "lifetime kept: {}", f.masked);
        assert_eq!(f.literals.len(), 2);
        assert_eq!(f.literals[0].content, "a \" b");
        assert_eq!(f.literals[1].content, "x");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ let x = 1;";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        assert!(f.masked.contains("let x = 1;"));
        assert!(!f.masked.contains('a'));
    }

    #[test]
    fn cfg_test_region_covers_mod_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn suppression_grammar() {
        let src = "\
let a = 1; // sms-lint: allow(E1): documented invariant
// sms-lint: allow(D2): lookup only, order never escapes
let b = 2;
// sms-lint: allow(E1)
let c = 3;
";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        assert!(f.is_suppressed("E1", 1));
        assert!(f.is_suppressed("D2", 3));
        assert!(!f.is_suppressed("E1", 5), "reason is required");
        assert_eq!(f.suppressions.len(), 3);
    }

    #[test]
    fn suppression_accepts_multiple_rules() {
        let src = "// sms-lint: allow(C1, C3): per-chunk locks, joined at shutdown\nlet g = 1;\n";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rules, vec!["C1", "C3"]);
        assert!(f.is_suppressed("C1", 2));
        assert!(f.is_suppressed("C3", 2));
        assert!(!f.is_suppressed("C2", 2));
    }

    #[test]
    fn atomic_annotation_registers_declarations() {
        let src = "\
struct S {
    // sms-lint: atomic(counter): report-only run tally
    simulated: AtomicUsize,
    shutdown: AtomicBool,
}
// sms-lint: atomic(counter): unique temp-file sequence
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
// sms-lint: atomic(gauge): wrapped in Arc
fn f() { let disk_ok: Arc<AtomicBool> = mk(); }
";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        let decls = f.atomic_decls();
        let names: Vec<&str> = decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["simulated", "TMP_SEQ", "disk_ok"]);
        assert_eq!(decls[0].kind, "counter");
        assert_eq!(decls[0].line, 3);
        assert!(f.is_atomic_annotated(3));
        assert!(!f.is_atomic_annotated(4), "shutdown is not annotated");
    }

    #[test]
    fn atomic_annotation_requires_kind_and_reason() {
        let src = "\
// sms-lint: atomic(counter)
a: AtomicU64,
// sms-lint: atomic(): why
b: AtomicU64,
";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        assert_eq!(f.atomic_annotations.len(), 2);
        assert!(f.atomic_decls().is_empty(), "both annotations are invalid");
        assert!(!f.is_atomic_annotated(2));
    }

    #[test]
    fn declared_atomic_ident_shapes() {
        assert_eq!(
            declared_atomic_ident("    disk_ok: Arc<AtomicBool>,"),
            Some("disk_ok".to_owned())
        );
        assert_eq!(
            declared_atomic_ident("    buckets: [AtomicU64; 65],"),
            Some("buckets".to_owned())
        );
        assert_eq!(
            declared_atomic_ident("        let done = AtomicBool::new(false);"),
            Some("done".to_owned())
        );
        // Tuple-struct fields have no name to register.
        assert_eq!(
            declared_atomic_ident("pub struct Counter(AtomicU64);"),
            None
        );
        assert_eq!(declared_atomic_ident("let x = 1;"), None);
    }

    #[test]
    fn line_continuation_escapes_keep_line_numbers_in_sync() {
        // A `\`-newline continuation inside a string must still count the
        // newline, or every later suppression lands on the wrong line.
        let src = "let s = \"a \\\n   b\";\n// sms-lint: allow(E1): reason\nlet t = 1;\n";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].line, 3);
        assert!(f.is_suppressed("E1", 4));
    }

    #[test]
    fn crate_name_from_path() {
        assert_eq!(
            ScannedFile::new("crates/sim/src/lib.rs", "").crate_name,
            "sim"
        );
        assert_eq!(ScannedFile::new("tests/src/lib.rs", "").crate_name, "");
    }

    #[test]
    fn line_of_maps_offsets() {
        let src = "a\nbb\nccc\n";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
    }
}
