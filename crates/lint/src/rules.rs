//! The rule passes. Each rule is a lexical pattern over the masked
//! source of one file (see [`crate::scan`]); F1 additionally aggregates
//! across the whole workspace. Rules and their rationale are documented
//! in DESIGN.md ("Static analysis & invariants").

use crate::scan::ScannedFile;
use crate::Finding;

/// Every rule id the checker knows, with a one-line description.
pub const RULES: &[(&str, &str)] = &[
    (
        "D1",
        "no wall-clock or entropy sources in deterministic crates",
    ),
    (
        "D2",
        "no HashMap/HashSet in library code; use BTreeMap/BTreeSet or an explicit sort",
    ),
    ("D3", "no NaN-unsafe float handling; use total_cmp"),
    ("E1", "no unwrap/expect/panic! in non-test library code"),
    ("E2", "no discarded fallible fs/stream writes"),
    (
        "O1",
        "metric names take the sms_ prefix and counters end in _total",
    ),
    (
        "F1",
        "failpoint site names are unique and documented in DESIGN.md",
    ),
    (
        "C1",
        "cross-file lock-acquisition order is acyclic (no potential deadlocks)",
    ),
    (
        "C2",
        "Ordering::Relaxed only on declared metric/counter atomics",
    ),
    (
        "C3",
        "no hang-prone blocking in library code (bare recv/join, unbounded channels)",
    ),
    (
        "C4",
        "every atomic and lock is inventoried in CONCURRENCY.md",
    ),
];

/// Crates whose results must be bit-identical across hosts, thread
/// counts and reruns: wall-clock and entropy are banned outright (D1).
/// Host timing in these crates flows through the `sms-obs` profiler
/// API instead (`sms_obs::Phase` scopes handed in by an attached
/// `Profiler`): the clock read lives inside `sms-obs` — not a D1 crate
/// — and is observation-only, so profiler scopes pass D1 while a raw
/// `Instant::now` in the same file still fails it.
const D1_CRATES: &[&str] = &["core", "explore", "faults", "ml", "sim", "workloads"];

const D1_PATTERNS: &[&str] = &[
    "SystemTime::now",
    "Instant::now",
    "thread_rng",
    "RandomState",
];

/// Write-ish calls whose `Result` must not be discarded with `let _ =`.
const E2_WRITES: &[&str] = &[
    "write_to(",
    ".write(",
    ".write_all(",
    ".write_fmt(",
    ".flush(",
    ".sync_all(",
    ".sync_data(",
    "fs::write(",
    ".set_nonblocking(",
    ".set_read_timeout(",
    ".set_write_timeout(",
    ".set_nodelay(",
];

/// Metric registration calls: pattern and whether the metric is a
/// counter (counters must end in `_total`, nothing else may).
const O1_CALLS: &[(&str, bool)] = &[
    (".counter(", true),
    (".counter_family(", true),
    (".gauge(", false),
    (".gauge_family(", false),
    (".histogram(", false),
    (".histogram_family(", false),
];

/// Failpoint check entry points whose first argument names a site.
const F1_CALLS: &[&str] = &[
    "sms_faults::check(",
    "sms_faults::check_io(",
    "sms_faults::check_delay(",
    "sms_faults::corrupt_bytes(",
];

pub(crate) fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Byte offsets of word-bounded occurrences of `pat` in `text`. The
/// boundary check applies only where the pattern edge is itself an
/// identifier character, so `.unwrap` matches after any receiver but
/// `HashMap` does not match inside `MyHashMapExt`.
pub(crate) fn occurrences(text: &str, pat: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let pat_first = pat.as_bytes()[0];
    let pat_last = pat.as_bytes()[pat.len() - 1];
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = text[from..].find(pat) {
        let at = from + rel;
        let end = at + pat.len();
        let before_ok = !is_ident(pat_first) || at == 0 || !is_ident(bytes[at - 1]);
        let after_ok = !is_ident(pat_last) || end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + 1;
    }
    out
}

pub(crate) fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Run every per-file rule. Returned findings are not yet filtered for
/// suppressions — the caller does that (it also counts them).
pub fn file_findings(f: &ScannedFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let masked = f.masked.as_str();

    // D3 first: its matches claim their trailing `.unwrap`/`.expect`
    // tokens so E1 does not double-report the same site.
    let mut claimed_by_d3 = Vec::new();
    for at in occurrences(masked, ".partial_cmp") {
        let bytes = masked.as_bytes();
        let mut i = skip_ws(bytes, at + ".partial_cmp".len());
        if i >= bytes.len() || bytes[i] != b'(' {
            continue;
        }
        let mut depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let after = skip_ws(bytes, i + 1);
        let tail = &masked[after.min(masked.len())..];
        if tail.starts_with(".unwrap") || tail.starts_with(".expect") {
            claimed_by_d3.push(after);
            out.push(Finding {
                rule: "D3",
                path: f.path.clone(),
                line: f.line_of(at),
                message: "NaN-unsafe `partial_cmp(..).unwrap()`; use `total_cmp` for floats"
                    .to_owned(),
            });
        }
    }

    if D1_CRATES.contains(&f.crate_name.as_str()) {
        for pat in D1_PATTERNS {
            for at in occurrences(masked, pat) {
                out.push(Finding {
                    rule: "D1",
                    path: f.path.clone(),
                    line: f.line_of(at),
                    message: format!(
                        "wall-clock/entropy source `{pat}` in deterministic crate `{}`",
                        f.crate_name
                    ),
                });
            }
        }
    }

    for pat in ["HashMap", "HashSet"] {
        for at in occurrences(masked, pat) {
            out.push(Finding {
                rule: "D2",
                path: f.path.clone(),
                line: f.line_of(at),
                message: format!(
                    "`{pat}` iteration order is nondeterministic; use a BTree collection \
                     or sort before output"
                ),
            });
        }
    }

    for (pat, label) in [(".unwrap", "unwrap()"), (".expect", "expect()")] {
        for at in occurrences(masked, pat) {
            if claimed_by_d3.contains(&at) {
                continue;
            }
            let bytes = masked.as_bytes();
            let i = skip_ws(bytes, at + pat.len());
            if i >= bytes.len() || bytes[i] != b'(' {
                continue; // e.g. a path like `Option::unwrap` used as a value
            }
            out.push(Finding {
                rule: "E1",
                path: f.path.clone(),
                line: f.line_of(at),
                message: format!(
                    "`{label}` in non-test library code; propagate the error or \
                     annotate why panicking is correct"
                ),
            });
        }
    }
    for at in occurrences(masked, "panic!") {
        out.push(Finding {
            rule: "E1",
            path: f.path.clone(),
            line: f.line_of(at),
            message: "`panic!` in non-test library code; propagate the error or \
                      annotate why panicking is correct"
                .to_owned(),
        });
    }

    e2_findings(f, &mut out);
    o1_findings(f, &mut out);
    out
}

/// E2: `let _ = <expr>;` statements whose expression contains a
/// fallible fs/stream write — the failure disappears silently.
fn e2_findings(f: &ScannedFile, out: &mut Vec<Finding>) {
    let masked = f.masked.as_str();
    let bytes = masked.as_bytes();
    for at in occurrences(masked, "let") {
        let mut i = skip_ws(bytes, at + 3);
        if i >= bytes.len() || bytes[i] != b'_' {
            continue;
        }
        if i + 1 < bytes.len() && is_ident(bytes[i + 1]) {
            continue; // `let _name = ...` binds; not a discard
        }
        i = skip_ws(bytes, i + 1);
        if i >= bytes.len() || bytes[i] != b'=' {
            continue;
        }
        if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
            continue;
        }
        // Statement body: scan to the `;` at bracket depth 0.
        let start = i + 1;
        let mut depth = 0isize;
        let mut end = start;
        while end < bytes.len() {
            match bytes[end] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let stmt = &masked[start..end.min(masked.len())];
        if let Some(pat) = E2_WRITES.iter().find(|p| !occurrences(stmt, p).is_empty()) {
            let call = pat.trim_start_matches('.').trim_end_matches('(');
            out.push(Finding {
                rule: "E2",
                path: f.path.clone(),
                line: f.line_of(at),
                message: format!(
                    "`let _ =` discards the result of fallible `{call}`; \
                     count and log the failure instead"
                ),
            });
        }
    }
}

/// O1: metric names passed to registry registration calls must carry
/// the `sms_` prefix; counters (and only counters) end in `_total`.
fn o1_findings(f: &ScannedFile, out: &mut Vec<Finding>) {
    let masked = f.masked.as_str();
    for (pat, is_counter) in O1_CALLS {
        for at in occurrences(masked, pat) {
            let Some(lit) = f.next_literal_arg(at + pat.len()) else {
                continue; // name built dynamically; not checkable here
            };
            let name = lit.content.as_str();
            let problem = if !name.starts_with("sms_") {
                Some(format!("metric `{name}` must carry the `sms_` prefix"))
            } else if *is_counter && !name.ends_with("_total") {
                Some(format!("counter `{name}` must end in `_total`"))
            } else if !is_counter && name.ends_with("_total") {
                Some(format!(
                    "non-counter metric `{name}` must not end in `_total`"
                ))
            } else {
                None
            };
            if let Some(message) = problem {
                out.push(Finding {
                    rule: "O1",
                    path: f.path.clone(),
                    line: lit.line,
                    message,
                });
            }
        }
    }
}

/// One failpoint call site: the site name and where it was used.
#[derive(Debug, Clone)]
pub struct FailpointUse {
    pub site: String,
    pub path: String,
    pub line: usize,
}

/// Collect failpoint call sites (non-test code only) for the F1 pass.
pub fn failpoints(f: &ScannedFile) -> Vec<FailpointUse> {
    let mut out = Vec::new();
    for pat in F1_CALLS {
        for at in occurrences(&f.masked, pat) {
            let line = f.line_of(at);
            if f.is_test_line(line) {
                continue;
            }
            if let Some(lit) = f.next_literal_arg(at + pat.len()) {
                out.push(FailpointUse {
                    site: lit.content.clone(),
                    path: f.path.clone(),
                    line: lit.line,
                });
            }
        }
    }
    out
}

/// F1: every failpoint site must be documented in DESIGN.md (as a
/// backtick-quoted name) and must not be reused from a second file —
/// two files sharing a site name would make `SMS_FAULTS` triggers
/// ambiguous. Re-use within one file is one logical site and fine.
pub fn f1_findings(uses: &[FailpointUse], design: Option<&str>) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut first_file = std::collections::BTreeMap::new();
    let mut reported = std::collections::BTreeSet::new();
    for u in uses {
        let owner = first_file
            .entry(u.site.clone())
            .or_insert_with(|| u.path.clone());
        if *owner != u.path && reported.insert((u.site.clone(), u.path.clone())) {
            out.push(Finding {
                rule: "F1",
                path: u.path.clone(),
                line: u.line,
                message: format!(
                    "failpoint site `{}` already used in {}; site names must be unique",
                    u.site, owner
                ),
            });
        }
    }
    if let Some(design) = design {
        let mut undocumented = std::collections::BTreeSet::new();
        for u in uses {
            if !design.contains(&format!("`{}`", u.site)) && undocumented.insert(u.site.clone()) {
                out.push(Finding {
                    rule: "F1",
                    path: u.path.clone(),
                    line: u.line,
                    message: format!("failpoint site `{}` is not documented in DESIGN.md", u.site),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new("crates/sim/src/lib.rs", src)
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(occurrences("MyHashMapExt HashMap", "HashMap"), vec![13]);
        assert_eq!(occurrences("x.unwrap() unwrap_or", ".unwrap").len(), 1);
    }

    #[test]
    fn d3_claims_its_unwrap() {
        let f = scan("fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n");
        let fs = file_findings(&f);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "D3");
    }

    #[test]
    fn d1_allows_the_obs_profiler_api_but_not_raw_clocks() {
        // The clock policy: deterministic crates time themselves through
        // sms-obs profiler scopes (the Instant read lives in sms-obs,
        // which D1 does not cover), never through a raw clock.
        let ok = scan(
            "fn f(prof: &sms_obs::Phase) -> u64 {\n\
             \x20   let _scope = prof.scope();\n\
             \x20   let p = sms_obs::Profiler::new();\n\
             \x20   p.snapshot().total_self_nanos()\n\
             }\n",
        );
        assert!(file_findings(&ok).is_empty(), "{:?}", file_findings(&ok));
        let bad = scan("fn f() -> std::time::Instant { std::time::Instant::now() }\n");
        let fs = file_findings(&bad);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "D1");
        // Outside the deterministic set the raw clock is fine.
        let cli = ScannedFile::new(
            "crates/cli/src/lib.rs",
            "fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        );
        assert!(file_findings(&cli).is_empty());
    }

    #[test]
    fn e1_flags_plain_unwrap_but_not_unwrap_or() {
        let f = scan("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) + x.unwrap() }\n");
        let fs = file_findings(&f);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "E1");
    }

    #[test]
    fn e2_discarded_write() {
        let f = scan("fn f(s: &mut dyn std::io::Write) { let _ = s.flush(); }\n");
        let fs = file_findings(&f);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "E2");
        let ok = scan("fn f(t: std::thread::JoinHandle<()>) { let _ = t.join(); }\n");
        assert!(file_findings(&ok).is_empty());
    }

    #[test]
    fn o1_checks_literal_names() {
        let f = scan(
            "fn f(r: &R) { r.counter(\"bad_name\", \"h\"); r.gauge(\"sms_x_total\", \"h\"); }\n",
        );
        let fs = file_findings(&f);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|x| x.rule == "O1"));
    }

    #[test]
    fn f1_duplicate_and_undocumented() {
        let a = ScannedFile::new(
            "crates/bench/src/a.rs",
            "fn f() { sms_faults::check(\"cache.read\")?; Ok(()) }\n",
        );
        let b = ScannedFile::new(
            "crates/serve/src/b.rs",
            "fn f() { sms_faults::check(\"cache.read\")?; Ok(()) }\n",
        );
        let uses: Vec<_> = failpoints(&a).into_iter().chain(failpoints(&b)).collect();
        let fs = f1_findings(&uses, Some("only `other.site` is documented"));
        let dup: Vec<_> = fs
            .iter()
            .filter(|f| f.message.contains("already used"))
            .collect();
        let undoc: Vec<_> = fs
            .iter()
            .filter(|f| f.message.contains("not documented"))
            .collect();
        assert_eq!(dup.len(), 1, "{fs:?}");
        assert_eq!(dup[0].path, "crates/serve/src/b.rs");
        assert_eq!(undoc.len(), 1, "{fs:?}");
    }
}
