//! Concurrency-invariant rule passes (C1–C4).
//!
//! PRs 6–9 made the workspace deeply concurrent: a scoped-thread
//! parallel simulator with quantum-barrier merges, a serve-tier worker
//! pool, a circuit breaker, and dozens of atomics. These passes guard
//! the invariants no compiler checks:
//!
//! * **C1** — the cross-file lock-acquisition graph must be acyclic.
//!   Every lock acquisition gets a stable name (`<crate>/<field>`); a
//!   second acquisition inside the lexical scope of a held guard adds an
//!   edge, and any cycle is a potential deadlock.
//! * **C2** — `Ordering::Relaxed` is allowed only on atomics declared as
//!   metrics/counters via `// sms-lint: atomic(counter): reason` (at the
//!   declaration, or directly above a use reached through a local
//!   binding). Atomics that gate control flow — shutdown flags, inflight
//!   gauges, breaker state — must use Acquire/Release or SeqCst.
//! * **C3** — hang-prone blocking in library code: `recv()` without a
//!   timeout, `join()` (which can block forever on a wedged thread), and
//!   unbounded `mpsc::channel` construction. Mirrors the PR 4 watchdog
//!   philosophy: every blocking point needs a bounded wait or an
//!   annotated reason it cannot hang.
//! * **C4** — every atomic touched by an `Ordering::` site and every C1
//!   lock name must be inventoried (backtick-quoted) in CONCURRENCY.md,
//!   the same way F1 ties failpoint sites to DESIGN.md.
//!
//! Like every other rule these are *lexical*: names come from receiver
//! identifiers (`self.disk_ok.load(..)` → `disk_ok`), not from type
//! resolution. The naming scheme is documented in DESIGN.md
//! ("Concurrency invariants").

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::{is_ident, occurrences, skip_ws};
use crate::scan::ScannedFile;
use crate::Finding;

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Stable lock name: `<crate>/<receiver-or-arg identifier>`.
    pub name: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Byte offset of the acquisition in the masked text.
    offset: usize,
    /// Byte offset past which the guard is certainly dead (end of the
    /// enclosing block for `let`-bound guards, end of statement for
    /// temporaries).
    scope_end: usize,
}

/// One `held → acquired` lock-order edge (both acquisitions in the same
/// file; guards cannot cross files).
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Name of the lock already held.
    pub from: String,
    /// Name of the lock acquired while `from` is held.
    pub to: String,
    /// Workspace-relative path of the inner acquisition.
    pub path: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
    /// 1-based line of the outer (held) acquisition.
    pub held_line: usize,
}

/// One atomic access that names a memory ordering.
#[derive(Debug, Clone)]
pub struct AtomicUse {
    /// Stable atomic name: `<crate>/<receiver identifier>`.
    pub name: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the access.
    pub line: usize,
    /// Whether the ordering at this site is `Relaxed`.
    pub relaxed: bool,
    /// Whether a well-formed `atomic(...)` annotation covers this line.
    pub annotated_here: bool,
}

/// Atomic RMW/load/store methods whose arguments carry an `Ordering`.
/// An `Ordering::` token inside any other call (e.g. a helper taking an
/// ordering parameter) is not attributable to an atomic and is skipped.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Qualify an identifier with its crate for cross-file stability.
pub(crate) fn qual(crate_name: &str, ident: &str) -> String {
    let c = if crate_name.is_empty() {
        "ws"
    } else {
        crate_name
    };
    format!("{c}/{ident}")
}

/// The identifier ending at byte `end` (exclusive), i.e. the last path
/// segment of the receiver: `self.disk_ok` → `disk_ok`.
fn ident_ending_at(masked: &str, end: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(masked[start..end].to_owned())
}

/// Walk forward from an opening parenthesis to its matching close.
fn matching_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Byte offset where the statement containing `at` begins: just past the
/// previous `;`, or past the opener (`{`, `(`, `[`) we are nested inside,
/// or past a sibling block's closing `}`.
fn stmt_start(bytes: &[u8], at: usize) -> usize {
    let mut depth = 0usize;
    let mut i = at;
    while i > 0 {
        i -= 1;
        match bytes[i] {
            b')' | b']' | b'}' if bytes[i] != b'}' || depth > 0 => depth += 1,
            b'}' => return i + 1, // depth == 0: a sibling block ended
            b'(' | b'[' | b'{' => {
                if depth == 0 {
                    return i + 1;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return i + 1,
            _ => {}
        }
    }
    0
}

/// Byte offset where the statement containing `at` ends: the `;` at
/// depth 0, or the closer of the construct we are nested inside.
fn stmt_end(bytes: &[u8], at: usize) -> usize {
    let mut depth = 0usize;
    let mut i = at;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Byte offset of the `}` closing the block that contains `at`.
fn block_end(bytes: &[u8], at: usize) -> usize {
    let mut depth = 0usize;
    let mut i = at;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Whether the statement containing `at` is a `let` binding (the guard
/// is named and lives to the end of the enclosing block) rather than a
/// temporary (dead at the end of the statement).
fn is_let_bound(masked: &str, at: usize) -> bool {
    let bytes = masked.as_bytes();
    let start = skip_ws(bytes, stmt_start(bytes, at));
    masked[start..].starts_with("let") && bytes.get(start + 3).is_none_or(|b| !is_ident(*b))
}

/// The scope of a guard acquired at `at`: end of the enclosing block for
/// `let`-bound guards, end of the statement for temporaries (an
/// over-approximation for `if let` scrutinees, which is conservative —
/// it can only add edges, never hide one).
fn guard_scope_end(masked: &str, at: usize) -> usize {
    let bytes = masked.as_bytes();
    if is_let_bound(masked, at) {
        block_end(bytes, at)
    } else {
        stmt_end(bytes, at)
    }
}

/// Collect lock acquisition sites (non-test code only): the shared
/// poison-recovering `lock(expr)` helper, `.lock()` method calls, and
/// `.read()`/`.write()` on receivers whose identifier mentions `lock`
/// (`RwLock` guards; plain `.write(` is I/O, not locking).
pub fn lock_sites(f: &ScannedFile) -> Vec<LockAcq> {
    let masked = f.masked.as_str();
    let bytes = masked.as_bytes();
    let mut out = Vec::new();

    let mut push = |name: String, offset: usize| {
        let line = f.line_of(offset);
        if f.is_test_line(line) {
            return;
        }
        out.push(LockAcq {
            name,
            path: f.path.clone(),
            line,
            offset,
            scope_end: guard_scope_end(masked, offset),
        });
    };

    // Method-style acquisitions: `recv.lock()`, `recv.read()`, `recv.write()`.
    for (pat, needs_lock_in_name) in [(".lock(", false), (".read(", true), (".write(", true)] {
        for at in occurrences(masked, pat) {
            let Some(recv) = ident_ending_at(masked, at) else {
                continue; // chained/complex receiver; not a nameable site
            };
            if needs_lock_in_name && !recv.to_lowercase().contains("lock") {
                continue;
            }
            push(qual(&f.crate_name, &recv), at);
        }
    }

    // Helper-style acquisitions: `lock(&self.inner)`. The shared helper
    // is a free function, so a preceding `.` (method call) or `fn`
    // (the helper's own definition) disqualifies the match.
    for at in occurrences(masked, "lock(") {
        if at > 0 && bytes[at - 1] == b'.' {
            continue;
        }
        let head = masked[..at].trim_end();
        if head.ends_with("fn") {
            continue;
        }
        let close = matching_paren(bytes, at + 4);
        let Some(arg) = ident_ending_at(masked, {
            // Last identifier of the argument expression, e.g.
            // `&self.inner` → `inner`.
            let mut e = close;
            while e > at + 5 && !is_ident(bytes[e - 1]) {
                e -= 1;
            }
            e
        }) else {
            continue;
        };
        push(qual(&f.crate_name, &arg), at);
    }

    out.sort_by_key(|s| s.offset);
    out
}

/// Lock-order edges within one file's sites: acquisition `B` inside the
/// scope of a still-held guard `A` yields `A → B`.
pub fn lock_edges(sites: &[LockAcq]) -> Vec<LockEdge> {
    let mut out = Vec::new();
    for (i, held) in sites.iter().enumerate() {
        for inner in &sites[i + 1..] {
            if inner.offset > held.scope_end {
                break; // sites are offset-sorted; no later site is inside
            }
            out.push(LockEdge {
                from: held.name.clone(),
                to: inner.name.clone(),
                path: inner.path.clone(),
                line: inner.line,
                held_line: held.line,
            });
        }
    }
    out
}

/// C1: report every cycle in the cross-file lock-acquisition graph as a
/// potential deadlock, with the acquisition chain as evidence. The
/// finding anchors at the acquisition that closes the cycle from its
/// lexicographically-smallest lock name, so reruns are deterministic and
/// a reviewed cycle can be suppressed at one stable site.
pub fn c1_findings(edges: &[LockEdge]) -> Vec<Finding> {
    // First evidence per directed pair keeps messages stable.
    let mut evidence: BTreeMap<(&str, &str), &LockEdge> = BTreeMap::new();
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        evidence.entry((&e.from, &e.to)).or_insert(e);
        adj.entry(&e.from).or_default().insert(&e.to);
    }

    // DFS with an explicit path stack; a back edge to a node on the
    // stack closes a cycle. Canonicalize by rotating the smallest name
    // to the front so overlapping traversals dedup.
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        stack: &mut Vec<&'a str>,
        visited: &mut BTreeSet<&'a str>,
        cycles: &mut BTreeSet<Vec<String>>,
    ) {
        stack.push(node);
        for &next in adj.get(node).into_iter().flatten() {
            if let Some(pos) = stack.iter().position(|&n| n == next) {
                let cycle: Vec<&str> = stack[pos..].to_vec();
                let min = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, n)| **n)
                    .map_or(0, |(i, _)| i);
                let rotated: Vec<String> = cycle[min..]
                    .iter()
                    .chain(cycle[..min].iter())
                    .map(|n| (*n).to_owned())
                    .collect();
                cycles.insert(rotated);
            } else if visited.insert(next) {
                dfs(next, adj, stack, visited, cycles);
            }
        }
        stack.pop();
    }
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    for &node in adj.keys() {
        if visited.insert(node) {
            dfs(node, &adj, &mut Vec::new(), &mut visited, &mut cycles);
        }
    }

    let mut out = Vec::new();
    for cycle in &cycles {
        let mut chain = String::new();
        let mut sites = Vec::new();
        for (i, from) in cycle.iter().enumerate() {
            let to = &cycle[(i + 1) % cycle.len()];
            chain.push_str(&format!("`{from}` → "));
            if let Some(e) = evidence.get(&(from.as_str(), to.as_str())) {
                sites.push(format!(
                    "{from} held at {}:{} while acquiring {to} at line {}",
                    e.path, e.held_line, e.line
                ));
            }
        }
        chain.push_str(&format!("`{}`", cycle[0]));
        // Anchor at the edge leaving the smallest (first) name.
        let anchor = evidence
            .get(&(cycle[0].as_str(), cycle[1 % cycle.len()].as_str()))
            .copied();
        let (path, line) = anchor.map_or((String::new(), 0), |e| (e.path.clone(), e.line));
        out.push(Finding {
            rule: "C1",
            path,
            line,
            message: format!(
                "potential deadlock: lock-acquisition cycle {chain} ({}); \
                 acquire locks in one global order or annotate the reviewed site",
                sites.join("; ")
            ),
        });
    }
    out
}

/// Collect atomic accesses that name an `Ordering` (non-test code only).
pub fn atomic_uses(f: &ScannedFile) -> Vec<AtomicUse> {
    let masked = f.masked.as_str();
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for at in occurrences(masked, "Ordering::") {
        let line = f.line_of(at);
        if f.is_test_line(line) {
            continue;
        }
        let relaxed = masked[at..].starts_with("Ordering::Relaxed");
        // Walk left to the `(` opening the argument list this token sits
        // in, then require an atomic method name in front of it.
        let mut depth = 0usize;
        let mut i = at;
        let mut open = None;
        while i > 0 {
            i -= 1;
            match bytes[i] {
                b')' => depth += 1,
                b'(' => {
                    if depth == 0 {
                        open = Some(i);
                        break;
                    }
                    depth -= 1;
                }
                b';' | b'{' | b'}' if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(method) = ident_ending_at(masked, open) else {
            continue;
        };
        if !ATOMIC_METHODS.contains(&method.as_str()) {
            continue;
        }
        // Receiver: the identifier before the `.` in front of the method.
        let dot = open - method.len();
        if dot == 0 || bytes[dot - 1] != b'.' {
            continue;
        }
        let Some(recv) = ident_ending_at(masked, dot - 1) else {
            continue;
        };
        out.push(AtomicUse {
            name: qual(&f.crate_name, &recv),
            path: f.path.clone(),
            line,
            relaxed,
            annotated_here: f.is_atomic_annotated(line),
        });
    }
    out
}

/// C2: `Ordering::Relaxed` is legal only on atomics in the declared
/// counter/metric allowlist (or at a use covered directly by an
/// `atomic(...)` annotation, for accesses through local bindings).
pub fn c2_findings(uses: &[AtomicUse], declared: &BTreeSet<String>) -> Vec<Finding> {
    let mut out = Vec::new();
    for u in uses {
        if u.relaxed && !u.annotated_here && !declared.contains(&u.name) {
            out.push(Finding {
                rule: "C2",
                path: u.path.clone(),
                line: u.line,
                message: format!(
                    "`Ordering::Relaxed` on `{}`, which is not a declared metric/counter \
                     atomic; control-flow atomics need Acquire/Release (or SeqCst), metric \
                     atomics an `// sms-lint: atomic(counter): reason` annotation at the \
                     declaration",
                    u.name
                ),
            });
        }
    }
    out
}

/// C3: hang-prone blocking constructs in library code.
pub fn c3_findings(f: &ScannedFile) -> Vec<Finding> {
    let masked = f.masked.as_str();
    let bytes = masked.as_bytes();
    let mut out = Vec::new();

    // Bare `.recv()` / `.join()` (no arguments). `.recv_timeout(..)` and
    // slice `join(", ")` never match.
    for (pat, message) in [
        (
            ".recv(",
            "blocking `recv()` without a timeout can hang forever; use `recv_timeout` \
             (watchdog philosophy: every wait is bounded) or annotate why this cannot hang",
        ),
        (
            ".join(",
            "`join()` blocks until the thread exits and can hang on a wedged worker; \
             prefer `thread::scope` (joins are bounded by the scope) or annotate why \
             this join terminates",
        ),
    ] {
        for at in occurrences(masked, pat) {
            let close = skip_ws(bytes, at + pat.len());
            if close >= bytes.len() || bytes[close] != b')' {
                continue; // has arguments: recv_timeout-style or slice join
            }
            out.push(Finding {
                rule: "C3",
                path: f.path.clone(),
                line: f.line_of(at),
                message: message.to_owned(),
            });
        }
    }

    for pat in ["mpsc::channel(", "mpsc::channel::<"] {
        for at in occurrences(masked, pat) {
            out.push(Finding {
                rule: "C3",
                path: f.path.clone(),
                line: f.line_of(at),
                message: "unbounded `mpsc::channel` lets a stalled consumer grow the queue \
                          without limit; use `mpsc::sync_channel` with an explicit bound"
                    .to_owned(),
            });
        }
    }
    out
}

/// C4: every atomic name and every lock name must be inventoried
/// (backtick-quoted) in CONCURRENCY.md. Reported once per name, anchored
/// at its first use. Skipped when the inventory file is absent.
pub fn c4_findings(uses: &[AtomicUse], locks: &[LockAcq], inventory: Option<&str>) -> Vec<Finding> {
    let Some(inventory) = inventory else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    let mut check = |name: &str, kind: &str, path: &str, line: usize| {
        if !inventory.contains(&format!("`{name}`")) && seen.insert(name.to_owned()) {
            out.push(Finding {
                rule: "C4",
                path: path.to_owned(),
                line,
                message: format!(
                    "{kind} `{name}` is not inventoried in CONCURRENCY.md; document its \
                     role and ordering contract"
                ),
            });
        }
    };
    for u in uses {
        check(&u.name, "atomic", &u.path, u.line);
    }
    for l in locks {
        check(&l.name, "lock", &l.path, l.line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new("crates/sim/src/fixture.rs", src)
    }

    #[test]
    fn lock_sites_name_helper_and_method_styles() {
        let f = scan(
            "fn f(&self) {\n\
             \x20   let a = lock(&self.inner);\n\
             \x20   let b = self.file.lock();\n\
             \x20   let c = uncore_lock.read();\n\
             \x20   stream.write(buf);\n\
             }\n",
        );
        let sites = lock_sites(&f);
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["sim/inner", "sim/file", "sim/uncore_lock"]);
    }

    #[test]
    fn let_bound_guard_scopes_to_block_temporary_to_statement() {
        let f = scan(
            "fn f(&self) {\n\
             \x20   self.a.lock().push(1);\n\
             \x20   let g = self.b.lock();\n\
             \x20   self.c.lock().push(2);\n\
             }\n",
        );
        let sites = lock_sites(&f);
        let edges = lock_edges(&sites);
        // `a` is a temporary: dead before `b`. `b` is let-bound: alive
        // when `c` is acquired.
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].from, "sim/b");
        assert_eq!(edges[0].to, "sim/c");
        assert_eq!(edges[0].line, 4);
    }

    #[test]
    fn c1_reports_cross_file_cycle_with_both_chains() {
        let a = ScannedFile::new(
            "crates/serve/src/a.rs",
            "fn f(&self) { let g = lock(&self.cache); let h = lock(&self.breakers); }\n",
        );
        let b = ScannedFile::new(
            "crates/serve/src/b.rs",
            "fn g(&self) { let g = lock(&self.breakers); let h = lock(&self.cache); }\n",
        );
        let mut edges = lock_edges(&lock_sites(&a));
        edges.extend(lock_edges(&lock_sites(&b)));
        let fs = c1_findings(&edges);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "C1");
        assert!(
            fs[0].message.contains("`serve/breakers`"),
            "{}",
            fs[0].message
        );
        assert!(fs[0].message.contains("`serve/cache`"));
        assert!(fs[0].message.contains("crates/serve/src/a.rs"));
        assert!(fs[0].message.contains("crates/serve/src/b.rs"));
        // Anchored at the smallest name's outgoing edge: breakers→cache in b.rs.
        assert_eq!(fs[0].path, "crates/serve/src/b.rs");
    }

    #[test]
    fn c1_acyclic_graph_is_clean() {
        let a = ScannedFile::new(
            "crates/sim/src/a.rs",
            "fn f() { let g = uncore_lock.write(); let h = chunk.lock(); }\n",
        );
        let b = ScannedFile::new(
            "crates/sim/src/b.rs",
            "fn g() { let g = uncore_lock.read(); let h = chunk.lock(); }\n",
        );
        let mut edges = lock_edges(&lock_sites(&a));
        edges.extend(lock_edges(&lock_sites(&b)));
        assert!(c1_findings(&edges).is_empty());
    }

    #[test]
    fn c1_self_edge_is_a_cycle() {
        let f = scan("fn f() { let g = chunk.lock(); let h = chunk.lock(); }\n");
        let fs = c1_findings(&lock_edges(&lock_sites(&f)));
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("`sim/chunk` → `sim/chunk`"));
    }

    #[test]
    fn c2_relaxed_needs_declared_counter() {
        let f = scan(
            "fn f(&self) {\n\
             \x20   self.shutdown.store(true, Ordering::Relaxed);\n\
             \x20   self.hits.fetch_add(1, Ordering::Relaxed);\n\
             \x20   self.done.store(true, Ordering::Release);\n\
             }\n",
        );
        let uses = atomic_uses(&f);
        assert_eq!(uses.len(), 3);
        let declared: BTreeSet<String> = [String::from("sim/hits")].into();
        let fs = c2_findings(&uses, &declared);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "C2");
        assert_eq!(fs[0].line, 2);
        assert!(fs[0].message.contains("`sim/shutdown`"));
    }

    #[test]
    fn c2_use_site_annotation_covers_local_bindings() {
        let f = scan(
            "fn f(counter: &AtomicU64) {\n\
             \x20   // sms-lint: atomic(counter): per-site hit tally, report-only\n\
             \x20   counter.fetch_add(1, Ordering::Relaxed);\n\
             }\n",
        );
        let uses = atomic_uses(&f);
        assert_eq!(uses.len(), 1);
        assert!(uses[0].annotated_here);
        assert!(c2_findings(&uses, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn c2_ignores_orderings_outside_atomic_methods() {
        // An ordering passed to a helper is not attributable to an atomic.
        let f = scan("fn f() { takes_ordering(Ordering::Relaxed); }\n");
        assert!(atomic_uses(&f).is_empty());
    }

    #[test]
    fn c3_flags_bare_recv_join_and_unbounded_channel() {
        let f = scan(
            "fn f(rx: &Receiver<u8>, h: JoinHandle<()>) {\n\
             \x20   let _v = rx.recv();\n\
             \x20   let _ = h.join();\n\
             \x20   let (tx, rx2) = std::sync::mpsc::channel();\n\
             \x20   let _ok = rx.recv_timeout(d);\n\
             \x20   let _s = parts.join(\", \");\n\
             }\n",
        );
        let fs = c3_findings(&f);
        let lines: Vec<usize> = fs.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![2, 3, 4], "{fs:?}");
        assert!(fs.iter().all(|x| x.rule == "C3"));
    }

    #[test]
    fn c4_requires_backticked_inventory_entries() {
        let f = scan(
            "fn f(&self) {\n\
             \x20   self.done.store(true, Ordering::Release);\n\
             \x20   let g = self.state.lock();\n\
             }\n",
        );
        let uses = atomic_uses(&f);
        let locks = lock_sites(&f);
        let ok = c4_findings(&uses, &locks, Some("both `sim/done` and `sim/state` exist"));
        assert!(ok.is_empty(), "{ok:?}");
        let missing = c4_findings(&uses, &locks, Some("only `sim/done` is documented"));
        assert_eq!(missing.len(), 1, "{missing:?}");
        assert!(missing[0].message.contains("lock `sim/state`"));
        assert!(
            c4_findings(&uses, &locks, None).is_empty(),
            "no inventory, no check"
        );
    }
}
