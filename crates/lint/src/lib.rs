//! `sms-lint` — the workspace invariant checker.
//!
//! The repo promises properties no compiler checks: bit-identical caches
//! across thread counts, canonical sorted-key JSON artifacts,
//! thread-count-independent fault injection, and a no-panic error
//! discipline in library code. One stray `HashMap` iteration or
//! `SystemTime::now` in a hot path breaks them silently. This crate
//! enforces those promises at the source level with a comment- and
//! string-literal-stripping token scanner ([`scan`]) and named rule
//! passes ([`rules`]): **D1** no wall-clock/entropy in deterministic
//! crates, **D2** no `HashMap`/`HashSet` in library code, **D3** no
//! NaN-unsafe float handling, **E1** no `unwrap`/`expect`/`panic!` in
//! non-test library code, **E2** no discarded fallible writes, **O1**
//! metric naming conventions, **F1** unique, documented failpoint sites.
//!
//! Genuine exceptions are annotated in place:
//!
//! ```text
//! // sms-lint: allow(E1): registry misuse is a programmer error
//! ```
//!
//! A suppression must name a known rule and give a non-empty reason; it
//! covers its own line and the line directly below. Malformed
//! suppressions are themselves findings (rule `SUP`). Test code
//! (`#[cfg(test)]` items) is exempt from every rule.
//!
//! Run it as `sms lint` (human text) or `sms lint --format json`
//! (machine-readable, stable sorted output); the process exits nonzero
//! when any finding survives.

pub mod rules;
pub mod scan;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::RULES;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `"E1"`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation of the violation.
    pub message: String,
}

/// The result of linting a set of files: findings sorted by
/// (path, line, rule), plus scan statistics.
#[derive(Debug, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Findings that a valid `sms-lint: allow` annotation silenced.
    pub suppressions_honored: usize,
}

impl LintReport {
    /// True when no finding survived suppression.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: one `path:line [RULE] message` row per
    /// finding plus a trailing summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{} [{}] {}", f.path, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            out,
            "sms-lint: {} finding(s), {} file(s) scanned, {} suppression(s) honored",
            self.findings.len(),
            self.files_scanned,
            self.suppressions_honored
        );
        out
    }

    /// Machine-readable rendering: canonical JSON (sorted keys, sorted
    /// findings, no floats) so CI diffs are stable.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"clean\":");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        let _ = write!(
            out,
            ",\"files_scanned\":{},\"findings\":[",
            self.files_scanned
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"line\":{},\"message\":\"{}\",\"path\":\"{}\",\"rule\":\"{}\"}}",
                f.line,
                json_escape(&f.message),
                json_escape(&f.path),
                f.rule
            );
        }
        let _ = write!(
            out,
            "],\"schema_version\":1,\"suppressions_honored\":{}}}",
            self.suppressions_honored
        );
        out.push('\n');
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Lint in-memory sources. `files` is `(workspace-relative path, source
/// text)` pairs; `design` is the DESIGN.md text used by the F1
/// documentation check (skipped when `None`).
pub fn lint_sources(files: &[(String, String)], design: Option<&str>) -> LintReport {
    let scanned: Vec<scan::ScannedFile> = files
        .iter()
        .map(|(p, s)| scan::ScannedFile::new(p, s))
        .collect();
    let mut findings = Vec::new();
    let mut honored = 0usize;
    let mut failpoint_uses = Vec::new();

    for f in &scanned {
        for fnd in rules::file_findings(f) {
            if f.is_test_line(fnd.line) {
                continue;
            }
            if f.is_suppressed(fnd.rule, fnd.line) {
                honored += 1;
                continue;
            }
            findings.push(fnd);
        }
        for s in &f.suppressions {
            if f.is_test_line(s.line) {
                continue;
            }
            let problem = if s.rule.is_empty() {
                Some("malformed suppression; expected `sms-lint: allow(RULE): reason`".to_owned())
            } else if !rules::RULES.iter().any(|(id, _)| *id == s.rule) {
                Some(format!("suppression names unknown rule `{}`", s.rule))
            } else if !s.has_reason {
                Some(format!("suppression for `{}` is missing a reason", s.rule))
            } else {
                None
            };
            if let Some(message) = problem {
                findings.push(Finding {
                    rule: "SUP",
                    path: f.path.clone(),
                    line: s.line,
                    message,
                });
            }
        }
        failpoint_uses.extend(rules::failpoints(f));
    }

    let by_path: BTreeMap<&str, &scan::ScannedFile> =
        scanned.iter().map(|f| (f.path.as_str(), f)).collect();
    for fnd in rules::f1_findings(&failpoint_uses, design) {
        if let Some(f) = by_path.get(fnd.path.as_str()) {
            if f.is_suppressed(fnd.rule, fnd.line) {
                honored += 1;
                continue;
            }
        }
        findings.push(fnd);
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    LintReport {
        findings,
        files_scanned: files.len(),
        suppressions_honored: honored,
    }
}

/// Lint every `crates/*/src/**/*.rs` file under `root` (the workspace
/// checkout), reading `DESIGN.md` for the F1 documentation check.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let path = entry?.path();
        if path.is_dir() {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();

    let mut paths = Vec::new();
    for dir in &crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
    }
    paths.sort();

    let mut files = Vec::new();
    for p in &paths {
        let text = std::fs::read_to_string(p)?;
        let rel = p.strip_prefix(root).unwrap_or(p);
        files.push((rel.to_string_lossy().replace('\\', "/"), text));
    }
    let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    Ok(lint_sources(&files, design.as_deref()))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> (String, String) {
        (path.to_owned(), text.to_owned())
    }

    #[test]
    fn suppression_silences_and_is_counted() {
        let files = [src(
            "crates/bench/src/x.rs",
            "// sms-lint: allow(E1): documented invariant\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )];
        let r = lint_sources(&files, None);
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.suppressions_honored, 1);
    }

    #[test]
    fn malformed_and_unknown_suppressions_are_findings() {
        let files = [src(
            "crates/bench/src/x.rs",
            "// sms-lint: allow(Z9): nope\n// sms-lint: allow(E1)\nfn f() {}\n",
        )];
        let r = lint_sources(&files, None);
        assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
        assert!(r.findings.iter().all(|f| f.rule == "SUP"));
        assert_eq!(r.findings[0].line, 1);
        assert_eq!(r.findings[1].line, 2);
    }

    #[test]
    fn test_code_is_exempt() {
        let files = [src(
            "crates/sim/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { None::<u8>.unwrap(); }\n}\n",
        )];
        let r = lint_sources(&files, None);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn json_rendering_is_canonical() {
        let files = [src(
            "crates/sim/src/x.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )];
        let r = lint_sources(&files, None);
        let json = r.render_json();
        assert!(json.starts_with("{\"clean\":false,\"files_scanned\":1,\"findings\":[{\"line\":1,"));
        assert!(json.contains("\"rule\":\"E1\""));
        assert!(json
            .trim_end()
            .ends_with("\"schema_version\":1,\"suppressions_honored\":0}"));
    }

    #[test]
    fn text_rendering_has_summary() {
        let r = lint_sources(&[], None);
        assert_eq!(
            r.render_text(),
            "sms-lint: 0 finding(s), 0 file(s) scanned, 0 suppression(s) honored\n"
        );
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
