//! `sms-lint` — the workspace invariant checker.
//!
//! The repo promises properties no compiler checks: bit-identical caches
//! across thread counts, canonical sorted-key JSON artifacts,
//! thread-count-independent fault injection, and a no-panic error
//! discipline in library code. One stray `HashMap` iteration or
//! `SystemTime::now` in a hot path breaks them silently. This crate
//! enforces those promises at the source level with a comment- and
//! string-literal-stripping token scanner ([`scan`]) and named rule
//! passes ([`rules`], [`conc`]): **D1** no wall-clock/entropy in
//! deterministic crates, **D2** no `HashMap`/`HashSet` in library code,
//! **D3** no NaN-unsafe float handling, **E1** no
//! `unwrap`/`expect`/`panic!` in non-test library code, **E2** no
//! discarded fallible writes, **O1** metric naming conventions, **F1**
//! unique, documented failpoint sites — and the concurrency family:
//! **C1** acyclic cross-file lock-acquisition order, **C2**
//! `Ordering::Relaxed` only on declared metric/counter atomics, **C3**
//! no hang-prone blocking (bare `recv`/`join`, unbounded channels),
//! **C4** every atomic and lock inventoried in CONCURRENCY.md.
//!
//! Genuine exceptions are annotated in place:
//!
//! ```text
//! // sms-lint: allow(E1): registry misuse is a programmer error
//! // sms-lint: allow(C1, C3): reviewed; per-chunk locks, bounded join
//! // sms-lint: atomic(counter): report-only run tally
//! ```
//!
//! A suppression must name known rules and give a non-empty reason; it
//! covers its own line and the line directly below. Malformed
//! suppressions and atomic annotations are themselves findings (rule
//! `SUP`). Test code (`#[cfg(test)]` items) is exempt from every rule.
//!
//! Run it as `sms lint` (human text) or `sms lint --format json`
//! (machine-readable, stable sorted output); the process exits nonzero
//! when any finding survives. `--baseline <file>` demotes findings
//! recorded in a checked-in baseline to warn-only so new rules can land
//! without breaking downstream forks; `--write-baseline <file>` records
//! the current findings.

pub mod conc;
pub mod rules;
pub mod scan;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::RULES;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `"E1"`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation of the violation.
    pub message: String,
}

/// The result of linting a set of files: findings sorted by
/// (path, line, rule), plus scan statistics.
#[derive(Debug, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    /// Findings demoted to warn-only by [`LintReport::apply_baseline`];
    /// they do not affect [`LintReport::is_clean`].
    pub baselined: Vec<Finding>,
    pub files_scanned: usize,
    /// Findings that a valid `sms-lint: allow` annotation silenced.
    pub suppressions_honored: usize,
}

impl LintReport {
    /// True when no finding survived suppression (baselined findings are
    /// warnings, not failures).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: one `path:line [RULE] message` row per
    /// finding plus a trailing summary line. Baselined findings render
    /// with a `baselined` marker and do not fail the run.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{} [{}] {}", f.path, f.line, f.rule, f.message);
        }
        for f in &self.baselined {
            let _ = writeln!(
                out,
                "{}:{} [{} baselined] {}",
                f.path, f.line, f.rule, f.message
            );
        }
        let _ = writeln!(
            out,
            "sms-lint: {} finding(s), {} file(s) scanned, {} suppression(s) honored{}",
            self.findings.len(),
            self.files_scanned,
            self.suppressions_honored,
            if self.baselined.is_empty() {
                String::new()
            } else {
                format!(", {} baselined", self.baselined.len())
            }
        );
        out
    }

    /// Machine-readable rendering: canonical JSON (sorted keys, sorted
    /// findings, no floats) so CI diffs are stable.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"baselined\":");
        let _ = write!(out, "{}", self.baselined.len());
        out.push_str(",\"clean\":");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        let _ = write!(
            out,
            ",\"files_scanned\":{},\"findings\":[",
            self.files_scanned
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"line\":{},\"message\":\"{}\",\"path\":\"{}\",\"rule\":\"{}\"}}",
                f.line,
                json_escape(&f.message),
                json_escape(&f.path),
                f.rule
            );
        }
        let _ = write!(
            out,
            "],\"schema_version\":2,\"suppressions_honored\":{}}}",
            self.suppressions_honored
        );
        out.push('\n');
        out
    }

    /// Render the findings as a baseline file: a comment header plus one
    /// canonical JSON object per finding. Baseline matching is
    /// **line-number-insensitive** — (path, rule, message) only — so code
    /// motion above a known finding does not un-baseline it.
    pub fn render_baseline(&self) -> String {
        let mut out = String::from(
            "# sms-lint baseline v1; one canonical finding per line, matched on\n\
             # (path, rule, message) — line numbers intentionally excluded\n",
        );
        let mut keys: Vec<String> = self
            .findings
            .iter()
            .chain(self.baselined.iter())
            .map(baseline_key)
            .collect();
        keys.sort();
        keys.dedup();
        for k in keys {
            out.push_str(&k);
            out.push('\n');
        }
        out
    }

    /// Demote every finding recorded in `baseline` (text produced by
    /// [`LintReport::render_baseline`]) to warn-only. Unmatched baseline
    /// entries are ignored — a fixed finding simply disappears from the
    /// next `--write-baseline`.
    pub fn apply_baseline(&mut self, baseline: &str) {
        let known: BTreeSet<&str> = baseline
            .lines()
            .map(str::trim)
            .filter(|l| l.starts_with('{'))
            .collect();
        let (demoted, kept): (Vec<Finding>, Vec<Finding>) = std::mem::take(&mut self.findings)
            .into_iter()
            .partition(|f| known.contains(baseline_key(f).as_str()));
        self.findings = kept;
        self.baselined.extend(demoted);
    }
}

/// Canonical, line-number-free identity of a finding for baselines.
fn baseline_key(f: &Finding) -> String {
    format!(
        "{{\"message\":\"{}\",\"path\":\"{}\",\"rule\":\"{}\"}}",
        json_escape(&f.message),
        json_escape(&f.path),
        f.rule
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Kinds an `atomic(...)` annotation may declare.
const ATOMIC_KINDS: &[&str] = &["counter", "gauge", "metric"];

/// Lint in-memory sources. `files` is `(workspace-relative path, source
/// text)` pairs; `design` is the DESIGN.md text used by the F1
/// documentation check and `concurrency` the CONCURRENCY.md text used by
/// the C4 inventory check (each skipped when `None`).
pub fn lint_sources(
    files: &[(String, String)],
    design: Option<&str>,
    concurrency: Option<&str>,
) -> LintReport {
    let scanned: Vec<scan::ScannedFile> = files
        .iter()
        .map(|(p, s)| scan::ScannedFile::new(p, s))
        .collect();
    let mut findings = Vec::new();
    let mut honored = 0usize;
    let mut failpoint_uses = Vec::new();
    let mut lock_acqs = Vec::new();
    let mut lock_edges = Vec::new();
    let mut atomic_uses = Vec::new();
    let mut declared_atomics: BTreeSet<String> = BTreeSet::new();

    for f in &scanned {
        for fnd in rules::file_findings(f)
            .into_iter()
            .chain(conc::c3_findings(f))
        {
            if f.is_test_line(fnd.line) {
                continue;
            }
            if f.is_suppressed(fnd.rule, fnd.line) {
                honored += 1;
                continue;
            }
            findings.push(fnd);
        }
        for s in &f.suppressions {
            if f.is_test_line(s.line) {
                continue;
            }
            let mut problems = Vec::new();
            if s.rules.is_empty() {
                problems.push(
                    "malformed suppression; expected `sms-lint: allow(RULE[, RULE...]): reason`"
                        .to_owned(),
                );
            } else {
                for r in &s.rules {
                    if !rules::RULES.iter().any(|(id, _)| *id == *r) {
                        problems.push(format!("suppression names unknown rule `{r}`"));
                    }
                }
                if !s.has_reason {
                    problems.push(format!(
                        "suppression for `{}` is missing a reason",
                        s.rules.join(", ")
                    ));
                }
            }
            for message in problems {
                findings.push(Finding {
                    rule: "SUP",
                    path: f.path.clone(),
                    line: s.line,
                    message,
                });
            }
        }
        for a in &f.atomic_annotations {
            if f.is_test_line(a.line) {
                continue;
            }
            let problem = if a.kind.is_empty() {
                Some(
                    "malformed atomic annotation; expected `sms-lint: atomic(KIND): reason`"
                        .to_owned(),
                )
            } else if !ATOMIC_KINDS.contains(&a.kind.as_str()) {
                Some(format!(
                    "atomic annotation kind `{}` is not one of counter/gauge/metric",
                    a.kind
                ))
            } else if !a.has_reason {
                Some(format!(
                    "atomic annotation `atomic({})` is missing a reason",
                    a.kind
                ))
            } else {
                None
            };
            if let Some(message) = problem {
                findings.push(Finding {
                    rule: "SUP",
                    path: f.path.clone(),
                    line: a.line,
                    message,
                });
            }
        }
        failpoint_uses.extend(rules::failpoints(f));
        for d in f.atomic_decls() {
            declared_atomics.insert(conc::qual(&f.crate_name, &d.name));
        }
        let sites = conc::lock_sites(f);
        lock_edges.extend(conc::lock_edges(&sites));
        lock_acqs.extend(sites);
        atomic_uses.extend(conc::atomic_uses(f));
    }

    let by_path: BTreeMap<&str, &scan::ScannedFile> =
        scanned.iter().map(|f| (f.path.as_str(), f)).collect();
    let mut cross = rules::f1_findings(&failpoint_uses, design);
    cross.extend(conc::c1_findings(&lock_edges));
    cross.extend(conc::c2_findings(&atomic_uses, &declared_atomics));
    cross.extend(conc::c4_findings(&atomic_uses, &lock_acqs, concurrency));
    for fnd in cross {
        if let Some(f) = by_path.get(fnd.path.as_str()) {
            if f.is_suppressed(fnd.rule, fnd.line) {
                honored += 1;
                continue;
            }
        }
        findings.push(fnd);
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    LintReport {
        findings,
        baselined: Vec::new(),
        files_scanned: files.len(),
        suppressions_honored: honored,
    }
}

/// Lint every `crates/*/src/**/*.rs` file under `root` (the workspace
/// checkout), reading `DESIGN.md` for the F1 documentation check and
/// `CONCURRENCY.md` for the C4 inventory check.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let path = entry?.path();
        if path.is_dir() {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();

    let mut paths = Vec::new();
    for dir in &crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
    }
    paths.sort();

    let mut files = Vec::new();
    for p in &paths {
        let text = std::fs::read_to_string(p)?;
        let rel = p.strip_prefix(root).unwrap_or(p);
        files.push((rel.to_string_lossy().replace('\\', "/"), text));
    }
    let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    let concurrency = std::fs::read_to_string(root.join("CONCURRENCY.md")).ok();
    Ok(lint_sources(
        &files,
        design.as_deref(),
        concurrency.as_deref(),
    ))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> (String, String) {
        (path.to_owned(), text.to_owned())
    }

    #[test]
    fn suppression_silences_and_is_counted() {
        let files = [src(
            "crates/bench/src/x.rs",
            "// sms-lint: allow(E1): documented invariant\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )];
        let r = lint_sources(&files, None, None);
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.suppressions_honored, 1);
    }

    #[test]
    fn malformed_and_unknown_suppressions_are_findings() {
        let files = [src(
            "crates/bench/src/x.rs",
            "// sms-lint: allow(Z9): nope\n// sms-lint: allow(E1)\nfn f() {}\n",
        )];
        let r = lint_sources(&files, None, None);
        assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
        assert!(r.findings.iter().all(|f| f.rule == "SUP"));
        assert_eq!(r.findings[0].line, 1);
        assert_eq!(r.findings[1].line, 2);
    }

    #[test]
    fn multi_rule_suppression_validates_every_rule() {
        let files = [src(
            "crates/bench/src/x.rs",
            "// sms-lint: allow(E1, Z9): half-known\nfn f() {}\n",
        )];
        let r = lint_sources(&files, None, None);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("unknown rule `Z9`"));
    }

    #[test]
    fn atomic_annotation_validation() {
        let files = [src(
            "crates/obs/src/x.rs",
            "// sms-lint: atomic(flag): why\na: AtomicBool,\n// sms-lint: atomic(counter)\nb: AtomicU64,\n",
        )];
        let r = lint_sources(&files, None, None);
        assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
        assert!(r.findings.iter().all(|f| f.rule == "SUP"));
        assert!(r.findings[0]
            .message
            .contains("not one of counter/gauge/metric"));
        assert!(r.findings[1].message.contains("missing a reason"));
    }

    #[test]
    fn test_code_is_exempt() {
        let files = [src(
            "crates/sim/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { None::<u8>.unwrap(); }\n}\n",
        )];
        let r = lint_sources(&files, None, None);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn c2_allowlist_flows_from_annotations_to_uses_across_files() {
        let files = [
            src(
                "crates/obs/src/decl.rs",
                "pub struct S {\n    // sms-lint: atomic(counter): dropped-event tally\n    pub dropped: AtomicU64,\n    pub enabled: AtomicBool,\n}\n",
            ),
            src(
                "crates/obs/src/uses.rs",
                "fn f(s: &S) {\n    s.dropped.fetch_add(1, Ordering::Relaxed);\n    s.enabled.store(true, Ordering::Relaxed);\n}\n",
            ),
        ];
        let r = lint_sources(&files, None, None);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "C2");
        assert_eq!(r.findings[0].path, "crates/obs/src/uses.rs");
        assert_eq!(r.findings[0].line, 3);
        assert!(r.findings[0].message.contains("`obs/enabled`"));
    }

    #[test]
    fn c4_checks_inventory_when_present() {
        let files = [src(
            "crates/sim/src/x.rs",
            "fn f(&self) { self.done.store(true, Ordering::Release); }\n",
        )];
        let clean = lint_sources(&files, None, Some("documented: `sim/done`"));
        assert!(clean.is_clean(), "{:?}", clean.findings);
        let dirty = lint_sources(&files, None, Some("nothing documented"));
        assert_eq!(dirty.findings.len(), 1, "{:?}", dirty.findings);
        assert_eq!(dirty.findings[0].rule, "C4");
        let absent = lint_sources(&files, None, None);
        assert!(absent.is_clean(), "no inventory file, no C4 pass");
    }

    #[test]
    fn json_rendering_is_canonical() {
        let files = [src(
            "crates/sim/src/x.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )];
        let r = lint_sources(&files, None, None);
        let json = r.render_json();
        assert!(json.starts_with(
            "{\"baselined\":0,\"clean\":false,\"files_scanned\":1,\"findings\":[{\"line\":1,"
        ));
        assert!(json.contains("\"rule\":\"E1\""));
        assert!(json
            .trim_end()
            .ends_with("\"schema_version\":2,\"suppressions_honored\":0}"));
    }

    #[test]
    fn text_rendering_has_summary() {
        let r = lint_sources(&[], None, None);
        assert_eq!(
            r.render_text(),
            "sms-lint: 0 finding(s), 0 file(s) scanned, 0 suppression(s) honored\n"
        );
    }

    #[test]
    fn baseline_roundtrip_demotes_known_findings_only() {
        let files = [src(
            "crates/sim/src/x.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )];
        let baseline = lint_sources(&files, None, None).render_baseline();
        assert!(baseline.starts_with("# sms-lint baseline v1"));

        // Same finding on a different line still matches the baseline.
        let moved = [src(
            "crates/sim/src/x.rs",
            "\n\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )];
        let mut r = lint_sources(&moved, None, None);
        r.apply_baseline(&baseline);
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.baselined.len(), 1);
        assert_eq!(r.baselined[0].line, 3);
        let text = r.render_text();
        assert!(text.contains("[E1 baselined]"), "{text}");
        assert!(text.contains(", 1 baselined"), "{text}");

        // A new, unbaselined finding still fails the run.
        let grown = [src(
            "crates/sim/src/x.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(); }\n",
        )];
        let mut r2 = lint_sources(&grown, None, None);
        r2.apply_baseline(&baseline);
        assert_eq!(r2.findings.len(), 1, "{:?}", r2.findings);
        assert_eq!(r2.baselined.len(), 1);
        assert!(!r2.is_clean());
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
