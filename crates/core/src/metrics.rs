//! Accuracy metrics: the paper's absolute prediction-error metric (§V)
//! and system throughput (STP, §V-C).

pub use sms_ml::metrics::prediction_error;

/// System throughput of a multiprogram mix: the sum of per-application
/// IPCs normalized to their single-core scale-model IPCs (paper §V-C,
/// following Eyerman & Eeckhout's STP).
///
/// # Panics
///
/// Panics on length mismatch or a non-positive normalizing IPC.
pub fn stp(target_ipcs: &[f64], ss_ipcs: &[f64]) -> f64 {
    assert_eq!(target_ipcs.len(), ss_ipcs.len());
    target_ipcs
        .iter()
        .zip(ss_ipcs)
        .map(|(&t, &s)| {
            assert!(s > 0.0, "single-core scale-model IPC must be positive");
            t / s
        })
        .sum()
}

/// Mean of a non-empty slice.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Maximum of a non-empty slice.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn max(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stp_is_sum_of_normalized_ipcs() {
        let t = [0.5, 1.0];
        let s = [1.0, 2.0];
        assert!((stp(&t, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stp_of_no_slowdown_equals_core_count() {
        let ipcs = [0.7; 32];
        assert!((stp(&ipcs, &ipcs) - 32.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn stp_rejects_zero_reference() {
        let _ = stp(&[1.0], &[0.0]);
    }

    #[test]
    fn mean_and_max() {
        let xs = [1.0, 3.0, 2.0];
        assert!((mean(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(max(&xs), 3.0);
    }
}
