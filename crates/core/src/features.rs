//! Feature extraction for the ML extrapolation models (paper §III-B).
//!
//! The input variables for an application `A_j` in a `T`-program mix are
//! its single-core scale-model IPC and bandwidth utilization plus the
//! aggregate bandwidth utilization of its co-runners:
//!
//! ```text
//! [ IPC_ss(A_j),  BW_ss(A_j),  Σ_{k≠j} BW_ss(A_k) ]
//! ```
//!
//! The Fig 10 ablation drops the bandwidth inputs ([`FeatureMode::IpcOnly`]).

use serde::{Deserialize, Serialize};

/// Which inputs the ML models see (paper §V-E3, Fig 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureMode {
    /// Performance only: `[IPC_ss]`.
    IpcOnly,
    /// Performance and bandwidth utilization (the paper's default):
    /// `[IPC_ss, BW_ss, Σ co-runner BW_ss]`.
    IpcBandwidth,
}

impl FeatureMode {
    /// Number of features produced.
    pub fn width(self) -> usize {
        match self {
            Self::IpcOnly => 1,
            Self::IpcBandwidth => 3,
        }
    }
}

/// Single-core scale-model measurements for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsMeasurement {
    /// IPC on the single-core scale model.
    pub ipc: f64,
    /// Memory bandwidth utilization on the single-core scale model, GB/s.
    pub bandwidth: f64,
}

/// Build the feature vector for one application given its own single-core
/// measurements and the aggregate co-runner bandwidth.
///
/// # Examples
///
/// ```
/// use sms_core::features::{feature_vector, FeatureMode, SsMeasurement};
/// let own = SsMeasurement { ipc: 1.2, bandwidth: 0.8 };
/// let v = feature_vector(FeatureMode::IpcBandwidth, own, 24.0);
/// assert_eq!(v, vec![1.2, 0.8, 24.0]);
/// assert_eq!(feature_vector(FeatureMode::IpcOnly, own, 24.0), vec![1.2]);
/// ```
pub fn feature_vector(mode: FeatureMode, own: SsMeasurement, corunner_bw_sum: f64) -> Vec<f64> {
    match mode {
        FeatureMode::IpcOnly => vec![own.ipc],
        FeatureMode::IpcBandwidth => vec![own.ipc, own.bandwidth, corunner_bw_sum],
    }
}

/// Aggregate co-runner bandwidth for slot `j` of a mix whose per-slot
/// single-core bandwidths are `bws`, rescaled to a machine with
/// `model_cores` slots.
///
/// On the target (`model_cores == bws.len()`) this is the paper's
/// `Σ_{k≠j} BW_ss(B_k)` exactly. For an `R`-core scale model the mix only
/// hosts `R − 1` co-runners, so the sum is scaled by
/// `(R − 1) / (T − 1)` — exact for homogeneous mixes and a proportional
/// subsample for heterogeneous ones.
///
/// # Panics
///
/// Panics if `j` is out of bounds or the mix has fewer than two slots.
pub fn corunner_bandwidth(bws: &[f64], j: usize, model_cores: u32) -> f64 {
    assert!(bws.len() >= 2, "need at least one co-runner");
    assert!(j < bws.len());
    let total: f64 = bws.iter().sum();
    let others = total - bws[j];
    let t_minus_1 = (bws.len() - 1) as f64;
    let r_minus_1 = f64::from(model_cores.max(1) - 1);
    others * r_minus_1 / t_minus_1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(FeatureMode::IpcOnly.width(), 1);
        assert_eq!(FeatureMode::IpcBandwidth.width(), 3);
    }

    #[test]
    fn corunner_sum_on_target() {
        let bws = [1.0, 2.0, 3.0, 4.0];
        // Full-size model: plain sum of the others.
        assert!((corunner_bandwidth(&bws, 0, 4) - 9.0).abs() < 1e-12);
        assert!((corunner_bandwidth(&bws, 3, 4) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn corunner_sum_rescales_for_smaller_models() {
        let bws = [2.0; 32];
        // Homogeneous: co-runner sum on an R-core model is (R-1)*bw.
        assert!((corunner_bandwidth(&bws, 0, 2) - 2.0).abs() < 1e-12);
        assert!((corunner_bandwidth(&bws, 0, 8) - 14.0).abs() < 1e-12);
        assert!((corunner_bandwidth(&bws, 0, 32) - 62.0).abs() < 1e-12);
    }

    #[test]
    fn single_core_model_has_no_corunners() {
        let bws = [1.0, 5.0];
        assert_eq!(corunner_bandwidth(&bws, 0, 1), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slot_panics() {
        let _ = corunner_bandwidth(&[1.0, 2.0], 2, 2);
    }
}
