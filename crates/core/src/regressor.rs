//! ML-based Regression (paper §III-B2): predict the unseen application's
//! IPC on several multi-core *scale models*, then extrapolate to the
//! target core count with a least-squares curve fit — no target-system
//! simulations are needed for training.

use serde::{Deserialize, Serialize};
use sms_ml::fit::{fit_curve, CurveModel};

use crate::predictor::{MlKind, ModelParams, TrainedPredictor};

/// The default set of multi-core scale models used for regression
/// (paper §III-B2 / §V-E4: 2-, 4-, 8- and 16-core models).
pub const DEFAULT_MS_CORES: [u32; 4] = [2, 4, 8, 16];

/// A trained regression extrapolator: one predictor per multi-core scale
/// model plus the curve family used to extrapolate IPC versus core count.
///
/// Serializable: persisting this value (plus the [`crate::pipeline::ExperimentConfig`]
/// it was trained under) captures everything needed to predict without
/// retraining — see [`crate::artifact`].
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionExtrapolator {
    models: Vec<(u32, TrainedPredictor)>,
    curve: CurveModel,
    kind: MlKind,
}

impl std::fmt::Debug for RegressionExtrapolator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegressionExtrapolator")
            .field("kind", &self.kind)
            .field("curve", &self.curve)
            .field(
                "scale_models",
                &self.models.iter().map(|m| m.0).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Training set for one multi-core scale model: feature rows (from the
/// single-core scale model) and per-application IPC measured on that
/// scale model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleModelTraining {
    /// The scale model's core count.
    pub cores: u32,
    /// Feature rows (see [`crate::features`]).
    pub rows: Vec<Vec<f64>>,
    /// Per-application IPC on this scale model.
    pub targets: Vec<f64>,
}

impl RegressionExtrapolator {
    /// Train one predictor per multi-core scale model (step 1 of §III-B2).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two scale models are supplied (a curve cannot
    /// be fitted otherwise) or any training set is empty.
    pub fn train(
        kind: MlKind,
        curve: CurveModel,
        training: &[ScaleModelTraining],
        params: &ModelParams,
        seed: u64,
    ) -> Self {
        assert!(
            training.len() >= 2,
            "regression needs at least two multi-core scale models"
        );
        let models = training
            .iter()
            .enumerate()
            .map(|(i, t)| {
                (
                    t.cores,
                    TrainedPredictor::train(kind, &t.rows, &t.targets, params, seed ^ (i as u64)),
                )
            })
            .collect();
        Self {
            models,
            curve,
            kind,
        }
    }

    /// Predict the application's IPC on the target system (steps 2 + 3 of
    /// §III-B2): predict IPC on each multi-core scale model from the
    /// per-model feature rows, then fit `IPC = f(cores)` and evaluate at
    /// `target_cores`.
    ///
    /// `rows_per_model` supplies the feature row for each scale model in
    /// training order (the co-runner bandwidth feature depends on the
    /// model's core count, see
    /// [`corunner_bandwidth`](crate::features::corunner_bandwidth)).
    ///
    /// Falls back to the largest scale model's prediction if the curve fit
    /// is degenerate.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_model.len()` differs from the model count.
    pub fn predict(&self, rows_per_model: &[Vec<f64>], target_cores: u32) -> f64 {
        assert_eq!(
            rows_per_model.len(),
            self.models.len(),
            "one feature row per scale model required"
        );
        let xs: Vec<f64> = self.models.iter().map(|(c, _)| f64::from(*c)).collect();
        let ys: Vec<f64> = self
            .models
            .iter()
            .zip(rows_per_model)
            .map(|((_, m), row)| m.predict(row))
            .collect();
        // sms-lint: allow(E1): the constructor rejects fewer than two models
        let last = *ys.last().expect("at least two models");
        let raw = match fit_curve(self.curve, &xs, &ys) {
            Some(c) => c.eval(f64::from(target_cores)),
            None => last,
        };
        // Physical prior: under proportional resource scaling, per-core
        // performance cannot swing far past the largest scale model's
        // level when growing to the target — contention only adds. Clamp
        // wild extrapolations (piecewise-constant tree outputs feed the
        // curve fit noisy series) to a band around the largest model.
        let hi = last.abs() * 1.25;
        raw.clamp(0.0, hi.max(1e-12))
    }

    /// Predicted IPC on each multi-core scale model (step 2 only), for
    /// diagnostics and the Fig 7 trade-off analysis.
    pub fn scale_model_predictions(&self, rows_per_model: &[Vec<f64>]) -> Vec<(u32, f64)> {
        self.models
            .iter()
            .zip(rows_per_model)
            .map(|((c, m), row)| (*c, m.predict(row)))
            .collect()
    }

    /// Curve family in use.
    pub fn curve(&self) -> CurveModel {
        self.curve
    }

    /// ML technique in use.
    pub fn kind(&self) -> MlKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic world: IPC(cores) = a·ln(cores) + b per "benchmark",
    /// where a and b derive from the features.
    fn synthetic_training(ms_cores: &[u32]) -> Vec<ScaleModelTraining> {
        ms_cores
            .iter()
            .map(|&cores| {
                let mut rows = Vec::new();
                let mut targets = Vec::new();
                for i in 0..40 {
                    let ipc = 0.5 + (i % 8) as f64 * 0.25;
                    let bw = (i % 5) as f64 * 0.6;
                    let co = bw * f64::from(cores - 1);
                    rows.push(vec![ipc, bw, co]);
                    targets.push(ipc - 0.05 * bw * f64::from(cores).ln());
                }
                ScaleModelTraining {
                    cores,
                    rows,
                    targets,
                }
            })
            .collect()
    }

    fn rows_for(ipc: f64, bw: f64, ms_cores: &[u32]) -> Vec<Vec<f64>> {
        ms_cores
            .iter()
            .map(|&c| vec![ipc, bw, bw * f64::from(c - 1)])
            .collect()
    }

    #[test]
    fn extrapolates_logarithmic_decline() {
        let ms = DEFAULT_MS_CORES;
        let training = synthetic_training(&ms);
        let ex = RegressionExtrapolator::train(
            MlKind::Svm,
            CurveModel::Logarithmic,
            &training,
            &ModelParams::default(),
            0,
        );
        let (ipc, bw) = (1.25, 1.2);
        let rows = rows_for(ipc, bw, &ms);
        let pred = ex.predict(&rows, 32);
        let truth = ipc - 0.05 * bw * 32f64.ln();
        let err = (pred - truth).abs() / truth;
        assert!(err < 0.1, "pred {pred} truth {truth} err {err}");
    }

    #[test]
    fn log_beats_linear_on_log_world() {
        let ms = DEFAULT_MS_CORES;
        let training = synthetic_training(&ms);
        let truth = |ipc: f64, bw: f64| ipc - 0.05 * bw * 32f64.ln();
        let mut errs = std::collections::HashMap::new();
        for curve in [CurveModel::Linear, CurveModel::Logarithmic] {
            let ex = RegressionExtrapolator::train(
                MlKind::Svm,
                curve,
                &training,
                &ModelParams::default(),
                0,
            );
            let mut e = 0.0;
            for i in 0..10 {
                let ipc = 0.6 + i as f64 * 0.15;
                let bw = 0.3 + (i % 4) as f64 * 0.5;
                let rows = rows_for(ipc, bw, &ms);
                let t = truth(ipc, bw);
                e += (ex.predict(&rows, 32) - t).abs() / t;
            }
            errs.insert(format!("{curve}"), e / 10.0);
        }
        assert!(
            errs["log"] < errs["linear"],
            "log {} should beat linear {}",
            errs["log"],
            errs["linear"]
        );
    }

    #[test]
    fn scale_model_predictions_expose_step_two() {
        let ms = [2u32, 4];
        let training = synthetic_training(&ms);
        let ex = RegressionExtrapolator::train(
            MlKind::DecisionTree,
            CurveModel::Logarithmic,
            &training,
            &ModelParams::default(),
            0,
        );
        let rows = rows_for(1.0, 0.6, &ms);
        let preds = ex.scale_model_predictions(&rows);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].0, 2);
        assert_eq!(preds[1].0, 4);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_scale_model_rejected() {
        let training = synthetic_training(&[4]);
        let _ = RegressionExtrapolator::train(
            MlKind::Svm,
            CurveModel::Logarithmic,
            &training,
            &ModelParams::default(),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "one feature row per scale model")]
    fn row_count_mismatch_rejected() {
        let training = synthetic_training(&[2, 4]);
        let ex = RegressionExtrapolator::train(
            MlKind::Svm,
            CurveModel::Logarithmic,
            &training,
            &ModelParams::default(),
            0,
        );
        let _ = ex.predict(&[vec![1.0, 0.5, 0.5]], 32);
    }
}
