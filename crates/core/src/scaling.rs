//! Scale-model construction: deriving a scaled-down [`SystemConfig`] from
//! the target system (paper §II, Table I).
//!
//! The central design choice is what happens to the shared resources when
//! the core count shrinks by a factor `F`:
//!
//! * **No Resource Scaling (NRS)** keeps LLC capacity, NoC bandwidth and
//!   DRAM bandwidth at target size.
//! * **Proportional Resource Scaling (PRS)** shrinks them by `F` so that
//!   per-core shares stay constant. DRAM bandwidth scales **MC-first**
//!   (drop memory controllers down to one, then shrink per-controller
//!   bandwidth) or **MB-first** (shrink per-controller bandwidth to the
//!   floor, then drop controllers); the paper finds MC-first more
//!   accurate (§V-E1, Fig 8).

use serde::{Deserialize, Serialize};
use sms_sim::config::SystemConfig;

/// How DRAM bandwidth is scaled down under PRS (paper §II and §V-E1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemBwScaling {
    /// First reduce the number of memory controllers (keeping per-MC
    /// bandwidth), then reduce per-MC bandwidth once one controller is
    /// left. The paper's default.
    McFirst,
    /// First reduce per-controller bandwidth down to the floor reached by
    /// the full scale-down, then reduce the controller count.
    MbFirst,
}

/// Which shared resources a scale model scales with core count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScalingPolicy {
    /// Scale LLC capacity (slice count follows core count).
    pub scale_llc: bool,
    /// Scale DRAM bandwidth.
    pub scale_dram: bool,
    /// Scale NoC bisection bandwidth and mesh geometry.
    pub scale_noc: bool,
    /// DRAM scaling order (only relevant when `scale_dram`).
    pub mem_bw: MemBwScaling,
}

impl ScalingPolicy {
    /// No Resource Scaling: shared resources stay at target size.
    pub fn nrs() -> Self {
        Self {
            scale_llc: false,
            scale_dram: false,
            scale_noc: false,
            mem_bw: MemBwScaling::McFirst,
        }
    }

    /// PRS scaling only the LLC (paper Fig 3, "PRS-LLC").
    pub fn prs_llc_only() -> Self {
        Self {
            scale_llc: true,
            ..Self::nrs()
        }
    }

    /// PRS scaling only DRAM bandwidth (paper Fig 3, "PRS-DRAM").
    pub fn prs_dram_only() -> Self {
        Self {
            scale_dram: true,
            ..Self::nrs()
        }
    }

    /// Full PRS: LLC, DRAM and NoC all scale proportionally. The paper's
    /// recommended construction.
    pub fn prs() -> Self {
        Self {
            scale_llc: true,
            scale_dram: true,
            scale_noc: true,
            mem_bw: MemBwScaling::McFirst,
        }
    }

    /// Full PRS with MB-first DRAM scaling (Fig 8 comparison point).
    pub fn prs_mb_first() -> Self {
        Self {
            mem_bw: MemBwScaling::MbFirst,
            ..Self::prs()
        }
    }
}

/// Mesh geometry for `cores` nodes: the near-square power-of-two mesh with
/// `cols >= rows` (8x4 at 32 cores, 4x4 at 16, ... 1x1 at 1).
pub fn mesh_dims(cores: u32) -> (u32, u32) {
    debug_assert!(cores.is_power_of_two());
    let bits = cores.trailing_zeros();
    let col_bits = bits.div_ceil(2);
    (1 << col_bits, 1 << (bits - col_bits))
}

/// Number of cross-section links on the `cols x rows` mesh: the links cut
/// by bisecting the longer dimension, i.e. the shorter dimension's size.
pub fn cross_section_links(cols: u32, rows: u32) -> u32 {
    cols.min(rows).max(1)
}

/// DRAM controller count and per-controller bandwidth for a scale model
/// with `cores` cores, given the target's 8 MCs at 16 GB/s and a 4 GB/s
/// per-core budget (Table I).
fn scale_dram(
    target_mcs: u32,
    target_mc_bw: f64,
    target_cores: u32,
    cores: u32,
    order: MemBwScaling,
) -> (u32, f64) {
    let total = f64::from(target_mcs) * target_mc_bw * f64::from(cores) / f64::from(target_cores);
    match order {
        MemBwScaling::McFirst => {
            // Keep per-MC bandwidth; drop controllers until one is left,
            // then shrink per-MC bandwidth.
            let mcs = ((total / target_mc_bw).floor() as u32).clamp(1, target_mcs);
            (mcs, total / f64::from(mcs))
        }
        MemBwScaling::MbFirst => {
            // Shrink per-MC bandwidth first, to the floor it reaches in
            // the full scale-down (total bandwidth / target MC count at
            // the point one MC remains = total_at_1core), then drop MCs.
            let floor_bw = f64::from(target_mcs) * target_mc_bw / f64::from(target_cores);
            let mcs = ((total / floor_bw).floor() as u32).clamp(1, target_mcs);
            if mcs == target_mcs {
                (target_mcs, total / f64::from(target_mcs))
            } else {
                (mcs, floor_bw)
            }
        }
    }
}

/// Derive the scale-model configuration with `cores` cores from `target`
/// under `policy`.
///
/// # Panics
///
/// Panics unless `cores` is a non-zero power of two not exceeding the
/// target's core count (the paper's scale models: 1, 2, 4, 8, 16 of 32).
pub fn scale_config(target: &SystemConfig, cores: u32, policy: ScalingPolicy) -> SystemConfig {
    assert!(
        cores > 0 && cores.is_power_of_two() && cores <= target.num_cores,
        "scale-model core count {cores} must be a power of two <= {}",
        target.num_cores
    );
    let mut cfg = target.clone();
    cfg.num_cores = cores;

    if policy.scale_llc {
        // One slice per core; slice geometry unchanged, so capacity per
        // core is constant.
        cfg.llc.num_slices = cores;
    }

    if policy.scale_noc {
        let (cols, rows) = mesh_dims(cores);
        cfg.noc.mesh_cols = cols;
        cfg.noc.mesh_rows = rows;
        let csls = cross_section_links(cols, rows);
        let total_bisection =
            target.noc.bisection_bandwidth_gbps() * f64::from(cores) / f64::from(target.num_cores);
        cfg.noc.cross_section_links = csls;
        cfg.noc.link_bandwidth_gbps = total_bisection / f64::from(csls);
    }

    if policy.scale_dram {
        let (mcs, bw) = scale_dram(
            target.dram.num_controllers,
            target.dram.controller_bandwidth_gbps,
            target.num_cores,
            cores,
            policy.mem_bw,
        );
        cfg.dram.num_controllers = mcs;
        cfg.dram.controller_bandwidth_gbps = bw;
    }

    // sms-lint: allow(E1): an invalid scaled config is a bug in the policy math, not an input error
    cfg.validate().expect("scaled configuration must be valid");
    cfg
}

/// One row of Table I: the PRS scale-model resource configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleTableRow {
    /// Scale-model core count.
    pub cores: u32,
    /// LLC capacity in MB and slice count.
    pub llc_mb: u64,
    /// LLC slices.
    pub llc_slices: u32,
    /// NoC bisection bandwidth in GB/s.
    pub noc_gbps: f64,
    /// Cross-section links.
    pub csls: u32,
    /// Bandwidth per CSL in GB/s.
    pub gbps_per_csl: f64,
    /// Total DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Memory controllers.
    pub mcs: u32,
    /// Bandwidth per MC in GB/s.
    pub gbps_per_mc: f64,
}

/// Build a Table-II-style target system with `cores` cores: the same
/// per-core microarchitecture and shared-resource *shares* as the paper's
/// 32-core machine (1 MB LLC, 4 GB/s NoC bisection and 4 GB/s DRAM per
/// core, one memory controller per four cores at 16 GB/s), on the
/// near-square mesh.
///
/// This is how the methodology reaches machines that are impractical to
/// simulate: construct the hypothetical large target, derive its scale
/// models with [`scale_config`], and extrapolate.
///
/// # Panics
///
/// Panics unless `cores` is a power of two in `[1, 256]` (the simulator's
/// core-id width).
///
/// # Examples
///
/// ```
/// let big = sms_core::scaling::target_config(64);
/// assert_eq!(big.num_cores, 64);
/// assert_eq!(big.llc.total_capacity_bytes(), 64 << 20);
/// assert!((big.dram.total_bandwidth_gbps() - 256.0).abs() < 1e-9);
/// big.validate().unwrap();
/// ```
pub fn target_config(cores: u32) -> SystemConfig {
    assert!(
        cores > 0 && cores.is_power_of_two() && cores <= 256,
        "target core count {cores} must be a power of two in [1, 256]"
    );
    let mut cfg = SystemConfig::target_32core();
    cfg.num_cores = cores;
    cfg.llc.num_slices = cores;
    let (cols, rows) = mesh_dims(cores);
    cfg.noc.mesh_cols = cols;
    cfg.noc.mesh_rows = rows;
    let csls = cross_section_links(cols, rows);
    cfg.noc.cross_section_links = csls;
    cfg.noc.link_bandwidth_gbps = 4.0 * f64::from(cores) / f64::from(csls);
    cfg.dram.num_controllers = (cores / 4).max(1);
    cfg.dram.controller_bandwidth_gbps =
        4.0 * f64::from(cores) / f64::from(cfg.dram.num_controllers);
    // sms-lint: allow(E1): an invalid constructed target is a bug in the construction math
    cfg.validate().expect("constructed target must validate");
    cfg
}

/// Regenerate Table I for the given target and DRAM scaling order.
pub fn scale_table(target: &SystemConfig, order: MemBwScaling) -> Vec<ScaleTableRow> {
    let mut rows = Vec::new();
    let mut cores = target.num_cores;
    let policy = ScalingPolicy {
        mem_bw: order,
        ..ScalingPolicy::prs()
    };
    while cores >= 1 {
        let cfg = scale_config(target, cores, policy);
        rows.push(ScaleTableRow {
            cores,
            llc_mb: cfg.llc.total_capacity_bytes() / (1024 * 1024),
            llc_slices: cfg.llc.num_slices,
            noc_gbps: cfg.noc.bisection_bandwidth_gbps(),
            csls: cfg.noc.cross_section_links,
            gbps_per_csl: cfg.noc.link_bandwidth_gbps,
            dram_gbps: cfg.dram.total_bandwidth_gbps(),
            mcs: cfg.dram.num_controllers,
            gbps_per_mc: cfg.dram.controller_bandwidth_gbps,
        });
        if cores == 1 {
            break;
        }
        cores /= 2;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> SystemConfig {
        SystemConfig::target_32core()
    }

    #[test]
    fn mesh_dims_match_paper() {
        assert_eq!(mesh_dims(32), (8, 4));
        assert_eq!(mesh_dims(16), (4, 4));
        assert_eq!(mesh_dims(8), (4, 2));
        assert_eq!(mesh_dims(4), (2, 2));
        assert_eq!(mesh_dims(2), (2, 1));
        assert_eq!(mesh_dims(1), (1, 1));
    }

    #[test]
    fn table_i_mc_first_reproduced_exactly() {
        // Paper Table I, MC-first (default):
        // cores, LLC MB/slices, NoC GB/s: CSLs x per-CSL, DRAM GB/s: MCs x per-MC
        let expect = [
            (32, 32, 32, 128.0, 4, 32.0, 128.0, 8, 16.0),
            (16, 16, 16, 64.0, 4, 16.0, 64.0, 4, 16.0),
            (8, 8, 8, 32.0, 2, 16.0, 32.0, 2, 16.0),
            (4, 4, 4, 16.0, 2, 8.0, 16.0, 1, 16.0),
            (2, 2, 2, 8.0, 1, 8.0, 8.0, 1, 8.0),
            (1, 1, 1, 4.0, 1, 4.0, 4.0, 1, 4.0),
        ];
        let rows = scale_table(&target(), MemBwScaling::McFirst);
        assert_eq!(rows.len(), 6);
        for (row, e) in rows.iter().zip(expect) {
            assert_eq!(row.cores, e.0);
            assert_eq!(row.llc_mb, e.1);
            assert_eq!(row.llc_slices, e.2);
            assert!((row.noc_gbps - e.3).abs() < 1e-9, "{}-core NoC", row.cores);
            assert_eq!(row.csls, e.4, "{}-core CSLs", row.cores);
            assert!((row.gbps_per_csl - e.5).abs() < 1e-9);
            assert!(
                (row.dram_gbps - e.6).abs() < 1e-9,
                "{}-core DRAM",
                row.cores
            );
            assert_eq!(row.mcs, e.7, "{}-core MCs", row.cores);
            assert!((row.gbps_per_mc - e.8).abs() < 1e-9);
        }
    }

    #[test]
    fn mb_first_scales_bandwidth_before_controllers() {
        // §V-E1: 16 -> 4 GB/s per MC while keeping 8 MCs, then drop MCs.
        let rows = scale_table(&target(), MemBwScaling::MbFirst);
        let at = |c: u32| rows.iter().find(|r| r.cores == c).unwrap().clone();
        assert_eq!(at(16).mcs, 8);
        assert!((at(16).gbps_per_mc - 8.0).abs() < 1e-9);
        assert_eq!(at(8).mcs, 8);
        assert!((at(8).gbps_per_mc - 4.0).abs() < 1e-9);
        assert_eq!(at(4).mcs, 4);
        assert!((at(4).gbps_per_mc - 4.0).abs() < 1e-9);
        assert_eq!(at(2).mcs, 2);
        assert_eq!(at(1).mcs, 1);
        assert!((at(1).gbps_per_mc - 4.0).abs() < 1e-9);
    }

    #[test]
    fn both_orders_agree_at_endpoints() {
        let mc = scale_table(&target(), MemBwScaling::McFirst);
        let mb = scale_table(&target(), MemBwScaling::MbFirst);
        for c in [32u32, 1] {
            let a = mc.iter().find(|r| r.cores == c).unwrap();
            let b = mb.iter().find(|r| r.cores == c).unwrap();
            assert_eq!(a.mcs, b.mcs);
            assert!((a.gbps_per_mc - b.gbps_per_mc).abs() < 1e-9);
        }
    }

    #[test]
    fn nrs_keeps_shared_resources() {
        let cfg = scale_config(&target(), 1, ScalingPolicy::nrs());
        assert_eq!(cfg.num_cores, 1);
        assert_eq!(cfg.llc.num_slices, 32);
        assert!((cfg.dram.total_bandwidth_gbps() - 128.0).abs() < 1e-9);
        assert!((cfg.noc.bisection_bandwidth_gbps() - 128.0).abs() < 1e-9);
        assert_eq!(cfg.noc.mesh_cols, 8);
    }

    #[test]
    fn partial_policies_scale_only_their_resource() {
        let llc_only = scale_config(&target(), 2, ScalingPolicy::prs_llc_only());
        assert_eq!(llc_only.llc.num_slices, 2);
        assert!((llc_only.dram.total_bandwidth_gbps() - 128.0).abs() < 1e-9);

        let dram_only = scale_config(&target(), 2, ScalingPolicy::prs_dram_only());
        assert_eq!(dram_only.llc.num_slices, 32);
        assert!((dram_only.dram.total_bandwidth_gbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn prs_keeps_per_core_shares_constant() {
        for cores in [1u32, 2, 4, 8, 16, 32] {
            let cfg = scale_config(&target(), cores, ScalingPolicy::prs());
            let per_core_llc = cfg.llc.total_capacity_bytes() / u64::from(cores);
            assert_eq!(per_core_llc, 1024 * 1024, "{cores}-core LLC share");
            let per_core_bw = cfg.dram.total_bandwidth_gbps() / f64::from(cores);
            assert!((per_core_bw - 4.0).abs() < 1e-9, "{cores}-core DRAM share");
            let per_core_noc = cfg.noc.bisection_bandwidth_gbps() / f64::from(cores);
            assert!((per_core_noc - 4.0).abs() < 1e-9, "{cores}-core NoC share");
        }
    }

    #[test]
    fn scaled_configs_validate() {
        for cores in [1u32, 2, 4, 8, 16, 32] {
            for policy in [
                ScalingPolicy::nrs(),
                ScalingPolicy::prs_llc_only(),
                ScalingPolicy::prs_dram_only(),
                ScalingPolicy::prs(),
                ScalingPolicy::prs_mb_first(),
            ] {
                scale_config(&target(), cores, policy)
                    .validate()
                    .unwrap_or_else(|e| panic!("{cores} cores {policy:?}: {e}"));
            }
        }
    }

    #[test]
    fn target_config_matches_table_ii_at_32() {
        assert_eq!(target_config(32), SystemConfig::target_32core());
    }

    #[test]
    fn target_config_extends_upward() {
        let t64 = target_config(64);
        assert_eq!(t64.llc.num_slices, 64);
        assert_eq!(t64.noc.mesh_cols * t64.noc.mesh_rows, 64);
        assert_eq!(t64.dram.num_controllers, 16);
        assert!((t64.dram.controller_bandwidth_gbps - 16.0).abs() < 1e-9);
        // Per-core shares stay at the paper's constants.
        assert!((t64.noc.bisection_bandwidth_gbps() / 64.0 - 4.0).abs() < 1e-9);

        let t256 = target_config(256);
        t256.validate().unwrap();
        assert_eq!(t256.dram.num_controllers, 64);
    }

    #[test]
    fn scale_models_of_a_big_target_keep_shares() {
        let t64 = target_config(64);
        for cores in [1u32, 4, 16, 64] {
            let m = scale_config(&t64, cores, ScalingPolicy::prs());
            assert_eq!(m.llc.total_capacity_bytes() / u64::from(cores), 1 << 20);
            assert!((m.dram.total_bandwidth_gbps() / f64::from(cores) - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn target_config_rejects_odd() {
        let _ = target_config(48);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = scale_config(&target(), 3, ScalingPolicy::prs());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn larger_than_target_rejected() {
        let _ = scale_config(&target(), 64, ScalingPolicy::prs());
    }
}
