//! Persisted model artifacts: versioned, checksummed JSON snapshots of a
//! trained ML-based-Regression model.
//!
//! The paper's economics hinge on amortization: training simulates the
//! scale models once, then every prediction is a cheap model evaluation
//! (§III-B2, Fig 2). An in-process [`crate::session::ScaleModelSession`]
//! only amortizes within one process lifetime; a [`ModelArtifact`]
//! extends that across processes and machines by serializing everything a
//! prediction needs:
//!
//! * the trained [`RegressionExtrapolator`] (per-scale-model predictors
//!   plus the extrapolation curve family),
//! * the [`ExperimentConfig`] it was trained under (target machine,
//!   scale-model ladder, feature mode),
//! * the single-core scale-model measurements of every training
//!   benchmark, so mixes over known benchmarks can be predicted without
//!   any simulation at all,
//! * a leave-one-out cross-validation error estimated at the scale-model
//!   level (no target-system truth required), attached to every
//!   prediction served from the artifact.
//!
//! The on-disk format is JSON with deterministically sorted keys, a
//! schema tag, a format version and an FNV-1a checksum over the canonical
//! payload encoding. Loading verifies all three and fails with a typed
//! [`ArtifactError`] rather than silently predicting from corrupt state.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;
use sms_workloads::spec::BenchmarkProfile;

use crate::features::{corunner_bandwidth, feature_vector, SsMeasurement};
use crate::metrics::prediction_error;
use crate::pipeline::{
    collect_scale_models, scale_model_training_sets, ExperimentConfig, ScaleModelData, Simulate,
};
use crate::predictor::{MlKind, ModelParams};
use crate::regressor::RegressionExtrapolator;
use crate::session::TRAINING_SEED;

/// Schema tag identifying artifact files (`schema` field).
pub const ARTIFACT_SCHEMA: &str = "sms-model-artifact";

/// Current artifact format version (`schema_version` field). Bump on any
/// incompatible change to [`ArtifactPayload`].
pub const ARTIFACT_SCHEMA_VERSION: u32 = 1;

/// Everything needed to answer prediction queries without retraining.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactPayload {
    /// ML technique of the per-scale-model predictors.
    pub kind: MlKind,
    /// Curve family used to extrapolate IPC versus core count.
    pub curve: CurveModel,
    /// The experiment configuration the model was trained under.
    pub cfg: ExperimentConfig,
    /// The trained extrapolator (full model state).
    pub extrapolator: RegressionExtrapolator,
    /// Single-core scale-model measurements per training benchmark,
    /// keyed by benchmark name.
    pub ss_table: BTreeMap<String, SsMeasurement>,
    /// Mean leave-one-out cross-validation error at the scale-model
    /// level (see [`train_artifact`]); `None` when the training suite is
    /// too small to estimate one.
    pub cv_error: Option<f64>,
    /// Benchmark names the model was trained on, in training order.
    pub trained_on: Vec<String>,
}

/// A versioned, checksummed, serialized trained model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Schema tag; always [`ARTIFACT_SCHEMA`].
    pub schema: String,
    /// Format version; always [`ARTIFACT_SCHEMA_VERSION`] when produced
    /// by this build.
    pub schema_version: u32,
    /// User-chosen model name (registry key).
    pub name: String,
    /// Hex FNV-1a/64 checksum of the canonical (sorted-key, compact)
    /// JSON encoding of `payload`.
    pub checksum: String,
    /// The trained model state.
    pub payload: ArtifactPayload,
}

/// One served prediction for a workload mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixPrediction {
    /// The benchmarks of the mix, one per target core slot.
    pub benchmarks: Vec<String>,
    /// Core count the prediction extrapolates to.
    pub target_cores: u32,
    /// Predicted per-core IPC, aligned with `benchmarks`.
    pub per_core_ipc: Vec<f64>,
    /// Predicted system throughput (sum of per-slot speedups over the
    /// single-core scale-model baseline); `0.0` when a baseline IPC is
    /// non-positive.
    pub stp: f64,
    /// The model's cross-validation error, attached so consumers can
    /// weigh the prediction.
    pub cv_error: Option<f64>,
}

/// Errors loading, validating, or querying a [`ModelArtifact`].
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not valid JSON or does not match the artifact shape.
    Json(serde_json::Error),
    /// The file's schema tag is not [`ARTIFACT_SCHEMA`].
    SchemaMismatch {
        /// Tag found in the file.
        found: String,
    },
    /// The file's format version differs from this build's.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build reads/writes.
        expected: u32,
    },
    /// The stored checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: String,
        /// Checksum recomputed from the payload.
        computed: String,
    },
    /// A prediction request named a benchmark absent from the artifact's
    /// single-core measurement table.
    UnknownBenchmark(String),
    /// A prediction request supplied an empty mix.
    EmptyMix,
    /// A prediction request supplied an unusable target core count.
    BadTargetCores(u32),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "artifact I/O error: {e}"),
            Self::Json(e) => write!(f, "artifact JSON error: {e}"),
            Self::SchemaMismatch { found } => {
                write!(
                    f,
                    "not a model artifact (schema tag {found:?}, expected {ARTIFACT_SCHEMA:?})"
                )
            }
            Self::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "artifact format version {found} unsupported (expected {expected})"
                )
            }
            Self::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "artifact checksum mismatch (stored {stored}, computed {computed})"
                )
            }
            Self::UnknownBenchmark(name) => {
                write!(
                    f,
                    "benchmark {name:?} is not in the model's measurement table"
                )
            }
            Self::EmptyMix => write!(f, "prediction request has an empty mix"),
            Self::BadTargetCores(n) => write!(f, "target core count {n} is unusable"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for ArtifactError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

/// Serialize to canonical JSON: compact, with object keys sorted.
///
/// Round-tripping through [`serde_json::Value`] sorts keys because the
/// workspace's `serde_json` uses the `BTreeMap`-backed object
/// representation, and the `float_roundtrip` feature keeps every `f64`
/// exact. Checksums and golden tests rely on this encoding being
/// byte-stable.
///
/// # Errors
///
/// Propagates any [`serde_json::Error`] from serialization.
pub fn to_canonical_json<T: Serialize>(value: &T) -> Result<String, serde_json::Error> {
    let v = serde_json::to_value(value)?;
    serde_json::to_string(&v)
}

/// Pretty-printed variant of [`to_canonical_json`] (sorted keys, 2-space
/// indentation) for on-disk files.
///
/// # Errors
///
/// Propagates any [`serde_json::Error`] from serialization.
pub fn to_sorted_pretty_json<T: Serialize>(value: &T) -> Result<String, serde_json::Error> {
    let v = serde_json::to_value(value)?;
    serde_json::to_string_pretty(&v)
}

/// FNV-1a 64-bit hash, rendered as 16 hex digits.
fn fnv1a64_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Make a model name safe for use as a file stem.
pub fn sanitize_name(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "model".to_owned()
    } else {
        cleaned
    }
}

impl ModelArtifact {
    /// Wrap a payload with the current schema tag, version, and a freshly
    /// computed checksum.
    ///
    /// # Panics
    ///
    /// Panics if the payload fails to serialize, which cannot happen for
    /// the plain-data types it contains.
    pub fn new(name: &str, payload: ArtifactPayload) -> Self {
        // sms-lint: allow(E1): documented panic; plain-data payloads always serialize
        let canonical = to_canonical_json(&payload).expect("artifact payload serializes");
        Self {
            schema: ARTIFACT_SCHEMA.to_owned(),
            schema_version: ARTIFACT_SCHEMA_VERSION,
            name: name.to_owned(),
            checksum: fnv1a64_hex(canonical.as_bytes()),
            payload,
        }
    }

    /// Re-derive the payload checksum and compare against the stored one.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::ChecksumMismatch`] when they differ.
    pub fn verify(&self) -> Result<(), ArtifactError> {
        let canonical = to_canonical_json(&self.payload)?;
        let computed = fnv1a64_hex(canonical.as_bytes());
        if computed != self.checksum {
            return Err(ArtifactError::ChecksumMismatch {
                stored: self.checksum.clone(),
                computed,
            });
        }
        Ok(())
    }

    /// The file name this artifact saves under: `<sanitized name>.json`.
    pub fn file_name(&self) -> String {
        format!("{}.json", sanitize_name(&self.name))
    }

    /// Write the artifact to `path` as sorted-key pretty JSON, creating
    /// parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization failures.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut text = to_sorted_pretty_json(self)?;
        text.push('\n');
        fs::write(path, text)?;
        Ok(())
    }

    /// Write the artifact into `dir` under [`ModelArtifact::file_name`]
    /// and return the full path.
    ///
    /// # Errors
    ///
    /// As [`ModelArtifact::save`].
    pub fn save_in(&self, dir: &Path) -> Result<PathBuf, ArtifactError> {
        let path = dir.join(self.file_name());
        self.save(&path)?;
        Ok(path)
    }

    /// Load and fully validate an artifact: JSON shape, schema tag,
    /// format version, and payload checksum.
    ///
    /// # Errors
    ///
    /// The corresponding [`ArtifactError`] variant for each failed check.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let text = fs::read_to_string(path)?;
        let value: serde_json::Value = serde_json::from_str(&text)?;
        // Check the envelope before strict struct decoding so mismatched
        // files fail with a precise error instead of a generic shape one.
        let schema = value.get("schema").and_then(|v| v.as_str()).unwrap_or("");
        if schema != ARTIFACT_SCHEMA {
            return Err(ArtifactError::SchemaMismatch {
                found: schema.to_owned(),
            });
        }
        let version = value
            .get("schema_version")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0) as u32;
        if version != ARTIFACT_SCHEMA_VERSION {
            return Err(ArtifactError::VersionMismatch {
                found: version,
                expected: ARTIFACT_SCHEMA_VERSION,
            });
        }
        let artifact: Self = serde_json::from_value(value)?;
        artifact.verify()?;
        Ok(artifact)
    }

    /// Predict per-core IPC and STP for a workload mix of known
    /// benchmarks — pure model evaluation, no simulation.
    ///
    /// Each mix slot gets the paper's feature rows (own single-core IPC
    /// and bandwidth plus rescaled co-runner bandwidth per scale model,
    /// §III-B) and is extrapolated to `target_cores` (defaults to the
    /// training target's core count).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::EmptyMix`], [`ArtifactError::BadTargetCores`], or
    /// [`ArtifactError::UnknownBenchmark`] on invalid requests.
    pub fn predict_mix(
        &self,
        benchmarks: &[String],
        target_cores: Option<u32>,
    ) -> Result<MixPrediction, ArtifactError> {
        if benchmarks.is_empty() {
            return Err(ArtifactError::EmptyMix);
        }
        let target = target_cores.unwrap_or(self.payload.cfg.target.num_cores);
        if target == 0 || target > 4096 {
            return Err(ArtifactError::BadTargetCores(target));
        }
        let ss: Vec<SsMeasurement> = benchmarks
            .iter()
            .map(|name| {
                self.payload
                    .ss_table
                    .get(name)
                    .copied()
                    .ok_or_else(|| ArtifactError::UnknownBenchmark(name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let bws: Vec<f64> = ss.iter().map(|m| m.bandwidth).collect();
        let per_core_ipc: Vec<f64> = ss
            .iter()
            .enumerate()
            .map(|(j, own)| {
                let rows: Vec<Vec<f64>> = self
                    .payload
                    .cfg
                    .ms_cores
                    .iter()
                    .map(|&c| {
                        let co = if bws.len() >= 2 {
                            corunner_bandwidth(&bws, j, c)
                        } else {
                            0.0
                        };
                        feature_vector(self.payload.cfg.mode, *own, co)
                    })
                    .collect();
                self.payload.extrapolator.predict(&rows, target)
            })
            .collect();
        let stp = if ss.iter().all(|m| m.ipc > 0.0) {
            let ss_ipcs: Vec<f64> = ss.iter().map(|m| m.ipc).collect();
            crate::metrics::stp(&per_core_ipc, &ss_ipcs)
        } else {
            0.0
        };
        Ok(MixPrediction {
            benchmarks: benchmarks.to_vec(),
            target_cores: target,
            per_core_ipc,
            stp,
            cv_error: self.payload.cv_error,
        })
    }

    /// Cheap analytic estimate of the same quantities as
    /// [`ModelArtifact::predict_mix`], computed directly from the stored
    /// single-core measurement table without evaluating the ML
    /// extrapolator.
    ///
    /// Each slot's IPC is its measured single-core IPC discounted by a
    /// bandwidth-contention factor: `ipc / (1 + co_bw / (1 + own_bw))`,
    /// where `co_bw` is the paper's rescaled co-runner bandwidth at the
    /// target core count. The estimate is bounded in `(0, own_ipc]`,
    /// monotone in contention, and fully deterministic — the serving
    /// tier's degraded-mode fallback when a model's breaker is open.
    /// `cv_error` is `None` to signal that no ML error estimate applies.
    ///
    /// # Errors
    ///
    /// The same request-shape errors as [`ModelArtifact::predict_mix`]:
    /// [`ArtifactError::EmptyMix`], [`ArtifactError::BadTargetCores`], or
    /// [`ArtifactError::UnknownBenchmark`].
    pub fn analytic_mix_estimate(
        &self,
        benchmarks: &[String],
        target_cores: Option<u32>,
    ) -> Result<MixPrediction, ArtifactError> {
        if benchmarks.is_empty() {
            return Err(ArtifactError::EmptyMix);
        }
        let target = target_cores.unwrap_or(self.payload.cfg.target.num_cores);
        if target == 0 || target > 4096 {
            return Err(ArtifactError::BadTargetCores(target));
        }
        let ss: Vec<SsMeasurement> = benchmarks
            .iter()
            .map(|name| {
                self.payload
                    .ss_table
                    .get(name)
                    .copied()
                    .ok_or_else(|| ArtifactError::UnknownBenchmark(name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let bws: Vec<f64> = ss.iter().map(|m| m.bandwidth).collect();
        let per_core_ipc: Vec<f64> = ss
            .iter()
            .enumerate()
            .map(|(j, own)| {
                let co = if bws.len() >= 2 {
                    corunner_bandwidth(&bws, j, target)
                } else {
                    0.0
                };
                own.ipc / (1.0 + co / (1.0 + own.bandwidth.max(0.0)))
            })
            .collect();
        let stp = if ss.iter().all(|m| m.ipc > 0.0) {
            let ss_ipcs: Vec<f64> = ss.iter().map(|m| m.ipc).collect();
            crate::metrics::stp(&per_core_ipc, &ss_ipcs)
        } else {
            0.0
        };
        Ok(MixPrediction {
            benchmarks: benchmarks.to_vec(),
            target_cores: target,
            per_core_ipc,
            stp,
            cv_error: None,
        })
    }
}

/// Mean leave-one-out cross-validation error at the scale-model level:
/// for each training benchmark, retrain on the others and compare the
/// held-out benchmark's predicted IPC on every multi-core scale model
/// against its measured value. Needs no target-system truth, matching
/// the methodology's no-target-simulation promise.
fn loo_cv_error(
    cfg: &ExperimentConfig,
    data: &[ScaleModelData],
    kind: MlKind,
    curve: CurveModel,
    params: &ModelParams,
) -> Option<f64> {
    if data.len() < 2 {
        return None;
    }
    let mut errors = Vec::new();
    for held in 0..data.len() {
        let rest: Vec<ScaleModelData> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != held)
            .map(|(_, d)| d.clone())
            .collect();
        let training = scale_model_training_sets(cfg, &rest);
        let ex = RegressionExtrapolator::train(kind, curve, &training, params, TRAINING_SEED);
        let d = &data[held];
        let rows: Vec<Vec<f64>> = cfg
            .ms_cores
            .iter()
            .map(|&c| feature_vector(cfg.mode, d.ss, d.ss.bandwidth * f64::from(c.max(1) - 1)))
            .collect();
        for (pred, actual) in ex.scale_model_predictions(&rows).iter().zip(&d.ms_ipc) {
            if actual.1 > 0.0 {
                errors.push(prediction_error(pred.1, actual.1));
            }
        }
    }
    if errors.is_empty() {
        None
    } else {
        Some(errors.iter().sum::<f64>() / errors.len() as f64)
    }
}

/// Train a model and package it as a persistable artifact.
///
/// Runs the same collection and training pipeline as
/// [`crate::session::ScaleModelSession::train_with`] (identical training
/// sets and seed, so predictions agree bit-for-bit), then additionally
/// captures the single-core measurement table and a leave-one-out
/// cross-validation error estimate.
///
/// # Errors
///
/// Propagates the first [`SimError`] of any training simulation.
///
/// # Panics
///
/// Panics if the training suite is empty or `cfg.ms_cores` has fewer
/// than two scale models.
pub fn train_artifact<S: Simulate>(
    sim: &mut S,
    cfg: ExperimentConfig,
    training_suite: &[BenchmarkProfile],
    kind: MlKind,
    curve: CurveModel,
    params: &ModelParams,
    name: &str,
) -> Result<ModelArtifact, SimError> {
    assert!(
        !training_suite.is_empty(),
        "training suite must be non-empty"
    );
    let data = collect_scale_models(sim, &cfg, training_suite)?;
    let training = scale_model_training_sets(&cfg, &data);
    let extrapolator = RegressionExtrapolator::train(kind, curve, &training, params, TRAINING_SEED);
    let cv_error = loo_cv_error(&cfg, &data, kind, curve, params);
    let ss_table: BTreeMap<String, SsMeasurement> =
        data.iter().map(|d| (d.name.clone(), d.ss)).collect();
    let trained_on: Vec<String> = data.iter().map(|d| d.name.clone()).collect();
    Ok(ModelArtifact::new(
        name,
        ArtifactPayload {
            kind,
            curve,
            cfg,
            extrapolator,
            ss_table,
            cv_error,
            trained_on,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressor::ScaleModelTraining;

    fn synthetic_payload() -> ArtifactPayload {
        let ms_cores = vec![2u32, 4];
        let training: Vec<ScaleModelTraining> = ms_cores
            .iter()
            .map(|&cores| {
                let mut rows = Vec::new();
                let mut targets = Vec::new();
                for i in 0..24 {
                    let ipc = 0.4 + (i % 8) as f64 * 0.25;
                    let bw = (i % 5) as f64 * 0.6;
                    rows.push(vec![ipc, bw, bw * f64::from(cores - 1)]);
                    targets.push(ipc - 0.04 * bw * f64::from(cores).ln());
                }
                ScaleModelTraining {
                    cores,
                    rows,
                    targets,
                }
            })
            .collect();
        let extrapolator = RegressionExtrapolator::train(
            MlKind::Svm,
            CurveModel::Logarithmic,
            &training,
            &ModelParams::default(),
            TRAINING_SEED,
        );
        let mut ss_table = BTreeMap::new();
        ss_table.insert(
            "alpha".to_owned(),
            SsMeasurement {
                ipc: 1.2,
                bandwidth: 0.9,
            },
        );
        ss_table.insert(
            "beta".to_owned(),
            SsMeasurement {
                ipc: 0.7,
                bandwidth: 1.8,
            },
        );
        ArtifactPayload {
            kind: MlKind::Svm,
            curve: CurveModel::Logarithmic,
            cfg: ExperimentConfig {
                ms_cores,
                ..ExperimentConfig::default()
            },
            extrapolator,
            ss_table,
            cv_error: Some(0.05),
            trained_on: vec!["alpha".to_owned(), "beta".to_owned()],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sms-artifact-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_exactly() {
        let artifact = ModelArtifact::new("unit", synthetic_payload());
        let dir = temp_dir("roundtrip");
        let path = artifact.save_in(&dir).unwrap();
        let loaded = ModelArtifact::load(&path).unwrap();
        assert_eq!(artifact, loaded);
        let mix = vec!["alpha".to_owned(), "beta".to_owned()];
        let a = artifact.predict_mix(&mix, None).unwrap();
        let b = loaded.predict_mix(&mix, None).unwrap();
        assert_eq!(a.per_core_ipc, b.per_core_ipc);
        assert_eq!(a.stp, b.stp);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn canonical_json_has_sorted_keys_and_is_stable() {
        let artifact = ModelArtifact::new("unit", synthetic_payload());
        let a = to_sorted_pretty_json(&artifact).unwrap();
        let b = to_sorted_pretty_json(&artifact).unwrap();
        assert_eq!(a, b, "serialization must be byte-stable");
        // Re-parsing and re-serializing reproduces the same bytes: the
        // encoding is canonical.
        let v: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert_eq!(serde_json::to_string_pretty(&v).unwrap(), a);
        // Top-level keys come out in sorted order.
        let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn tampered_payload_rejected() {
        let artifact = ModelArtifact::new("unit", synthetic_payload());
        let dir = temp_dir("tamper");
        let path = artifact.save_in(&dir).unwrap();
        let mut v: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        v["payload"]["cv_error"] = serde_json::json!(0.0001);
        fs::write(&path, serde_json::to_string_pretty(&v).unwrap()).unwrap();
        match ModelArtifact::load(&path) {
            Err(ArtifactError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_and_schema_mismatches_rejected() {
        let artifact = ModelArtifact::new("unit", synthetic_payload());
        let dir = temp_dir("version");
        let path = artifact.save_in(&dir).unwrap();
        let original = fs::read_to_string(&path).unwrap();

        let mut v: serde_json::Value = serde_json::from_str(&original).unwrap();
        v["schema_version"] = serde_json::json!(999);
        fs::write(&path, serde_json::to_string(&v).unwrap()).unwrap();
        match ModelArtifact::load(&path) {
            Err(ArtifactError::VersionMismatch { found: 999, .. }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }

        let mut v: serde_json::Value = serde_json::from_str(&original).unwrap();
        v["schema"] = serde_json::json!("something-else");
        fs::write(&path, serde_json::to_string(&v).unwrap()).unwrap();
        match ModelArtifact::load(&path) {
            Err(ArtifactError::SchemaMismatch { .. }) => {}
            other => panic!("expected schema mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prediction_request_validation() {
        let artifact = ModelArtifact::new("unit", synthetic_payload());
        assert!(matches!(
            artifact.predict_mix(&[], None),
            Err(ArtifactError::EmptyMix)
        ));
        assert!(matches!(
            artifact.predict_mix(&["nope".to_owned()], None),
            Err(ArtifactError::UnknownBenchmark(_))
        ));
        assert!(matches!(
            artifact.predict_mix(&["alpha".to_owned()], Some(0)),
            Err(ArtifactError::BadTargetCores(0))
        ));
        // A single-benchmark mix is legal: no co-runners.
        let p = artifact
            .predict_mix(&["alpha".to_owned()], Some(8))
            .unwrap();
        assert_eq!(p.per_core_ipc.len(), 1);
        assert!(p.per_core_ipc[0].is_finite());
        assert_eq!(p.target_cores, 8);
    }

    #[test]
    fn sanitize_name_keeps_safe_chars() {
        assert_eq!(sanitize_name("svm-log.32c"), "svm-log.32c");
        assert_eq!(sanitize_name("a b/c"), "a-b-c");
        assert_eq!(sanitize_name(""), "model");
    }

    #[test]
    fn analytic_estimate_is_bounded_and_validates_like_predict() {
        let artifact = ModelArtifact::new("unit", synthetic_payload());
        // Same request-shape errors as predict_mix.
        assert!(matches!(
            artifact.analytic_mix_estimate(&[], None),
            Err(ArtifactError::EmptyMix)
        ));
        assert!(matches!(
            artifact.analytic_mix_estimate(&["nope".to_owned()], None),
            Err(ArtifactError::UnknownBenchmark(_))
        ));
        assert!(matches!(
            artifact.analytic_mix_estimate(&["alpha".to_owned()], Some(5000)),
            Err(ArtifactError::BadTargetCores(5000))
        ));

        // A lone benchmark has no co-runner contention: the estimate is
        // exactly its single-core IPC.
        let solo = artifact
            .analytic_mix_estimate(&["alpha".to_owned()], Some(8))
            .unwrap();
        assert_eq!(solo.per_core_ipc, vec![1.2]);
        assert_eq!(solo.cv_error, None);

        // With co-runners the estimate is discounted but stays positive,
        // and more target cores means more contention, never less IPC.
        let mix = vec!["alpha".to_owned(), "beta".to_owned()];
        let at8 = artifact.analytic_mix_estimate(&mix, Some(8)).unwrap();
        let at64 = artifact.analytic_mix_estimate(&mix, Some(64)).unwrap();
        for (slot, own) in at8.per_core_ipc.iter().zip([1.2, 0.7]) {
            assert!(*slot > 0.0 && *slot <= own, "slot {slot} vs own {own}");
        }
        for (wide, narrow) in at64.per_core_ipc.iter().zip(&at8.per_core_ipc) {
            assert!(wide <= narrow, "contention must not raise IPC");
        }
        assert!(at8.stp > 0.0);
        // Deterministic: same request, same answer, bit for bit.
        let again = artifact.analytic_mix_estimate(&mix, Some(8)).unwrap();
        assert_eq!(again, at8);
    }

    #[test]
    fn artifact_error_display_and_source() {
        let io_err: ArtifactError = std::io::Error::other("boom").into();
        assert!(io_err.to_string().starts_with("artifact I/O error:"));
        assert!(std::error::Error::source(&io_err).is_some());

        let json_err: ArtifactError = serde_json::from_str::<serde_json::Value>("{nope")
            .unwrap_err()
            .into();
        assert!(json_err.to_string().starts_with("artifact JSON error:"));
        assert!(std::error::Error::source(&json_err).is_some());

        let cases: Vec<(ArtifactError, &str)> = vec![
            (
                ArtifactError::SchemaMismatch {
                    found: "other".to_owned(),
                },
                "not a model artifact",
            ),
            (
                ArtifactError::VersionMismatch {
                    found: 9,
                    expected: ARTIFACT_SCHEMA_VERSION,
                },
                "artifact format version 9 unsupported",
            ),
            (
                ArtifactError::ChecksumMismatch {
                    stored: "aa".to_owned(),
                    computed: "bb".to_owned(),
                },
                "artifact checksum mismatch (stored aa, computed bb)",
            ),
            (
                ArtifactError::UnknownBenchmark("x".to_owned()),
                "benchmark \"x\" is not in the model's measurement table",
            ),
            (ArtifactError::EmptyMix, "empty mix"),
            (
                ArtifactError::BadTargetCores(0),
                "target core count 0 is unusable",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle:?}"
            );
            // Only Io/Json wrap a source error.
            assert!(std::error::Error::source(&err).is_none(), "{err}");
        }
    }
}
