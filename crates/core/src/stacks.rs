//! Cycle stacks and speedup stacks (paper §V-E6, future work).
//!
//! The paper points to *speedup stacks* (Eyerman, Du Bois & Eeckhout,
//! ISPASS 2012) as the route to extending scale-model simulation to
//! multi-threaded workloads: quantify how each bottleneck component
//! (dispatch, branch flushes, instruction fetch, memory) scales with
//! system size across a range of scale models, and extrapolate each
//! component separately. This module provides that decomposition on top
//! of the simulator's per-core counters.

use serde::{Deserialize, Serialize};
use sms_sim::stats::CoreResult;

/// A per-application cycle stack: the run's cycles attributed to
/// bottleneck components. Components sum to `total()` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleStack {
    /// Cycles spent dispatching instructions (the compute base).
    pub dispatch: f64,
    /// Cycles lost to branch-misprediction flushes.
    pub branch: f64,
    /// Cycles lost to instruction-fetch stalls.
    pub fetch: f64,
    /// Cycles the memory completion horizon extended past the front end
    /// (data-memory boundness, including all shared-resource queueing).
    pub memory: f64,
}

impl CycleStack {
    /// Decompose one core's measured run into a cycle stack.
    ///
    /// # Examples
    ///
    /// ```
    /// # use sms_core::stacks::CycleStack;
    /// # use sms_sim::stats::CoreResult;
    /// let core = CoreResult {
    ///     label: "lbm_r".into(), instructions: 1000, cycles: 2000, ipc: 0.5,
    ///     l1d_load_misses: 0, llc_hits: 0, dram_loads: 0, dram_bytes: 0,
    ///     bandwidth_gbps: 0.0, llc_mpki: 0.0, mem_stall_cycles: 1200,
    ///     fetch_stall_cycles: 100, branch_stall_cycles: 50, prefetches: 0,
    /// };
    /// let s = CycleStack::from_core(&core);
    /// assert_eq!(s.total(), 2000.0);
    /// assert_eq!(s.memory, 1200.0);
    /// assert_eq!(s.dispatch, 650.0);
    /// ```
    pub fn from_core(core: &CoreResult) -> Self {
        let branch = core.branch_stall_cycles as f64;
        let fetch = core.fetch_stall_cycles as f64;
        let memory = core.mem_stall_cycles as f64;
        let dispatch = core.cycles as f64 - branch - fetch - memory;
        Self {
            dispatch,
            branch,
            fetch,
            memory,
        }
    }

    /// Total cycles across components.
    pub fn total(&self) -> f64 {
        self.dispatch + self.branch + self.fetch + self.memory
    }

    /// Components normalized per instruction (CPI stack).
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn per_instruction(&self, instructions: u64) -> CycleStack {
        assert!(instructions > 0, "need a non-empty run");
        let n = instructions as f64;
        CycleStack {
            dispatch: self.dispatch / n,
            branch: self.branch / n,
            fetch: self.fetch / n,
            memory: self.memory / n,
        }
    }
}

/// One scale-model observation for a speedup-stack analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackSample {
    /// Machine size (cores).
    pub cores: u32,
    /// CPI stack measured at that size.
    pub cpi: CycleStack,
}

/// How each CPI component scales across machine sizes: the per-component
/// least-squares slope against `ln(cores)` (the same logarithmic family
/// the IPC regression uses), plus the component values extrapolated to a
/// target size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupStack {
    /// Samples the analysis was built from, sorted by core count.
    pub samples: Vec<StackSample>,
    /// Extrapolated CPI stack at the target size.
    pub extrapolated: CycleStack,
    /// Target size the extrapolation was evaluated at.
    pub target_cores: u32,
}

fn fit_component(samples: &[StackSample], target: f64, get: impl Fn(&CycleStack) -> f64) -> f64 {
    let xs: Vec<f64> = samples.iter().map(|s| f64::from(s.cores)).collect();
    let ys: Vec<f64> = samples.iter().map(|s| get(&s.cpi)).collect();
    match sms_ml::fit::fit_curve(sms_ml::fit::CurveModel::Logarithmic, &xs, &ys) {
        // CPI components cannot be negative; clamp the extrapolation.
        Some(c) => c.eval(target).max(0.0),
        // sms-lint: allow(E1): fit_curve only returns None for non-empty degenerate inputs
        None => *ys.last().expect("at least one sample"),
    }
}

/// Build a speedup stack: fit each CPI component across the scale models
/// and extrapolate to `target_cores`.
///
/// # Panics
///
/// Panics if fewer than two samples are given.
pub fn speedup_stack(mut samples: Vec<StackSample>, target_cores: u32) -> SpeedupStack {
    assert!(samples.len() >= 2, "need at least two scale models");
    samples.sort_by_key(|s| s.cores);
    let t = f64::from(target_cores);
    let extrapolated = CycleStack {
        dispatch: fit_component(&samples, t, |c| c.dispatch),
        branch: fit_component(&samples, t, |c| c.branch),
        fetch: fit_component(&samples, t, |c| c.fetch),
        memory: fit_component(&samples, t, |c| c.memory),
    };
    SpeedupStack {
        samples,
        extrapolated,
        target_cores,
    }
}

impl SpeedupStack {
    /// Predicted IPC at the target size: the reciprocal of the
    /// extrapolated CPI stack.
    pub fn predicted_ipc(&self) -> f64 {
        1.0 / self.extrapolated.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(d: f64, b: f64, f: f64, m: f64) -> CycleStack {
        CycleStack {
            dispatch: d,
            branch: b,
            fetch: f,
            memory: m,
        }
    }

    fn core_result(cycles: u64, mem: u64, fetch: u64, branch: u64) -> CoreResult {
        CoreResult {
            label: "t".into(),
            instructions: 1000,
            cycles,
            ipc: 1000.0 / cycles as f64,
            l1d_load_misses: 0,
            llc_hits: 0,
            dram_loads: 0,
            dram_bytes: 0,
            bandwidth_gbps: 0.0,
            llc_mpki: 0.0,
            mem_stall_cycles: mem,
            fetch_stall_cycles: fetch,
            branch_stall_cycles: branch,
            prefetches: 0,
        }
    }

    #[test]
    fn stack_components_sum_to_cycles() {
        let c = core_result(5000, 3000, 500, 200);
        let s = CycleStack::from_core(&c);
        assert_eq!(s.total(), 5000.0);
        assert_eq!(s.dispatch, 1300.0);
    }

    #[test]
    fn per_instruction_normalizes() {
        let c = core_result(4000, 2000, 0, 0);
        let s = CycleStack::from_core(&c).per_instruction(1000);
        assert_eq!(s.memory, 2.0);
        assert_eq!(s.total(), 4.0);
    }

    #[test]
    fn memory_component_extrapolates_log_growth() {
        // Memory CPI grows as 0.1 ln(cores) + 0.5; others constant.
        let samples: Vec<StackSample> = [2u32, 4, 8, 16]
            .iter()
            .map(|&cores| StackSample {
                cores,
                cpi: stack(0.25, 0.05, 0.02, 0.1 * f64::from(cores).ln() + 0.5),
            })
            .collect();
        let s = speedup_stack(samples, 32);
        let expect = 0.1 * 32f64.ln() + 0.5;
        assert!((s.extrapolated.memory - expect).abs() < 1e-9);
        assert!((s.extrapolated.dispatch - 0.25).abs() < 1e-9);
        let ipc = s.predicted_ipc();
        let truth = 1.0 / (0.25 + 0.05 + 0.02 + expect);
        assert!((ipc - truth).abs() < 1e-9);
    }

    #[test]
    fn components_never_extrapolate_negative() {
        // Steeply falling component would go negative at 32 linearly.
        let samples: Vec<StackSample> = [2u32, 4]
            .iter()
            .map(|&cores| StackSample {
                cores,
                cpi: stack(0.25, 0.0, 0.0, 1.0 - 0.4 * f64::from(cores).ln()),
            })
            .collect();
        let s = speedup_stack(samples, 32);
        assert!(s.extrapolated.memory >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_sample_rejected() {
        let _ = speedup_stack(
            vec![StackSample {
                cores: 2,
                cpi: stack(0.25, 0.0, 0.0, 0.5),
            }],
            32,
        );
    }

    #[test]
    fn samples_sorted_by_cores() {
        let samples = vec![
            StackSample {
                cores: 8,
                cpi: stack(0.25, 0.0, 0.0, 0.7),
            },
            StackSample {
                cores: 2,
                cpi: stack(0.25, 0.0, 0.0, 0.5),
            },
            StackSample {
                cores: 4,
                cpi: stack(0.25, 0.0, 0.0, 0.6),
            },
        ];
        let s = speedup_stack(samples, 32);
        let order: Vec<u32> = s.samples.iter().map(|x| x.cores).collect();
        assert_eq!(order, vec![2, 4, 8]);
    }
}
