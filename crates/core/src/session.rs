//! High-level "train once, predict many" API.
//!
//! The paper's workflow (§III-B2, Fig 2) amortizes a one-time training
//! cost — simulating a set of known benchmarks on the single-core and
//! multi-core scale models — across many cheap predictions, each needing
//! only one single-core scale-model run of the application of interest.
//! [`ScaleModelSession`] packages exactly that: build it once from a
//! training suite, then call [`ScaleModelSession::predict`] per unseen
//! application.
//!
//! ```no_run
//! use sms_core::pipeline::{DirectSim, ExperimentConfig};
//! use sms_core::session::ScaleModelSession;
//! use sms_workloads::spec::{by_name, suite};
//!
//! let cfg = ExperimentConfig::default();
//! let training: Vec<_> = suite().into_iter().filter(|p| p.name != "mcf_r").collect();
//! let session = ScaleModelSession::train(&mut DirectSim, cfg, &training).unwrap();
//! let prediction = session
//!     .predict(&mut DirectSim, &by_name("mcf_r").unwrap())
//!     .unwrap();
//! println!("predicted 32-core IPC: {:.3}", prediction.target_ipc);
//! ```

use serde::{Deserialize, Serialize};
use sms_ml::fit::CurveModel;
use sms_sim::error::SimError;
use sms_sim::stats::SimResult;
use sms_workloads::mix::MixSpec;
use sms_workloads::spec::BenchmarkProfile;

use crate::features::{feature_vector, SsMeasurement};
use crate::pipeline::{
    collect_scale_models, scale_model_training_sets, ExperimentConfig, Simulate,
};
use crate::predictor::{MlKind, ModelParams};
use crate::regressor::RegressionExtrapolator;
use crate::scaling::scale_config;

/// The fixed seed used to train session extrapolators, shared with
/// [`crate::artifact::train_artifact`] so a persisted artifact reproduces
/// an in-process session bit-for-bit given the same measurements.
pub const TRAINING_SEED: u64 = 1234;

/// One prediction for an unseen application.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetPrediction {
    /// Application name.
    pub name: String,
    /// Predicted per-core IPC on the target system.
    pub target_ipc: f64,
    /// The single-core scale-model measurement the prediction used.
    pub ss: SsMeasurement,
    /// Predicted IPC on each multi-core scale model (diagnostics).
    pub scale_model_ipcs: Vec<(u32, f64)>,
    /// Host seconds spent on the (single) scale-model simulation.
    pub host_seconds: f64,
}

/// A trained scale-model prediction session (homogeneous-mix regime).
///
/// Training needs no target-system simulations: the dependent variables
/// come from the multi-core *scale models* (ML-based Regression). Use the
/// lower-level [`crate::predictor`] API for ML-based Prediction when
/// target-system training runs are available.
///
/// Serializable: a trained session round-trips through serde, and
/// [`crate::artifact::ModelArtifact`] persists the same `(config,
/// extrapolator)` pair with a schema tag and checksum.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleModelSession {
    cfg: ExperimentConfig,
    extrapolator: RegressionExtrapolator,
}

impl std::fmt::Debug for ScaleModelSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScaleModelSession")
            .field("target_cores", &self.cfg.target.num_cores)
            .field("ms_cores", &self.cfg.ms_cores)
            .field("kind", &self.extrapolator.kind())
            .field("curve", &self.extrapolator.curve())
            .finish()
    }
}

impl ScaleModelSession {
    /// Train with the paper's defaults: SVM + logarithmic regression.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] of any training simulation.
    ///
    /// # Panics
    ///
    /// Panics if the training suite is empty or `cfg.ms_cores` has fewer
    /// than two scale models.
    pub fn train<S: Simulate>(
        sim: &mut S,
        cfg: ExperimentConfig,
        training_suite: &[BenchmarkProfile],
    ) -> Result<Self, SimError> {
        Self::train_with(
            sim,
            cfg,
            training_suite,
            MlKind::Svm,
            CurveModel::Logarithmic,
            &ModelParams::default(),
        )
    }

    /// Train with explicit model choices.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] of any training simulation.
    ///
    /// # Panics
    ///
    /// As [`ScaleModelSession::train`].
    pub fn train_with<S: Simulate>(
        sim: &mut S,
        cfg: ExperimentConfig,
        training_suite: &[BenchmarkProfile],
        kind: MlKind,
        curve: CurveModel,
        params: &ModelParams,
    ) -> Result<Self, SimError> {
        assert!(
            !training_suite.is_empty(),
            "training suite must be non-empty"
        );
        // Scale models only: ML-based Regression never simulates the
        // target (§III-B2).
        let data = collect_scale_models(sim, &cfg, training_suite)?;
        let training = scale_model_training_sets(&cfg, &data);
        let extrapolator =
            RegressionExtrapolator::train(kind, curve, &training, params, TRAINING_SEED);
        Ok(Self { cfg, extrapolator })
    }

    /// Rebuild a session from an already-trained extrapolator and the
    /// configuration it was trained under (e.g. a loaded
    /// [`crate::artifact::ModelArtifact`]).
    pub fn from_parts(cfg: ExperimentConfig, extrapolator: RegressionExtrapolator) -> Self {
        Self { cfg, extrapolator }
    }

    /// The experiment configuration in use.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The trained extrapolator.
    pub fn extrapolator(&self) -> &RegressionExtrapolator {
        &self.extrapolator
    }

    /// Predict the per-core target IPC of an unseen application from one
    /// single-core scale-model simulation.
    ///
    /// # Errors
    ///
    /// Propagates the [`SimError`] of the scale-model run.
    pub fn predict<S: Simulate>(
        &self,
        sim: &mut S,
        profile: &BenchmarkProfile,
    ) -> Result<TargetPrediction, SimError> {
        let ss_cfg = scale_config(&self.cfg.target, 1, self.cfg.policy);
        let mix = MixSpec::homogeneous(profile.name, 1, self.cfg.seed);
        let run: SimResult = sim.run_mix(&ss_cfg, &mix, self.cfg.spec)?;
        let ss = SsMeasurement {
            ipc: run.cores[0].ipc,
            bandwidth: run.cores[0].bandwidth_gbps,
        };
        Ok(self.predict_from_measurement(profile.name, ss, run.host_seconds))
    }

    /// Predict from an already-measured single-core scale-model result
    /// (e.g. a cached run or an external measurement).
    pub fn predict_from_measurement(
        &self,
        name: &str,
        ss: SsMeasurement,
        host_seconds: f64,
    ) -> TargetPrediction {
        let rows: Vec<Vec<f64>> = self
            .cfg
            .ms_cores
            .iter()
            .map(|&c| feature_vector(self.cfg.mode, ss, ss.bandwidth * f64::from(c.max(1) - 1)))
            .collect();
        let target_ipc = self.extrapolator.predict(&rows, self.cfg.target.num_cores);
        let scale_model_ipcs = self.extrapolator.scale_model_predictions(&rows);
        TargetPrediction {
            name: name.to_owned(),
            target_ipc,
            ss,
            scale_model_ipcs,
            host_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sms_sim::config::SystemConfig;
    use sms_sim::system::RunSpec;
    use sms_workloads::spec::suite;

    /// Analytic fake world (same family as the pipeline tests): target
    /// IPC declines logarithmically with machine size, scaled by the
    /// benchmark's memory weight.
    struct FakeSim;

    fn intrinsic(name: &str) -> (f64, f64) {
        let h = name
            .bytes()
            .fold(7u64, |a, b| a.wrapping_mul(31).wrapping_add(b.into()));
        (0.3 + (h % 17) as f64 * 0.15, 0.1 + (h % 7) as f64 * 0.55)
    }

    impl Simulate for FakeSim {
        fn run_mix(
            &mut self,
            cfg: &SystemConfig,
            mix: &MixSpec,
            _spec: RunSpec,
        ) -> Result<SimResult, SimError> {
            let cores = mix.benchmarks.len();
            let results = mix
                .benchmarks
                .iter()
                .map(|n| {
                    let (ipc0, bw0) = intrinsic(n);
                    let mem = bw0 / 3.5;
                    let ipc = ipc0 / (1.0 + mem * 0.08 * (cores as f64).ln());
                    sms_sim::stats::CoreResult {
                        label: n.clone(),
                        instructions: 1_000_000,
                        cycles: (1_000_000.0 / ipc) as u64,
                        ipc,
                        l1d_load_misses: 0,
                        llc_hits: 0,
                        dram_loads: 0,
                        dram_bytes: 0,
                        bandwidth_gbps: bw0,
                        llc_mpki: 0.0,
                        mem_stall_cycles: 0,
                        fetch_stall_cycles: 0,
                        branch_stall_cycles: 0,
                        prefetches: 0,
                    }
                })
                .collect();
            Ok(SimResult {
                cores: results,
                elapsed_cycles: 1_000_000,
                total_dram_bytes: 0,
                total_bandwidth_gbps: 0.0,
                noc_transfers: 0,
                noc_crossings: 0,
                llc_accesses: 0,
                llc_hits: 0,
                host_seconds: 0.001 * cfg.num_cores as f64,
            })
        }
    }

    #[test]
    fn session_trains_and_predicts_unseen_apps() {
        let all = suite();
        // Hold out four mid-suite benchmarks; the rest train. (Holding out
        // feature-space extremes instead tests extrapolation beyond the
        // training hull, which the methodology explicitly does not claim —
        // see the fig5/ext_64core discussions.)
        let eval: Vec<_> = [5usize, 10, 15, 20]
            .iter()
            .map(|&i| all[i].clone())
            .collect();
        let train: Vec<_> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| ![5usize, 10, 15, 20].contains(i))
            .map(|(_, p)| p.clone())
            .collect();
        let session =
            ScaleModelSession::train(&mut FakeSim, ExperimentConfig::default(), &train).unwrap();
        for p in &eval {
            let pred = session.predict(&mut FakeSim, p).unwrap();
            let (ipc0, bw0) = intrinsic(p.name);
            let truth = ipc0 / (1.0 + bw0 / 3.5 * 0.08 * 32f64.ln());
            let err = (pred.target_ipc - truth).abs() / truth;
            assert!(err < 0.15, "{}: err {err:.3}", p.name);
            assert_eq!(pred.scale_model_ipcs.len(), 4);
            assert!(pred.host_seconds > 0.0);
        }
    }

    #[test]
    fn predict_from_measurement_matches_predict() {
        let all = suite();
        let session =
            ScaleModelSession::train(&mut FakeSim, ExperimentConfig::default(), &all[..10])
                .unwrap();
        let p = &all[20];
        let a = session.predict(&mut FakeSim, p).unwrap();
        let b = session.predict_from_measurement(p.name, a.ss, 0.0);
        assert_eq!(a.target_ipc, b.target_ipc);
    }

    #[test]
    fn debug_formatting_is_informative() {
        let session =
            ScaleModelSession::train(&mut FakeSim, ExperimentConfig::default(), &suite()[..5])
                .unwrap();
        let d = format!("{session:?}");
        assert!(d.contains("target_cores: 32"));
        assert!(d.contains("SVM") || d.contains("Svm"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_suite_rejected() {
        let _ = ScaleModelSession::train(&mut FakeSim, ExperimentConfig::default(), &[]);
    }
}
