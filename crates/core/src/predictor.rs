//! ML-based Prediction (paper §III-B1): train a model mapping single-core
//! scale-model features to target-system per-application IPC.

use serde::{Deserialize, Serialize};
use sms_ml::data::{Dataset, Matrix, Regressor};
use sms_ml::forest::{ForestParams, RandomForest};
use sms_ml::krr::{KernelRidge, KrrParams};
use sms_ml::scale::StandardScaler;
use sms_ml::svr::{Svr, SvrParams};
use sms_ml::tree::{DecisionTree, TreeParams};

/// The ML techniques the paper evaluates (§III-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MlKind {
    /// CART decision tree (scikit-learn `DecisionTreeRegressor`).
    DecisionTree,
    /// Random forest (scikit-learn `RandomForestRegressor`).
    RandomForest,
    /// ε-SVR with RBF kernel (scikit-learn `SVR`), the paper's best.
    Svm,
    /// Kernel ridge regression — not part of the paper's trio; same RBF
    /// hypothesis space as SVR with a squared loss, for loss-function
    /// comparison studies.
    KernelRidge,
}

impl std::fmt::Display for MlKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DecisionTree => write!(f, "DT"),
            Self::RandomForest => write!(f, "RF"),
            Self::Svm => write!(f, "SVM"),
            Self::KernelRidge => write!(f, "KRR"),
        }
    }
}

impl MlKind {
    /// The paper's three techniques, in its presentation order.
    pub fn all() -> [MlKind; 3] {
        [Self::DecisionTree, Self::RandomForest, Self::Svm]
    }

    /// The paper's trio plus this library's extras.
    pub fn extended() -> [MlKind; 4] {
        [
            Self::DecisionTree,
            Self::RandomForest,
            Self::Svm,
            Self::KernelRidge,
        ]
    }
}

/// Hyper-parameters for the three model families.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Decision-tree parameters.
    pub tree: TreeParams,
    /// Random-forest parameters.
    pub forest: ForestParams,
    /// SVR parameters.
    pub svr: SvrParams,
    /// Kernel-ridge parameters.
    pub krr: KrrParams,
    /// Relative floor on the per-feature standard deviation used when
    /// standardizing features (see [`StandardScaler::fit_robust`]).
    ///
    /// Plain standardization (`0.0`) backfires on this methodology's
    /// heterogeneous training sets: the co-runner-bandwidth feature of
    /// full-size training mixes has almost no variance (a sum of 31 draws
    /// concentrates), so unit-variance scaling blows evaluation points
    /// several "sigmas" out and the RBF kernel collapses to its bias.
    /// Flooring the divisor at a tenth of the column's magnitude keeps
    /// degenerate columns tame without affecting well-spread ones.
    pub scale_floor: f64,
    /// Clip prediction-time features into the training range.
    ///
    /// The heterogeneous evaluation draws mixes from a different benchmark
    /// pool than training (§IV-2), so the aggregate co-runner bandwidth
    /// can fall outside the training hull; an RBF model extrapolates its
    /// local slope there and produces wild values while the true response
    /// is flat. Clipping is the standard guard: outside the hull, predict
    /// as at the nearest seen point.
    pub clip_features: bool,
}

impl Default for ModelParams {
    fn default() -> Self {
        Self {
            tree: TreeParams::default(),
            forest: ForestParams::default(),
            // gamma="scale" adapts to raw feature magnitudes; C and
            // epsilon sized for IPC-scale targets (0..4).
            svr: SvrParams {
                c: 10.0,
                epsilon: 0.01,
                ..SvrParams::default()
            },
            krr: KrrParams {
                alpha: 0.01,
                ..KrrParams::default()
            },
            scale_floor: 0.1,
            clip_features: true,
        }
    }
}

#[derive(Clone, PartialEq, Serialize, Deserialize)]
enum Model {
    Tree(DecisionTree),
    Forest(RandomForest),
    Svm(Svr),
    Krr(KernelRidge),
}

/// A trained feature→IPC predictor with its feature scaler.
///
/// Serializable: the full trained state (scaler, model coefficients and
/// clip ranges) round-trips through serde, which is what
/// [`crate::artifact`] persists to disk.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedPredictor {
    scaler: StandardScaler,
    model: Model,
    kind: MlKind,
    /// Per-feature `(min, max)` seen in training; empty when clipping is
    /// disabled.
    clip: Vec<(f64, f64)>,
}

impl std::fmt::Debug for TrainedPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedPredictor")
            .field("kind", &self.kind)
            .finish()
    }
}

impl TrainedPredictor {
    /// Train a predictor of `kind` on feature rows and targets.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or row/target counts differ.
    pub fn train(
        kind: MlKind,
        rows: &[Vec<f64>],
        targets: &[f64],
        params: &ModelParams,
        seed: u64,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot train on an empty set");
        assert_eq!(rows.len(), targets.len(), "row/target mismatch");
        let x = Matrix::from_vecs(rows);
        let clip = if params.clip_features {
            (0..x.cols())
                .map(|c| {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for r in x.iter_rows() {
                        lo = lo.min(r[c]);
                        hi = hi.max(r[c]);
                    }
                    (lo, hi)
                })
                .collect()
        } else {
            Vec::new()
        };
        let scaler = StandardScaler::fit_robust(&x, params.scale_floor);
        let xs = scaler.transform(&x);
        let data = Dataset::new(xs, targets.to_vec());
        let model = match kind {
            MlKind::DecisionTree => Model::Tree(DecisionTree::fit(&data, &params.tree, seed)),
            MlKind::RandomForest => Model::Forest(RandomForest::fit(&data, &params.forest, seed)),
            MlKind::Svm => Model::Svm(Svr::fit(&data, &params.svr)),
            MlKind::KernelRidge => Model::Krr(KernelRidge::fit(&data, &params.krr)),
        };
        Self {
            scaler,
            model,
            kind,
            clip,
        }
    }

    /// Predict the target for one (unscaled) feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let clipped: Vec<f64> = if self.clip.is_empty() {
            row.to_vec()
        } else {
            row.iter()
                .zip(&self.clip)
                .map(|(&v, &(lo, hi))| v.clamp(lo, hi))
                .collect()
        };
        let scaled = self.scaler.transform_row(&clipped);
        match &self.model {
            Model::Tree(m) => m.predict(&scaled),
            Model::Forest(m) => m.predict(&scaled),
            Model::Svm(m) => m.predict(&scaled),
            Model::Krr(m) => m.predict(&scaled),
        }
    }

    /// Which technique this predictor uses.
    pub fn kind(&self) -> MlKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "contention" relationship: target IPC falls with
    /// co-runner bandwidth pressure.
    fn synthetic(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let ipc = 0.2 + (i % 10) as f64 * 0.3;
            let bw = (i % 7) as f64 * 0.5;
            let co = (i % 13) as f64 * 2.0;
            rows.push(vec![ipc, bw, co]);
            y.push(ipc / (1.0 + 0.02 * co + 0.05 * bw));
        }
        (rows, y)
    }

    #[test]
    fn all_kinds_learn_the_relationship() {
        let (rows, y) = synthetic(120);
        for kind in MlKind::extended() {
            let m = TrainedPredictor::train(kind, &rows, &y, &ModelParams::default(), 1);
            let mut err = 0.0;
            for (r, t) in rows.iter().zip(&y) {
                err += (m.predict(r) - t).abs() / t;
            }
            err /= rows.len() as f64;
            assert!(err < 0.15, "{kind} training error {err}");
        }
    }

    #[test]
    fn svm_generalizes_to_unseen_points() {
        let (rows, y) = synthetic(120);
        let m = TrainedPredictor::train(MlKind::Svm, &rows, &y, &ModelParams::default(), 1);
        // Held-out style point (not on the training grid).
        let probe = vec![1.25, 1.1, 7.0];
        let truth = 1.25 / (1.0 + 0.02 * 7.0 + 0.05 * 1.1);
        let err = (m.predict(&probe) - truth).abs() / truth;
        assert!(err < 0.15, "err = {err}");
    }

    #[test]
    fn deterministic_training() {
        let (rows, y) = synthetic(60);
        for kind in MlKind::all() {
            let a = TrainedPredictor::train(kind, &rows, &y, &ModelParams::default(), 5);
            let b = TrainedPredictor::train(kind, &rows, &y, &ModelParams::default(), 5);
            assert_eq!(a.predict(&rows[3]), b.predict(&rows[3]), "{kind}");
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(MlKind::DecisionTree.to_string(), "DT");
        assert_eq!(MlKind::RandomForest.to_string(), "RF");
        assert_eq!(MlKind::Svm.to_string(), "SVM");
        assert_eq!(MlKind::KernelRidge.to_string(), "KRR");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_rejected() {
        let _ = TrainedPredictor::train(MlKind::Svm, &[], &[], &ModelParams::default(), 0);
    }
}
