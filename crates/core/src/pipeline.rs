//! End-to-end experiment orchestration: simulate scale models and targets,
//! assemble training sets, and run the paper's cross-validation setups
//! (§IV-2).
//!
//! Simulation is abstracted behind [`Simulate`] so experiment harnesses
//! can layer caching or parallelism over the plain [`DirectSim`]. All
//! prediction logic operates on plain data structs
//! ([`BenchScaleData`], [`HeterogeneousData`]) and is unit-testable
//! without running the simulator.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sms_ml::fit::CurveModel;
use sms_sim::config::SystemConfig;
use sms_sim::error::SimError;
use sms_sim::stats::SimResult;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_workloads::mix::MixSpec;
use sms_workloads::spec::BenchmarkProfile;

use crate::features::{corunner_bandwidth, feature_vector, FeatureMode, SsMeasurement};
use crate::predictor::{MlKind, ModelParams, TrainedPredictor};
use crate::regressor::{RegressionExtrapolator, ScaleModelTraining};
use crate::scaling::{scale_config, ScalingPolicy};

/// Runs a workload mix on a machine configuration.
pub trait Simulate {
    /// Simulate `mix` on `cfg` with the given warm-up/measure budgets.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the configuration is invalid, the mix
    /// does not match the core count, or the run budget is empty —
    /// implementations must report failures as typed errors rather than
    /// panicking, so batch executors can isolate and retry them.
    fn run_mix(
        &mut self,
        cfg: &SystemConfig,
        mix: &MixSpec,
        spec: RunSpec,
    ) -> Result<SimResult, SimError>;
}

/// Plain, in-process simulation.
#[derive(Debug, Default)]
pub struct DirectSim;

impl Simulate for DirectSim {
    fn run_mix(
        &mut self,
        cfg: &SystemConfig,
        mix: &MixSpec,
        spec: RunSpec,
    ) -> Result<SimResult, SimError> {
        let mut system = MulticoreSystem::new(cfg.clone(), mix.sources())?;
        system.run(spec)
    }
}

/// Shared experiment parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The target system to predict.
    pub target: SystemConfig,
    /// Scale-model construction policy.
    pub policy: ScalingPolicy,
    /// Multi-core scale models used by ML-based regression.
    pub ms_cores: Vec<u32>,
    /// Per-run instruction budgets.
    pub spec: RunSpec,
    /// ML input features.
    pub mode: FeatureMode,
    /// Mix/workload seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            target: SystemConfig::target_32core(),
            policy: ScalingPolicy::prs(),
            ms_cores: crate::regressor::DEFAULT_MS_CORES.to_vec(),
            spec: RunSpec::with_default_warmup(500_000),
            mode: FeatureMode::IpcBandwidth,
            seed: 42,
        }
    }
}

/// Mean per-core IPC of a run.
pub fn mean_ipc(r: &SimResult) -> f64 {
    r.cores.iter().map(|c| c.ipc).sum::<f64>() / r.cores.len() as f64
}

/// Mean per-core DRAM bandwidth (GB/s) of a run.
pub fn mean_bandwidth(r: &SimResult) -> f64 {
    r.cores.iter().map(|c| c.bandwidth_gbps).sum::<f64>() / r.cores.len() as f64
}

/// All measurements needed for the homogeneous-mix experiments, for one
/// benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchScaleData {
    /// Benchmark name.
    pub name: String,
    /// Single-core scale-model measurement (IPC + bandwidth).
    pub ss: SsMeasurement,
    /// LLC MPKI on the single-core scale model (Fig 3 sort key).
    pub ss_llc_mpki: f64,
    /// Mean per-core IPC on each multi-core scale model `(cores, ipc)`.
    pub ms_ipc: Vec<(u32, f64)>,
    /// Mean per-core bandwidth on each multi-core scale model.
    pub ms_bw: Vec<(u32, f64)>,
    /// Mean per-core IPC on the target system.
    pub target_ipc: f64,
    /// Mean per-core bandwidth on the target system (Fig 12).
    pub target_bw: f64,
    /// Host wall-clock seconds of the single-core scale-model run.
    pub ss_host_seconds: f64,
    /// Host wall-clock seconds per multi-core scale-model run.
    pub ms_host_seconds: Vec<(u32, f64)>,
    /// Host wall-clock seconds of the target-system run.
    pub target_host_seconds: f64,
}

/// Scale-model-only measurements for one benchmark: everything in
/// [`BenchScaleData`] except the target-system truth. This is all that
/// ML-based Regression needs — its selling point is that the target is
/// never simulated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleModelData {
    /// Benchmark name.
    pub name: String,
    /// Single-core scale-model measurement.
    pub ss: SsMeasurement,
    /// LLC MPKI on the single-core scale model.
    pub ss_llc_mpki: f64,
    /// Mean per-core IPC on each multi-core scale model.
    pub ms_ipc: Vec<(u32, f64)>,
    /// Mean per-core bandwidth on each multi-core scale model.
    pub ms_bw: Vec<(u32, f64)>,
    /// Host seconds of the single-core run.
    pub ss_host_seconds: f64,
    /// Host seconds per multi-core scale-model run.
    pub ms_host_seconds: Vec<(u32, f64)>,
}

/// Simulate one benchmark's homogeneous mixes on the single-core and
/// multi-core scale models only (no target runs).
///
/// # Errors
///
/// Propagates the first [`SimError`] of any underlying run.
pub fn collect_scale_models_bench<S: Simulate>(
    sim: &mut S,
    cfg: &ExperimentConfig,
    bench: &BenchmarkProfile,
) -> Result<ScaleModelData, SimError> {
    let run_at = |sim: &mut S, cores: u32| -> Result<SimResult, SimError> {
        let machine = scale_config(&cfg.target, cores, cfg.policy);
        let mix = MixSpec::homogeneous(bench.name, cores as usize, cfg.seed);
        sim.run_mix(&machine, &mix, cfg.spec)
    };

    let ss_run = run_at(sim, 1)?;
    let ss = SsMeasurement {
        ipc: ss_run.cores[0].ipc,
        bandwidth: ss_run.cores[0].bandwidth_gbps,
    };
    let ss_llc_mpki = ss_run.cores[0].llc_mpki;

    let mut ms_ipc = Vec::new();
    let mut ms_bw = Vec::new();
    let mut ms_host_seconds = Vec::new();
    for &cores in &cfg.ms_cores {
        let r = run_at(sim, cores)?;
        ms_ipc.push((cores, mean_ipc(&r)));
        ms_bw.push((cores, mean_bandwidth(&r)));
        ms_host_seconds.push((cores, r.host_seconds));
    }

    Ok(ScaleModelData {
        name: bench.name.to_owned(),
        ss,
        ss_llc_mpki,
        ms_ipc,
        ms_bw,
        ss_host_seconds: ss_run.host_seconds,
        ms_host_seconds,
    })
}

/// [`collect_scale_models_bench`] over a whole suite.
///
/// # Errors
///
/// Propagates the first [`SimError`] of any underlying run.
pub fn collect_scale_models<S: Simulate>(
    sim: &mut S,
    cfg: &ExperimentConfig,
    suite: &[BenchmarkProfile],
) -> Result<Vec<ScaleModelData>, SimError> {
    suite
        .iter()
        .map(|b| collect_scale_models_bench(sim, cfg, b))
        .collect()
}

/// Assemble the per-scale-model training sets of ML-based Regression from
/// collected scale-model measurements: one [`ScaleModelTraining`] per entry
/// of `cfg.ms_cores`, with one feature row and one IPC target per
/// benchmark in `data`.
///
/// Shared by [`crate::session::ScaleModelSession`] and
/// [`crate::artifact::train_artifact`], so a persisted model is trained on
/// byte-identical sets to an in-process session.
///
/// # Panics
///
/// Panics if any entry of `data` lacks a measurement for one of
/// `cfg.ms_cores` (the collectors always produce all of them).
pub fn scale_model_training_sets(
    cfg: &ExperimentConfig,
    data: &[ScaleModelData],
) -> Vec<ScaleModelTraining> {
    cfg.ms_cores
        .iter()
        .map(|&cores| {
            let mut rows = Vec::new();
            let mut targets = Vec::new();
            for d in data {
                rows.push(feature_vector(
                    cfg.mode,
                    d.ss,
                    d.ss.bandwidth * f64::from(cores.max(1) - 1),
                ));
                targets.push(
                    d.ms_ipc
                        .iter()
                        .find(|(c, _)| *c == cores)
                        // sms-lint: allow(E1): the loop above measured every scale-model size
                        .expect("collected for every ms size")
                        .1,
                );
            }
            ScaleModelTraining {
                cores,
                rows,
                targets,
            }
        })
        .collect()
}

/// Simulate one benchmark's homogeneous mixes on the single-core scale
/// model, every multi-core scale model, and the target system.
///
/// # Errors
///
/// Propagates the first [`SimError`] of any underlying run.
pub fn collect_homogeneous_bench<S: Simulate>(
    sim: &mut S,
    cfg: &ExperimentConfig,
    bench: &BenchmarkProfile,
) -> Result<BenchScaleData, SimError> {
    let sm = collect_scale_models_bench(sim, cfg, bench)?;
    let machine = if cfg.target.num_cores == 1 {
        scale_config(&cfg.target, 1, cfg.policy)
    } else {
        cfg.target.clone()
    };
    let mix = MixSpec::homogeneous(bench.name, cfg.target.num_cores as usize, cfg.seed);
    let t = sim.run_mix(&machine, &mix, cfg.spec)?;
    Ok(BenchScaleData {
        name: sm.name,
        ss: sm.ss,
        ss_llc_mpki: sm.ss_llc_mpki,
        ms_ipc: sm.ms_ipc,
        ms_bw: sm.ms_bw,
        target_ipc: mean_ipc(&t),
        target_bw: mean_bandwidth(&t),
        ss_host_seconds: sm.ss_host_seconds,
        ms_host_seconds: sm.ms_host_seconds,
        target_host_seconds: t.host_seconds,
    })
}

/// Collect [`BenchScaleData`] for a whole suite.
///
/// # Errors
///
/// Propagates the first [`SimError`] of any underlying run.
pub fn collect_homogeneous<S: Simulate>(
    sim: &mut S,
    cfg: &ExperimentConfig,
    suite: &[BenchmarkProfile],
) -> Result<Vec<BenchScaleData>, SimError> {
    suite
        .iter()
        .map(|b| collect_homogeneous_bench(sim, cfg, b))
        .collect()
}

/// Which measured quantity the models predict (IPC for Figs 3-11,
/// bandwidth utilization for Fig 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetMetric {
    /// Predict per-application IPC.
    Ipc,
    /// Predict per-application DRAM bandwidth utilization.
    Bandwidth,
}

impl BenchScaleData {
    fn target_value(&self, metric: TargetMetric) -> f64 {
        match metric {
            TargetMetric::Ipc => self.target_ipc,
            TargetMetric::Bandwidth => self.target_bw,
        }
    }

    fn ms_value(&self, cores: u32, metric: TargetMetric) -> f64 {
        let series = match metric {
            TargetMetric::Ipc => &self.ms_ipc,
            TargetMetric::Bandwidth => &self.ms_bw,
        };
        series
            .iter()
            .find(|(c, _)| *c == cores)
            // sms-lint: allow(E1): callers pass a size from the measured series
            .unwrap_or_else(|| panic!("no {cores}-core scale-model measurement"))
            .1
    }

    /// Feature row for this benchmark in a homogeneous `model_cores`-core
    /// machine: co-runners are copies of itself.
    fn feature_row(&self, mode: FeatureMode, model_cores: u32) -> Vec<f64> {
        let co = self.ss.bandwidth * f64::from(model_cores.max(1) - 1);
        feature_vector(mode, self.ss, co)
    }
}

/// No-Extrapolation prediction (paper §III-A): the single-core scale-model
/// value is the prediction for per-core target value.
pub fn no_extrapolation(data: &[BenchScaleData], metric: TargetMetric) -> Vec<f64> {
    data.iter()
        .map(|d| match metric {
            TargetMetric::Ipc => d.ss.ipc,
            TargetMetric::Bandwidth => d.ss.bandwidth,
        })
        .collect()
}

/// ML-based Prediction under leave-one-out cross-validation over the
/// homogeneous suite (paper §IV-2): for each benchmark, train on the
/// remaining `N − 1` and predict the held-out one. Returns predictions
/// aligned with `data`.
pub fn predict_homogeneous_loo(
    data: &[BenchScaleData],
    kind: MlKind,
    mode: FeatureMode,
    metric: TargetMetric,
    params: &ModelParams,
    target_cores: u32,
    seed: u64,
) -> Vec<f64> {
    (0..data.len())
        .map(|held| {
            let mut rows = Vec::with_capacity(data.len() - 1);
            let mut targets = Vec::with_capacity(data.len() - 1);
            for (i, d) in data.iter().enumerate() {
                if i == held {
                    continue;
                }
                rows.push(d.feature_row(mode, target_cores));
                targets.push(d.target_value(metric));
            }
            let model = TrainedPredictor::train(kind, &rows, &targets, params, seed);
            model.predict(&data[held].feature_row(mode, target_cores))
        })
        .collect()
}

/// ML-based Regression under leave-one-out cross-validation (paper
/// §III-B2): train per-scale-model predictors on the remaining
/// benchmarks, predict the held-out one on each scale model, and
/// extrapolate with `curve` to `target_cores`.
#[allow(clippy::too_many_arguments)]
pub fn regress_homogeneous_loo(
    data: &[BenchScaleData],
    kind: MlKind,
    curve: CurveModel,
    mode: FeatureMode,
    metric: TargetMetric,
    params: &ModelParams,
    ms_cores: &[u32],
    target_cores: u32,
    seed: u64,
) -> Vec<f64> {
    (0..data.len())
        .map(|held| {
            let training: Vec<ScaleModelTraining> = ms_cores
                .iter()
                .map(|&cores| {
                    let mut rows = Vec::new();
                    let mut targets = Vec::new();
                    for (i, d) in data.iter().enumerate() {
                        if i == held {
                            continue;
                        }
                        rows.push(d.feature_row(mode, cores));
                        targets.push(d.ms_value(cores, metric));
                    }
                    ScaleModelTraining {
                        cores,
                        rows,
                        targets,
                    }
                })
                .collect();
            let ex = RegressionExtrapolator::train(kind, curve, &training, params, seed);
            let rows_per_model: Vec<Vec<f64>> = ms_cores
                .iter()
                .map(|&c| data[held].feature_row(mode, c))
                .collect();
            ex.predict(&rows_per_model, target_cores)
        })
        .collect()
}

/// A simulated mix with its per-slot outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixRun {
    /// The workload mix.
    pub mix: MixSpec,
    /// Per-slot IPC.
    pub slot_ipc: Vec<f64>,
    /// Per-slot bandwidth (GB/s).
    pub slot_bw: Vec<f64>,
}

/// All measurements for the heterogeneous-mix experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneousData {
    /// Evaluation benchmarks (unseen during training).
    pub eval_names: Vec<String>,
    /// Training benchmarks.
    pub train_names: Vec<String>,
    /// Single-core scale-model measurements for every benchmark.
    pub ss: BTreeMap<String, SsMeasurement>,
    /// Training mixes simulated on the target system (ML-prediction).
    pub train_target: Vec<MixRun>,
    /// Training mixes simulated on each multi-core scale model
    /// (ML-regression): `(cores, runs)`.
    pub ms_train: Vec<(u32, Vec<MixRun>)>,
    /// Evaluation mixes simulated on the target system (ground truth).
    pub eval_target: Vec<MixRun>,
}

fn to_mix_run(mix: MixSpec, r: &SimResult) -> MixRun {
    MixRun {
        mix,
        slot_ipc: r.cores.iter().map(|c| c.ipc).collect(),
        slot_bw: r.cores.iter().map(|c| c.bandwidth_gbps).collect(),
    }
}

/// Heterogeneous experiment sizing (paper §IV-2): 8 eval benchmarks, a
/// constant 320 training results, 10 eval mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeteroSizing {
    /// Benchmarks held out for evaluation.
    pub eval_benchmarks: usize,
    /// Total training results (mixes × slots is held at this count).
    pub training_results: usize,
    /// Number of evaluation mixes simulated on the target.
    pub eval_mixes: usize,
}

impl Default for HeteroSizing {
    fn default() -> Self {
        Self {
            eval_benchmarks: 8,
            training_results: 320,
            eval_mixes: 10,
        }
    }
}

/// Collect every simulation the heterogeneous experiments need.
///
/// # Errors
///
/// Propagates the first [`SimError`] of any underlying run.
pub fn collect_heterogeneous<S: Simulate>(
    sim: &mut S,
    cfg: &ExperimentConfig,
    suite: &[BenchmarkProfile],
    sizing: HeteroSizing,
) -> Result<HeterogeneousData, SimError> {
    let (eval_pool, train_pool) = heterogeneous_split(cfg, suite, sizing);

    // Single-core scale model for every benchmark.
    let ss_cfg = scale_config(&cfg.target, 1, cfg.policy);
    let mut ss = BTreeMap::new();
    for b in suite {
        let mix = MixSpec::homogeneous(b.name, 1, cfg.seed);
        let r = sim.run_mix(&ss_cfg, &mix, cfg.spec)?;
        ss.insert(
            b.name.to_owned(),
            SsMeasurement {
                ipc: r.cores[0].ipc,
                bandwidth: r.cores[0].bandwidth_gbps,
            },
        );
    }

    let t_cores = cfg.target.num_cores as usize;

    // Training mixes on the target (N mixes x T slots = training_results).
    let n_train_mixes = sizing.training_results / t_cores;
    let mut train_target = Vec::new();
    for i in 0..n_train_mixes {
        let mix = MixSpec::random(&train_pool, t_cores, cfg.seed ^ (0x1000 + i as u64));
        let r = sim.run_mix(&cfg.target, &mix, cfg.spec)?;
        train_target.push(to_mix_run(mix, &r));
    }

    // Training mixes on each multi-core scale model (320 results each).
    let mut ms_train = Vec::new();
    for &cores in &cfg.ms_cores {
        let machine = scale_config(&cfg.target, cores, cfg.policy);
        let n_mixes = sizing.training_results / cores as usize;
        let mut runs = Vec::new();
        for i in 0..n_mixes {
            let mix = MixSpec::random(
                &train_pool,
                cores as usize,
                cfg.seed ^ (0x2000 + u64::from(cores) * 1000 + i as u64),
            );
            let r = sim.run_mix(&machine, &mix, cfg.spec)?;
            runs.push(to_mix_run(mix, &r));
        }
        ms_train.push((cores, runs));
    }

    // Evaluation mixes on the target (ground truth).
    let mut eval_target = Vec::new();
    for i in 0..sizing.eval_mixes {
        let mix = MixSpec::random(&eval_pool, t_cores, cfg.seed ^ (0x3000 + i as u64));
        let r = sim.run_mix(&cfg.target, &mix, cfg.spec)?;
        eval_target.push(to_mix_run(mix, &r));
    }

    Ok(HeterogeneousData {
        eval_names: eval_pool.iter().map(|p| p.name.to_owned()).collect(),
        train_names: train_pool.iter().map(|p| p.name.to_owned()).collect(),
        ss,
        train_target,
        ms_train,
        eval_target,
    })
}

/// Feature rows + targets from a set of mix runs, using each slot as one
/// training sample (paper §III-B1). `model_cores` is the machine the mixes
/// ran on (affects the co-runner bandwidth feature).
pub fn mix_training_set(
    ss: &BTreeMap<String, SsMeasurement>,
    runs: &[MixRun],
    mode: FeatureMode,
    metric: TargetMetric,
    model_cores: u32,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rows = Vec::new();
    let mut targets = Vec::new();
    for run in runs {
        let bws: Vec<f64> = run.mix.benchmarks.iter().map(|n| ss[n].bandwidth).collect();
        for (j, name) in run.mix.benchmarks.iter().enumerate() {
            let co = corunner_bandwidth(&bws, j, model_cores);
            rows.push(feature_vector(mode, ss[name], co));
            targets.push(match metric {
                TargetMetric::Ipc => run.slot_ipc[j],
                TargetMetric::Bandwidth => run.slot_bw[j],
            });
        }
    }
    (rows, targets)
}

/// Train the heterogeneous ML-based predictor on the target-system
/// training runs.
pub fn train_hetero_predictor(
    data: &HeterogeneousData,
    kind: MlKind,
    mode: FeatureMode,
    metric: TargetMetric,
    params: &ModelParams,
    target_cores: u32,
    seed: u64,
) -> TrainedPredictor {
    let (rows, targets) =
        mix_training_set(&data.ss, &data.train_target, mode, metric, target_cores);
    TrainedPredictor::train(kind, &rows, &targets, params, seed)
}

/// Train the heterogeneous ML-based regression extrapolator on the
/// multi-core scale-model training runs.
pub fn train_hetero_regressor(
    data: &HeterogeneousData,
    kind: MlKind,
    curve: CurveModel,
    mode: FeatureMode,
    metric: TargetMetric,
    params: &ModelParams,
    seed: u64,
) -> RegressionExtrapolator {
    let training: Vec<ScaleModelTraining> = data
        .ms_train
        .iter()
        .map(|(cores, runs)| {
            let (rows, targets) = mix_training_set(&data.ss, runs, mode, metric, *cores);
            ScaleModelTraining {
                cores: *cores,
                rows,
                targets,
            }
        })
        .collect();
    RegressionExtrapolator::train(kind, curve, &training, params, seed)
}

/// Per-slot predictions for an evaluation mix using a trained predictor.
pub fn predict_mix_slots(
    predictor: &TrainedPredictor,
    ss: &BTreeMap<String, SsMeasurement>,
    mix: &MixSpec,
    mode: FeatureMode,
    target_cores: u32,
) -> Vec<f64> {
    let bws: Vec<f64> = mix.benchmarks.iter().map(|n| ss[n].bandwidth).collect();
    mix.benchmarks
        .iter()
        .enumerate()
        .map(|(j, name)| {
            let co = corunner_bandwidth(&bws, j, target_cores);
            predictor.predict(&feature_vector(mode, ss[name], co))
        })
        .collect()
}

/// Per-slot predictions for an evaluation mix using a trained regression
/// extrapolator.
pub fn regress_mix_slots(
    ex: &RegressionExtrapolator,
    ss: &BTreeMap<String, SsMeasurement>,
    mix: &MixSpec,
    mode: FeatureMode,
    ms_cores: &[u32],
    target_cores: u32,
) -> Vec<f64> {
    let bws: Vec<f64> = mix.benchmarks.iter().map(|n| ss[n].bandwidth).collect();
    mix.benchmarks
        .iter()
        .enumerate()
        .map(|(j, name)| {
            let rows: Vec<Vec<f64>> = ms_cores
                .iter()
                .map(|&c| {
                    let co = corunner_bandwidth(&bws, j, c);
                    feature_vector(mode, ss[name], co)
                })
                .collect();
            ex.predict(&rows, target_cores)
        })
        .collect()
}

/// Average the per-slot errors of eval-mix predictions per evaluation
/// application (paper §IV-2: "the average prediction error across these
/// mixes for each application of interest"). Returns `(name, mean error)`
/// pairs for every eval benchmark that appears.
pub fn per_app_errors(data: &HeterogeneousData, predictions: &[Vec<f64>]) -> Vec<(String, f64)> {
    let mut acc: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for (run, preds) in data.eval_target.iter().zip(predictions) {
        for ((name, &truth), &pred) in run.mix.benchmarks.iter().zip(&run.slot_ipc).zip(preds) {
            let e = crate::metrics::prediction_error(pred, truth);
            let entry = acc.entry(name.as_str()).or_insert((0.0, 0));
            entry.0 += e;
            entry.1 += 1;
        }
    }
    acc.into_iter()
        .map(|(name, (sum, n))| (name.to_owned(), sum / n as f64))
        .collect()
}

/// Enumerate every `(machine, mix)` pair the homogeneous collector will
/// request, so a harness can pre-execute them (e.g. into a cache, possibly
/// in parallel) before calling [`collect_homogeneous`].
pub fn homogeneous_plan(
    cfg: &ExperimentConfig,
    suite: &[BenchmarkProfile],
) -> Vec<(SystemConfig, MixSpec)> {
    let mut plan = Vec::new();
    for bench in suite {
        let mut cores_list = vec![1u32];
        cores_list.extend(cfg.ms_cores.iter().copied());
        cores_list.push(cfg.target.num_cores);
        for cores in cores_list {
            let machine = if cores == cfg.target.num_cores {
                cfg.target.clone()
            } else {
                scale_config(&cfg.target, cores, cfg.policy)
            };
            plan.push((
                machine,
                MixSpec::homogeneous(bench.name, cores as usize, cfg.seed),
            ));
        }
    }
    plan
}

/// The eval/train benchmark split used by [`collect_heterogeneous`].
pub fn heterogeneous_split(
    cfg: &ExperimentConfig,
    suite: &[BenchmarkProfile],
    sizing: HeteroSizing,
) -> (Vec<BenchmarkProfile>, Vec<BenchmarkProfile>) {
    let mut pool = suite.to_vec();
    let mut rng = sms_workloads::rng::SplitMix64::new(cfg.seed ^ 0x1656_67B1_9E37_79F9);
    for i in 0..sizing.eval_benchmarks {
        let j = i + rng.next_below((pool.len() - i) as u64) as usize;
        pool.swap(i, j);
    }
    let train = pool.split_off(sizing.eval_benchmarks);
    (pool, train)
}

/// Enumerate every `(machine, mix)` pair the heterogeneous collector will
/// request (see [`homogeneous_plan`]).
pub fn heterogeneous_plan(
    cfg: &ExperimentConfig,
    suite: &[BenchmarkProfile],
    sizing: HeteroSizing,
) -> Vec<(SystemConfig, MixSpec)> {
    let (eval_pool, train_pool) = heterogeneous_split(cfg, suite, sizing);
    let t_cores = cfg.target.num_cores as usize;
    let ss_cfg = scale_config(&cfg.target, 1, cfg.policy);
    let mut plan = Vec::new();
    for b in suite {
        plan.push((ss_cfg.clone(), MixSpec::homogeneous(b.name, 1, cfg.seed)));
    }
    for i in 0..sizing.training_results / t_cores {
        let mix = MixSpec::random(&train_pool, t_cores, cfg.seed ^ (0x1000 + i as u64));
        plan.push((cfg.target.clone(), mix));
    }
    for &cores in &cfg.ms_cores {
        let machine = scale_config(&cfg.target, cores, cfg.policy);
        for i in 0..sizing.training_results / cores as usize {
            let mix = MixSpec::random(
                &train_pool,
                cores as usize,
                cfg.seed ^ (0x2000 + u64::from(cores) * 1000 + i as u64),
            );
            plan.push((machine.clone(), mix));
        }
    }
    for i in 0..sizing.eval_mixes {
        let mix = MixSpec::random(&eval_pool, t_cores, cfg.seed ^ (0x3000 + i as u64));
        plan.push((cfg.target.clone(), mix));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An analytical fake machine: per-benchmark intrinsic IPC/BW derived
    /// from the name, contention from aggregate bandwidth pressure. Lets
    /// the whole pipeline run in milliseconds.
    struct FakeSim;

    fn intrinsic(name: &str) -> (f64, f64) {
        let h = name
            .bytes()
            .fold(7u64, |a, b| a.wrapping_mul(31).wrapping_add(b.into()));
        let ipc = 0.3 + (h % 17) as f64 * 0.15; // 0.3 .. 2.7
        let bw = 0.1 + (h % 7) as f64 * 0.55; // 0.1 .. 3.4
        (ipc, bw)
    }

    impl Simulate for FakeSim {
        fn run_mix(
            &mut self,
            cfg: &SystemConfig,
            mix: &MixSpec,
            _spec: RunSpec,
        ) -> Result<SimResult, SimError> {
            let per_core_bw_budget = cfg.dram.total_bandwidth_gbps() / f64::from(cfg.num_cores);
            let total_demand: f64 = mix.benchmarks.iter().map(|n| intrinsic(n).1).sum();
            let cores = mix.benchmarks.len();
            let cap = per_core_bw_budget * cores as f64;
            // Saturating contention: slowdown grows with oversubscription
            // and with LLC shortfall.
            let llc_per_core = cfg.llc.total_capacity_bytes() as f64 / 1e6 / cores as f64;
            let pressure = (total_demand / cap).max(0.2);
            let core_results: Vec<sms_sim::stats::CoreResult> = mix
                .benchmarks
                .iter()
                .map(|n| {
                    let (ipc0, bw0) = intrinsic(n);
                    let mem_frac = bw0 / 3.5;
                    // Base contention from bandwidth pressure and LLC
                    // share, plus a core-count-dependent residual (the
                    // analogue of growing NUCA distances) that a perfect
                    // PRS scale model cannot capture — this is what the ML
                    // extrapolation must learn.
                    let slow = (1.0 + mem_frac * (0.5 * pressure.ln_1p() + 0.3 / llc_per_core))
                        * (1.0 + mem_frac * 0.06 * (cores as f64).ln());
                    let ipc = ipc0 / slow;
                    sms_sim::stats::CoreResult {
                        label: n.clone(),
                        instructions: 1_000_000,
                        cycles: (1_000_000.0 / ipc) as u64,
                        ipc,
                        l1d_load_misses: 0,
                        llc_hits: 0,
                        dram_loads: 0,
                        dram_bytes: 0,
                        bandwidth_gbps: bw0 / slow.sqrt(),
                        llc_mpki: bw0 * 8.0,
                        mem_stall_cycles: 0,
                        fetch_stall_cycles: 0,
                        branch_stall_cycles: 0,
                        prefetches: 0,
                    }
                })
                .collect();
            Ok(SimResult {
                cores: core_results,
                elapsed_cycles: 1_000_000,
                total_dram_bytes: 0,
                total_bandwidth_gbps: 0.0,
                noc_transfers: 0,
                noc_crossings: 0,
                llc_accesses: 0,
                llc_hits: 0,
                host_seconds: 0.0,
            })
        }
    }

    fn fake_suite(n: usize) -> Vec<BenchmarkProfile> {
        sms_workloads::spec::suite().into_iter().take(n).collect()
    }

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig {
            ms_cores: vec![2, 4, 8, 16],
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn homogeneous_collection_shapes() {
        let cfg = small_cfg();
        let data = collect_homogeneous(&mut FakeSim, &cfg, &fake_suite(5)).unwrap();
        assert_eq!(data.len(), 5);
        for d in &data {
            assert_eq!(d.ms_ipc.len(), 4);
            assert!(d.ss.ipc > 0.0);
            assert!(d.target_ipc > 0.0);
            assert!(
                d.target_ipc <= d.ss.ipc + 1e-9,
                "co-running cannot speed a benchmark up in the fake world"
            );
        }
    }

    #[test]
    fn probe_all_kinds() {
        let cfg = small_cfg();
        let data = collect_homogeneous(&mut FakeSim, &cfg, &fake_suite(29)).unwrap();
        let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
        let err = |p: &[f64]| -> f64 {
            p.iter()
                .zip(&truth)
                .map(|(&a, &b)| ((a - b) / b).abs())
                .sum::<f64>()
                / p.len() as f64
        };
        let noext = no_extrapolation(&data, TargetMetric::Ipc);
        println!("noext: {:.4}", err(&noext));
        for kind in MlKind::all() {
            let pred = predict_homogeneous_loo(
                &data,
                kind,
                FeatureMode::IpcBandwidth,
                TargetMetric::Ipc,
                &ModelParams::default(),
                32,
                1,
            );
            println!("{kind}: {:.4}", err(&pred));
        }
    }

    #[test]
    fn ml_prediction_beats_no_extrapolation_on_fake_world() {
        let cfg = small_cfg();
        let data = collect_homogeneous(&mut FakeSim, &cfg, &fake_suite(29)).unwrap();
        let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();

        let noext = no_extrapolation(&data, TargetMetric::Ipc);
        let pred = predict_homogeneous_loo(
            &data,
            MlKind::Svm,
            FeatureMode::IpcBandwidth,
            TargetMetric::Ipc,
            &ModelParams::default(),
            32,
            1,
        );
        let err = |p: &[f64]| -> f64 {
            p.iter()
                .zip(&truth)
                .map(|(&a, &b)| ((a - b) / b).abs())
                .sum::<f64>()
                / p.len() as f64
        };
        let (e_no, e_ml) = (err(&noext), err(&pred));
        assert!(
            e_ml < e_no,
            "SVM prediction ({e_ml:.3}) must beat no-extrapolation ({e_no:.3})"
        );
        assert!(e_ml < 0.12, "fake world is learnable: {e_ml:.3}");
    }

    #[test]
    fn ml_regression_close_to_prediction_on_fake_world() {
        let cfg = small_cfg();
        let data = collect_homogeneous(&mut FakeSim, &cfg, &fake_suite(20)).unwrap();
        let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
        let reg = regress_homogeneous_loo(
            &data,
            MlKind::Svm,
            CurveModel::Logarithmic,
            FeatureMode::IpcBandwidth,
            TargetMetric::Ipc,
            &ModelParams::default(),
            &[2, 4, 8, 16],
            32,
            1,
        );
        let e: f64 = reg
            .iter()
            .zip(&truth)
            .map(|(&a, &b)| ((a - b) / b).abs())
            .sum::<f64>()
            / reg.len() as f64;
        assert!(e < 0.25, "regression error {e:.3}");
    }

    #[test]
    fn heterogeneous_collection_shapes() {
        let cfg = small_cfg();
        let sizing = HeteroSizing::default();
        let data = collect_heterogeneous(&mut FakeSim, &cfg, &fake_suite(29), sizing).unwrap();
        assert_eq!(data.eval_names.len(), 8);
        assert_eq!(data.train_names.len(), 21);
        assert_eq!(data.ss.len(), 29);
        assert_eq!(data.train_target.len(), 10); // 320 / 32
        assert_eq!(data.eval_target.len(), 10);
        for (cores, runs) in &data.ms_train {
            assert_eq!(
                runs.len() * *cores as usize,
                320,
                "constant training results for {cores}-core model"
            );
        }
        // Training mixes draw only from the training pool.
        for run in &data.train_target {
            for b in &run.mix.benchmarks {
                assert!(data.train_names.contains(b), "{b} leaked into training");
            }
        }
        // Eval mixes draw only from the eval pool.
        for run in &data.eval_target {
            for b in &run.mix.benchmarks {
                assert!(data.eval_names.contains(b), "{b} leaked into eval");
            }
        }
    }

    #[test]
    fn heterogeneous_prediction_pipeline_runs_and_learns() {
        let cfg = small_cfg();
        let data =
            collect_heterogeneous(&mut FakeSim, &cfg, &fake_suite(29), HeteroSizing::default())
                .unwrap();
        let predictor = train_hetero_predictor(
            &data,
            MlKind::Svm,
            FeatureMode::IpcBandwidth,
            TargetMetric::Ipc,
            &ModelParams::default(),
            32,
            1,
        );
        let preds: Vec<Vec<f64>> = data
            .eval_target
            .iter()
            .map(|run| {
                predict_mix_slots(
                    &predictor,
                    &data.ss,
                    &run.mix,
                    FeatureMode::IpcBandwidth,
                    32,
                )
            })
            .collect();
        let per_app = per_app_errors(&data, &preds);
        assert!(!per_app.is_empty());
        let mean_err: f64 = per_app.iter().map(|(_, e)| e).sum::<f64>() / per_app.len() as f64;
        assert!(mean_err < 0.2, "hetero prediction error {mean_err:.3}");
    }

    #[test]
    fn heterogeneous_regression_pipeline_runs() {
        let cfg = small_cfg();
        let data =
            collect_heterogeneous(&mut FakeSim, &cfg, &fake_suite(29), HeteroSizing::default())
                .unwrap();
        let ex = train_hetero_regressor(
            &data,
            MlKind::Svm,
            CurveModel::Logarithmic,
            FeatureMode::IpcBandwidth,
            TargetMetric::Ipc,
            &ModelParams::default(),
            1,
        );
        let preds: Vec<Vec<f64>> = data
            .eval_target
            .iter()
            .map(|run| {
                regress_mix_slots(
                    &ex,
                    &data.ss,
                    &run.mix,
                    FeatureMode::IpcBandwidth,
                    &cfg.ms_cores,
                    32,
                )
            })
            .collect();
        let per_app = per_app_errors(&data, &preds);
        let mean_err: f64 = per_app.iter().map(|(_, e)| e).sum::<f64>() / per_app.len() as f64;
        assert!(mean_err < 0.35, "hetero regression error {mean_err:.3}");
    }

    /// Records every (config, mix) pair requested, then delegates.
    struct RecordingSim(Vec<(SystemConfig, MixSpec)>, FakeSim);

    impl Simulate for RecordingSim {
        fn run_mix(
            &mut self,
            cfg: &SystemConfig,
            mix: &MixSpec,
            spec: RunSpec,
        ) -> Result<SimResult, SimError> {
            self.0.push((cfg.clone(), mix.clone()));
            self.1.run_mix(cfg, mix, spec)
        }
    }

    #[test]
    fn homogeneous_plan_covers_collector_requests() {
        let cfg = small_cfg();
        let suite = fake_suite(4);
        let plan = homogeneous_plan(&cfg, &suite);
        let mut rec = RecordingSim(Vec::new(), FakeSim);
        collect_homogeneous(&mut rec, &cfg, &suite).unwrap();
        assert_eq!(plan.len(), rec.0.len());
        for req in &rec.0 {
            assert!(plan.contains(req), "plan missing a collector request");
        }
    }

    #[test]
    fn heterogeneous_plan_covers_collector_requests() {
        let cfg = small_cfg();
        let suite = fake_suite(29);
        let sizing = HeteroSizing::default();
        let plan = heterogeneous_plan(&cfg, &suite, sizing);
        let mut rec = RecordingSim(Vec::new(), FakeSim);
        collect_heterogeneous(&mut rec, &cfg, &suite, sizing).unwrap();
        assert_eq!(plan.len(), rec.0.len());
        for req in &rec.0 {
            assert!(plan.contains(req), "plan missing a collector request");
        }
    }

    #[test]
    fn mix_training_set_shapes() {
        let cfg = small_cfg();
        let data =
            collect_heterogeneous(&mut FakeSim, &cfg, &fake_suite(29), HeteroSizing::default())
                .unwrap();
        let (rows, targets) = mix_training_set(
            &data.ss,
            &data.train_target,
            FeatureMode::IpcBandwidth,
            TargetMetric::Ipc,
            32,
        );
        assert_eq!(rows.len(), 320);
        assert_eq!(targets.len(), 320);
        assert_eq!(rows[0].len(), 3);
        let (rows1, _) = mix_training_set(
            &data.ss,
            &data.train_target,
            FeatureMode::IpcOnly,
            TargetMetric::Ipc,
            32,
        );
        assert_eq!(rows1[0].len(), 1);
    }
}
