//! # sms-core — scale-model architectural simulation
//!
//! The primary contribution of *Scale-Model Architectural Simulation*
//! (Liu, Heirman, Eyerman, Akram, Eeckhout — ISPASS 2022): predict the
//! performance of a large multicore target system from simulations of a
//! scaled-down *scale model*, optionally refined by machine-learning
//! extrapolation.
//!
//! * [`scaling`] — scale-model construction: proportional resource
//!   scaling (PRS) of LLC capacity, NoC bisection bandwidth and DRAM
//!   bandwidth versus no resource scaling (NRS); Table I generation.
//! * [`features`] — the ML input variables: single-core scale-model IPC,
//!   bandwidth utilization and aggregate co-runner bandwidth.
//! * [`predictor`] — ML-based Prediction (needs target-system runs for
//!   training).
//! * [`regressor`] — ML-based Regression (trains only on multi-core scale
//!   models, extrapolates with a curve fit — no target runs needed).
//! * [`pipeline`] — experiment orchestration: homogeneous leave-one-out
//!   and heterogeneous train/eval methodology exactly as §IV-2.
//! * [`metrics`] — the paper's prediction-error metric and STP.
//! * [`stacks`] — cycle/speedup stacks (the §V-E6 extension path to
//!   multi-threaded workloads).
//! * [`session`] — the high-level "train once, predict many" API.
//! * [`artifact`] — persisted model artifacts: versioned, checksummed
//!   JSON snapshots of a trained extrapolator plus the single-core
//!   measurements it needs to answer prediction queries offline.
//!
//! # Example: construct a scale model
//!
//! ```
//! use sms_core::scaling::{scale_config, ScalingPolicy};
//! use sms_sim::config::SystemConfig;
//!
//! let target = SystemConfig::target_32core();
//! let scale_model = scale_config(&target, 1, ScalingPolicy::prs());
//! // Per-core shares stay constant: 1 MB LLC and 4 GB/s DRAM per core.
//! assert_eq!(scale_model.llc.total_capacity_bytes(), 1024 * 1024);
//! assert!((scale_model.dram.total_bandwidth_gbps() - 4.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod features;
pub mod metrics;
pub mod pipeline;
pub mod predictor;
pub mod regressor;
pub mod scaling;
pub mod session;
pub mod stacks;

pub use artifact::{train_artifact, ArtifactError, ArtifactPayload, MixPrediction, ModelArtifact};
pub use features::{FeatureMode, SsMeasurement};
pub use pipeline::{DirectSim, ExperimentConfig, Simulate, TargetMetric};
pub use predictor::{MlKind, ModelParams, TrainedPredictor};
pub use regressor::{RegressionExtrapolator, DEFAULT_MS_CORES};
pub use scaling::{scale_config, scale_table, target_config, MemBwScaling, ScalingPolicy};
pub use session::{ScaleModelSession, TargetPrediction};
