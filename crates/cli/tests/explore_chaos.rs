//! Chaos tests for the design-space exploration pipeline: kill the real
//! `sms explore` mid-grid and check that `sms resume` converges on a
//! manifest bit-identical to an uninterrupted run, that ML pruning never
//! changes the Pareto front on the committed smoke grid, and that the
//! `explore.plan` / `explore.prune` failpoints fail and degrade the way
//! DESIGN.md promises.

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sms-exchaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The committed smoke spec (also used by CI's explore-smoke job).
fn smoke_spec() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/machines/explore_smoke.toml")
}

/// The `sms` binary with a clean fault environment (tests add their own).
fn sms() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_sms"));
    c.env_remove("SMS_FAULTS")
        .env_remove("SMS_RUN_TIMEOUT_SECS")
        .env_remove("SMS_RETRIES");
    c
}

fn explore_args(results: &Path, label: &str, extra: &[&str]) -> Vec<String> {
    let mut v: Vec<String> = [
        "explore",
        "--spec",
        smoke_spec().to_str().unwrap(),
        "--results",
        results.to_str().unwrap(),
        "--label",
        label,
        "--threads",
        "2",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    v.extend(extra.iter().map(|s| (*s).to_string()));
    v
}

fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "command failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    (stdout, stderr)
}

/// Top-level cache entries (`<hash>.json`) as name -> normalized JSON.
/// Entries store the raw `SimResult`, whose `host_seconds` is wall-clock
/// (and whose `checksum` covers it), so two runs are never byte-identical;
/// zero both before comparing. The explore manifest excludes wall-clock
/// data by design and is compared byte-for-byte instead.
fn cache_entries(cache_dir: &Path) -> BTreeMap<String, serde_json::Value> {
    let mut m = BTreeMap::new();
    for e in std::fs::read_dir(cache_dir).unwrap().flatten() {
        let p = e.path();
        if p.is_file() && p.extension().is_some_and(|x| x == "json") {
            let mut v: serde_json::Value =
                serde_json::from_str(&std::fs::read_to_string(&p).unwrap()).unwrap();
            if let Some(obj) = v.as_object_mut() {
                obj.remove("checksum");
                if let Some(r) = obj.get_mut("result").and_then(|r| r.as_object_mut()) {
                    r.remove("host_seconds");
                }
            }
            m.insert(p.file_name().unwrap().to_string_lossy().into_owned(), v);
        }
    }
    m
}

fn manifest(results: &Path, label: &str) -> serde_json::Value {
    let path = results.join("cache/explore").join(format!("{label}.json"));
    serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap()
}

#[test]
fn killed_explore_resumes_to_the_uninterrupted_manifest() {
    let base = tmp("base");
    let killed = tmp("killed");

    // Uninterrupted baseline explore (default pruning on).
    let (baseline, _) = run_ok(sms().args(explore_args(&base, "chaos-x", &[])));
    assert!(baseline.contains("pareto front"), "{baseline}");

    // The same explore with every run body delayed (a kill window).
    let mut child = sms()
        .args(explore_args(&killed, "chaos-x", &["--threads", "1"]))
        .env("SMS_FAULTS", "run.body=delay:250")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Kill it mid-grid: as soon as the journal records a finished run.
    let journal = killed.join("cache/journal/chaos-x.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if Instant::now() > deadline || matches!(child.try_wait(), Ok(Some(_))) {
            break;
        }
        let runs = std::fs::read_to_string(&journal)
            .map(|t| t.matches("\"t\":\"run\"").count())
            .unwrap_or(0);
        if runs >= 1 {
            let _ = child.kill();
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.wait();

    // Resume without faults: the journal header alone rebuilds the
    // resolved spec and pruning knobs.
    let (resumed, _) = run_ok(sms().args([
        "resume",
        "--label",
        "chaos-x",
        "--results",
        killed.to_str().unwrap(),
    ]));
    assert!(resumed.contains("resuming explore `chaos-x`"), "{resumed}");
    assert!(resumed.contains("pareto front"), "{resumed}");

    // Manifest and cache are bit-identical to the uninterrupted run's.
    let manifest_rel = "cache/explore/chaos-x.json";
    assert_eq!(
        std::fs::read(base.join(manifest_rel)).unwrap(),
        std::fs::read(killed.join(manifest_rel)).unwrap(),
        "resumed explore manifest differs from the uninterrupted one"
    );
    assert_eq!(
        cache_entries(&base.join("cache")),
        cache_entries(&killed.join("cache")),
        "resumed cache differs from the uninterrupted cache"
    );

    // fsck: a first pass may trim the journal line torn by the kill; the
    // second pass must be spotless.
    run_ok(sms().args(["fsck", "--results", killed.to_str().unwrap()]));
    let (clean, _) = run_ok(sms().args(["fsck", "--results", killed.to_str().unwrap()]));
    assert!(clean.contains("0 defect(s)"), "{clean}");

    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&killed);
}

#[test]
fn pruning_skips_points_but_never_changes_the_smoke_front() {
    let dir = tmp("prune");

    let (pruned_out, _) = run_ok(sms().args(explore_args(&dir, "pruned", &[])));
    let (full_out, _) = run_ok(sms().args(explore_args(&dir, "full", &["--no-prune"])));
    assert!(pruned_out.contains("pruned"), "{pruned_out}");
    assert!(full_out.contains("0 pruned"), "{full_out}");

    let pruned = manifest(&dir, "pruned");
    let full = manifest(&dir, "full");

    // The fronts are identical: pruning may only skip dominated points.
    assert_eq!(
        pruned["pareto"], full["pareto"],
        "pruning changed the Pareto front"
    );

    // And it skips at least a quarter of the smoke grid.
    let total = full["points"].as_array().unwrap().len();
    let skipped = pruned["pruning"]["pruned"].as_array().unwrap().len();
    assert!(
        skipped * 4 >= total,
        "pruning skipped only {skipped} of {total} points"
    );

    // The audit is present: bootstrap keys and a holdout with
    // predicted-vs-actual lines.
    assert!(
        !pruned["pruning"]["bootstrap"]
            .as_array()
            .unwrap()
            .is_empty(),
        "no bootstrap record"
    );
    assert!(
        !pruned["pruning"]["holdout_audit"]
            .as_array()
            .unwrap()
            .is_empty(),
        "no holdout audit"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explore_failpoints_fail_planning_and_degrade_pruning() {
    let dir = tmp("faults");

    // An injected planning fault aborts the explore with a nonzero exit.
    let out = sms()
        .args(explore_args(&dir, "plan-fault", &[]))
        .env("SMS_FAULTS", "explore.plan=err")
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "explore.plan=err must fail the explore"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("explore planning failed"), "{stderr}");

    // An injected pruning fault degrades to a full sweep: the explore
    // succeeds, prunes nothing, and records why.
    let (out, _) = run_ok(
        sms()
            .args(explore_args(&dir, "prune-fault", &[]))
            .env("SMS_FAULTS", "explore.prune=err"),
    );
    assert!(out.contains("0 pruned"), "{out}");
    let m = manifest(&dir, "prune-fault");
    assert_eq!(m["points"].as_array().unwrap().len(), 8);
    assert!(
        m["pruning"]["disabled_reason"].as_str().is_some(),
        "prune fault must be recorded in the manifest"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
