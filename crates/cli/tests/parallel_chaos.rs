//! Chaos variant of the parallel bit-identity guarantee: under a seeded
//! `sim.window.merge` fault, every `--sim-threads` setting must fail the
//! same way — same window, same error text, same exit — because fault
//! decisions are made once per window on the master thread, never per
//! worker. Each thread count runs in its own process so the failpoint's
//! process-global hit counter starts fresh every time.

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use std::process::Command;

/// The `sms` binary with a clean fault environment (the test adds its own).
fn sms() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_sms"));
    c.env_remove("SMS_FAULTS");
    c
}

fn simulate_under_merge_fault(sim_threads: u32) -> (bool, String, String) {
    let out = sms()
        .args([
            "simulate",
            "--bench",
            "gcc_r,mcf_r",
            "--cores",
            "4",
            "--budget",
            "40000",
            "--sim-threads",
            &sim_threads.to_string(),
        ])
        .env("SMS_FAULTS", "sim.window.merge=err@2")
        .output()
        .unwrap();
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn merge_fault_is_identical_across_thread_counts() {
    // Sanity: without faults the same simulate succeeds.
    let clean = sms()
        .args([
            "simulate",
            "--bench",
            "gcc_r,mcf_r",
            "--cores",
            "4",
            "--budget",
            "40000",
        ])
        .output()
        .unwrap();
    assert!(
        clean.status.success(),
        "fault-free simulate failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    let (ok1, out1, err1) = simulate_under_merge_fault(1);
    assert!(!ok1, "sequential run survived an armed merge fault: {out1}");
    assert!(
        err1.contains("sim.window.merge"),
        "error does not name the failpoint site: {err1}"
    );
    // The `@2` trigger fires on the second window, so the fault lands
    // after at least one successful merge — mid-run, not at startup.
    assert!(
        err1.contains("hit 2"),
        "fault did not fire on the second window: {err1}"
    );

    for threads in [2u32, 8] {
        let (ok, out, err) = simulate_under_merge_fault(threads);
        assert!(!ok, "{threads}-thread run survived the merge fault: {out}");
        assert_eq!(
            err1, err,
            "fault behavior at {threads} sim threads differs from sequential"
        );
    }
}
