//! Chaos tests for the crash-safe sweep pipeline: run the real `sms`
//! binary under deterministic `SMS_FAULTS` injection, kill it mid-plan,
//! and check that `sms resume` converges on a cache bit-identical to a
//! fault-free run, with `sms fsck` reporting zero defects.

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sms-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The `sms` binary with a clean fault environment (tests add their own).
fn sms() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_sms"));
    c.env_remove("SMS_FAULTS")
        .env_remove("SMS_RUN_TIMEOUT_SECS")
        .env_remove("SMS_RETRIES");
    c
}

fn sweep_args(bench: &str, results: &Path, label: &str, threads: usize) -> Vec<String> {
    [
        "sweep",
        "--bench",
        bench,
        "--target-cores",
        "2",
        "--budget",
        "20000",
        "--results",
        results.to_str().unwrap(),
        "--label",
        label,
        "--threads",
        &threads.to_string(),
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "command failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    (stdout, stderr)
}

/// Top-level cache entries (`<hash>.json`) as name -> raw bytes.
fn cache_entries(cache_dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut m = BTreeMap::new();
    for e in std::fs::read_dir(cache_dir).unwrap().flatten() {
        let p = e.path();
        if p.is_file() && p.extension().is_some_and(|x| x == "json") {
            m.insert(
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&p).unwrap(),
            );
        }
    }
    m
}

fn summary_line(out: &str) -> &str {
    out.lines()
        .find(|l| l.contains(" runs ("))
        .unwrap_or_else(|| panic!("no summary line in: {out}"))
}

#[test]
fn killed_faulted_sweep_resumes_to_the_fault_free_cache() {
    let base = tmp("base");
    let faulted = tmp("fault");
    let bench = "leela_r,xz_r";

    // Fault-free baseline sweep.
    let (baseline, _) = run_ok(sms().args(sweep_args(bench, &base, "chaos", 2)));
    assert!(baseline.contains("0 quarantined"), "{baseline}");

    // The same sweep under seeded faults: every run body is delayed (a
    // kill window) and the second cache disk write is dropped.
    let mut child = sms()
        .args(sweep_args(bench, &faulted, "chaos", 1))
        .env("SMS_FAULTS", "cache.write=err@2;run.body=delay:250")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Kill it mid-plan: as soon as the journal records a finished run.
    let journal = faulted.join("cache/journal/chaos.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if Instant::now() > deadline || matches!(child.try_wait(), Ok(Some(_))) {
            break;
        }
        let runs = std::fs::read_to_string(&journal)
            .map(|t| t.matches("\"t\":\"run\"").count())
            .unwrap_or(0);
        if runs >= 1 {
            let _ = child.kill();
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.wait();

    // Resume without faults; the journal header rebuilds the plan.
    let (resumed, _) = run_ok(sms().args([
        "resume",
        "--label",
        "chaos",
        "--results",
        faulted.to_str().unwrap(),
    ]));
    assert!(resumed.contains("resuming sweep `chaos`"), "{resumed}");
    assert!(resumed.contains("0 quarantined"), "{resumed}");

    // The final cache is bit-identical to the fault-free run's.
    assert_eq!(
        cache_entries(&base.join("cache")),
        cache_entries(&faulted.join("cache")),
        "resumed cache differs from the fault-free cache"
    );

    // Nothing quarantined, and fsck is clean (a first pass may trim a
    // journal line torn by the kill; the second pass must be spotless).
    let (q, _) = run_ok(sms().args(["quarantine", "--results", faulted.to_str().unwrap()]));
    assert!(q.contains("no quarantined runs"), "{q}");
    run_ok(sms().args(["fsck", "--results", faulted.to_str().unwrap()]));
    let (clean, _) = run_ok(sms().args(["fsck", "--results", faulted.to_str().unwrap()]));
    assert!(clean.contains("0 defect(s)"), "{clean}");

    // PlanSummary equivalence: re-sweeping either cache serves every run
    // from cache with identical totals.
    let (again_base, _) = run_ok(sms().args(sweep_args(bench, &base, "chaos", 2)));
    let (again_faulted, _) = run_ok(sms().args(sweep_args(bench, &faulted, "chaos", 2)));
    assert_eq!(summary_line(&again_base), summary_line(&again_faulted));
    assert!(again_faulted.contains("4 cached"), "{again_faulted}");

    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&faulted);
}

#[test]
fn faulted_sweep_injection_is_thread_count_independent() {
    let one = tmp("det1");
    let many = tmp("detn");
    let spec = "run.body=err@2";

    let run = |dir: &Path, threads: usize| {
        run_ok(
            sms()
                .args(sweep_args("leela_r,xz_r", dir, "det", threads))
                .env("SMS_FAULTS", spec),
        )
    };
    let (out1, err1) = run(&one, 1);
    let (outn, errn) = run(&many, 4);

    // Same injection announcements regardless of worker count.
    let injected = |stderr: &str| {
        stderr
            .lines()
            .filter(|l| l.contains("sms-faults: injected"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(injected(&err1).contains("run.body"), "{err1}");
    assert_eq!(injected(&err1), injected(&errn));

    // Same plan summary (the injected failure is retried to success) and
    // bit-identical final caches.
    assert_eq!(summary_line(&out1), summary_line(&outn));
    assert!(out1.contains("1 retries"), "{out1}");
    assert_eq!(
        cache_entries(&one.join("cache")),
        cache_entries(&many.join("cache"))
    );

    let _ = std::fs::remove_dir_all(&one);
    let _ = std::fs::remove_dir_all(&many);
}

#[test]
fn watchdog_quarantines_a_hung_run_and_resume_heals_it() {
    let dir = tmp("hang");

    // The first run body stalls for 6s against a 2s watchdog deadline:
    // it is quarantined as hung while the rest of the plan completes.
    let (out, _) = run_ok(
        sms()
            .args(sweep_args("leela_r,xz_r", &dir, "hang", 2))
            .env("SMS_FAULTS", "run.body=delay:6000@1")
            .env("SMS_RUN_TIMEOUT_SECS", "2"),
    );
    assert!(out.contains("1 quarantined"), "{out}");

    let (q, _) = run_ok(sms().args(["quarantine", "--results", dir.to_str().unwrap()]));
    assert!(q.contains("hung"), "{q}");

    // A fault-free resume re-simulates the hung run and absolves it.
    let (resumed, _) = run_ok(sms().args([
        "resume",
        "--label",
        "hang",
        "--results",
        dir.to_str().unwrap(),
    ]));
    assert!(resumed.contains("0 quarantined"), "{resumed}");
    let (q2, _) = run_ok(sms().args(["quarantine", "--results", dir.to_str().unwrap()]));
    assert!(q2.contains("no quarantined runs"), "{q2}");

    let _ = std::fs::remove_dir_all(&dir);
}
