//! Chaos tests for the serving tier: boot the real `sms serve` binary
//! under deterministic `SMS_FAULTS` injection and prove the resilience
//! story end to end — every client gets a typed response (200, degraded
//! 200, 503, or 504) within its deadline, nothing hangs, the metrics
//! account for every degraded/504/503 answer, and after the injected
//! failures stop the circuit breaker recovers to predictions that are
//! bit-identical to a fault-free server's.

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sms-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The `sms` binary with a clean fault environment (tests add their own).
fn sms() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_sms"));
    c.env_remove("SMS_FAULTS");
    c
}

/// Train one small artifact named `chaos` into `results/cache/models/`.
fn train(results: &Path) {
    let out = sms()
        .args([
            "train",
            "--bench",
            "leela_r,xz_r,gcc_r",
            "--target-cores",
            "8",
            "--budget",
            "20000",
            "--name",
            "chaos",
            "--save",
            "--results",
            results.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "train failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

/// A running `sms serve` subprocess: bound address, captured stderr, and
/// a kill-on-drop guard so failed assertions never leak server processes.
struct Server {
    child: Child,
    addr: SocketAddr,
    stderr: Arc<Mutex<String>>,
    drainer: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Boot `sms serve` on an ephemeral port, with `faults` installed as
    /// `SMS_FAULTS` when given, and wait until it announces its address.
    fn boot(results: &Path, faults: Option<&str>) -> Self {
        let mut cmd = sms();
        cmd.args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--results",
            results.to_str().unwrap(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
        if let Some(spec) = faults {
            cmd.env("SMS_FAULTS", spec);
        }
        let mut child = cmd.spawn().unwrap();

        // Drain stderr continuously (the pipe must never fill) and fish
        // the bound address out of the startup announcement.
        let pipe = child.stderr.take().unwrap();
        let stderr = Arc::new(Mutex::new(String::new()));
        let sink = Arc::clone(&stderr);
        let (tx, rx) = mpsc::channel::<SocketAddr>();
        let drainer = std::thread::spawn(move || {
            for line in BufReader::new(pipe).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.split("listening on http://").nth(1) {
                    let addr = rest.split_whitespace().next().unwrap_or_default();
                    if let Ok(addr) = addr.parse() {
                        let _ = tx.send(addr);
                    }
                }
                let mut text = sink.lock().unwrap();
                text.push_str(&line);
                text.push('\n');
            }
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("server announced its address within 60s");
        Self {
            child,
            addr,
            stderr,
            drainer: Some(drainer),
        }
    }

    /// `POST /shutdown`, wait for a clean exit, and return the process's
    /// full stderr.
    fn shutdown(mut self) -> String {
        let bye = http(self.addr, "POST", "/shutdown", &[], "");
        assert_eq!(bye.status, 200, "{}", bye.body);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().unwrap() {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    break;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server did not exit within 30s of /shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        if let Some(d) = self.drainer.take() {
            let _ = d.join();
        }
        self.stderr.lock().unwrap().clone()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
    elapsed: Duration,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn degraded(&self) -> bool {
        self.header("x-sms-degraded") == Some("1")
    }

    fn json(&self) -> serde_json::Value {
        serde_json::from_str(&self.body)
            .unwrap_or_else(|e| panic!("bad JSON body ({e}): {}", self.body))
    }
}

/// Minimal HTTP/1.1 client: one request (with extra headers), read until
/// the server closes the connection.
fn http(addr: SocketAddr, method: &str, path: &str, extra: &[(&str, &str)], body: &str) -> Reply {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut request = format!("{method} {path} HTTP/1.1\r\nhost: chaos\r\n");
    for (name, value) in extra {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str(&format!("content-length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(request.as_bytes()).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");

    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.to_owned()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_owned(),
        elapsed: start.elapsed(),
    }
}

fn predict_body(mix: &[&str], delay_ms: u64) -> String {
    serde_json::json!({
        "model": "chaos",
        "mix": mix,
        "target_cores": 8,
        "delay_ms": delay_ms,
    })
    .to_string()
}

fn metrics_json(addr: SocketAddr) -> serde_json::Value {
    let reply = http(addr, "GET", "/metrics.json", &[], "");
    assert_eq!(reply.status, 200, "{}", reply.body);
    reply.json()
}

/// Concurrent clients against a faulted server: every request is answered
/// within its budget with a typed status, nothing hangs, and the server's
/// own counters agree exactly with what the clients observed.
#[test]
fn faulted_serving_is_bounded_and_fully_accounted() {
    let results = tmp("bounded");
    train(&results);
    // The 3rd accepted connection and the 2nd routed request are refused
    // with 503; ~30% of predictions fail (seeded, so the sequence is
    // reproducible) and are served by the analytic fallback instead.
    let server = Server::boot(
        &results,
        Some("serve.accept=err@3;serve.route=err@2;serve.predict=err@30%;seed=7"),
    );
    let addr = server.addr;

    // Phase A: four clients, five requests each, generous deadline.
    let mixes: [&[&str]; 5] = [
        &["leela_r"],
        &["xz_r", "gcc_r"],
        &["gcc_r", "gcc_r", "leela_r"],
        &["xz_r"],
        &["leela_r", "xz_r", "gcc_r", "leela_r"],
    ];
    let mut clients = Vec::new();
    for _ in 0..4 {
        clients.push(std::thread::spawn(move || {
            let mut replies = Vec::new();
            for mix in mixes {
                replies.push(http(
                    addr,
                    "POST",
                    "/predict",
                    &[("x-sms-deadline-ms", "2000")],
                    &predict_body(mix, 0),
                ));
            }
            replies
        }));
    }
    let mut replies: Vec<Reply> = Vec::new();
    for c in clients {
        replies.extend(c.join().unwrap()); // no hangs: every thread returns
    }

    // Phase B: a deterministic deadline miss — the simulated model
    // latency (500ms) overruns a 100ms deadline on every possible path
    // (primary, fallback, or an injected failure), so the answer must be
    // a 504 attributed to the predict stage.
    let late = http(
        addr,
        "POST",
        "/predict",
        &[("x-sms-deadline-ms", "100")],
        &predict_body(&["leela_r", "gcc_r", "xz_r"], 500),
    );
    assert_eq!(late.status, 504, "{}", late.body);
    assert_eq!(late.header("x-sms-deadline-stage"), Some("predict"));
    replies.push(late);

    // Every reply is typed and bounded; tally what the clients saw.
    let (mut degraded, mut gateway_timeouts) = (0u64, 0u64);
    let (mut accept_refusals, mut route_refusals, mut sheds) = (0u64, 0u64, 0u64);
    for reply in &replies {
        assert!(
            reply.elapsed < Duration::from_secs(10),
            "reply took {:?}",
            reply.elapsed
        );
        match reply.status {
            200 => degraded += u64::from(reply.degraded()),
            503 if reply.body.contains("serve.accept") => accept_refusals += 1,
            503 if reply.body.contains("serve.route") => route_refusals += 1,
            503 => sheds += 1,
            504 => gateway_timeouts += 1,
            other => panic!("untyped status {other}: {}", reply.body),
        }
        if reply.degraded() {
            assert!(reply.body.contains("\"degraded\":true"), "{}", reply.body);
        }
    }
    assert_eq!(accept_refusals, 1, "serve.accept=err@3 fires exactly once");
    assert_eq!(route_refusals, 1, "serve.route=err@2 fires exactly once");

    // The server's books match the clients' exactly.
    let m = metrics_json(addr);
    assert_eq!(m["degraded_total"].as_u64().unwrap(), degraded);
    let deadline_sum: u64 = ["header", "queue", "predict"]
        .iter()
        .map(|s| m["deadline_exceeded"][*s].as_u64().unwrap())
        .sum();
    assert_eq!(deadline_sum, gateway_timeouts);
    assert_eq!(m["shed_total"].as_u64().unwrap(), sheds);
    assert_eq!(m["accept_errors"].as_u64().unwrap(), accept_refusals);
    assert_eq!(m["worker_panics"].as_u64().unwrap(), 0);
    // 21 predicts sent; the accept- and route-refused ones never reached
    // the predict handler.
    assert_eq!(m["predict_requests"].as_u64().unwrap(), 19);

    let stderr = server.shutdown();
    assert!(
        stderr.contains("sms-faults: injected"),
        "fault injections are announced:\n{stderr}"
    );
    assert!(
        stderr.contains("accept failed"),
        "accept failures warn once:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&results);
}

/// CI-matrix smoke: boot the server under whatever `SMS_FAULTS` the
/// harness environment carries (e.g. `artifact.load=err@50%` or
/// `serve.predict=delay:200`) and assert the invariants that must hold
/// under *any* schedule: the model eventually becomes available (the
/// self-healing registry retries and re-probes), every request gets a
/// typed answer within its budget, and the degraded/504 books balance.
/// With no ambient spec this degenerates to a fault-free smoke test.
#[test]
fn ambient_fault_schedule_keeps_the_server_available() {
    let ambient = std::env::var("SMS_FAULTS")
        .ok()
        .filter(|s| !s.trim().is_empty());
    let results = tmp("ambient");
    train(&results);
    let server = Server::boot(&results, ambient.as_deref());
    let addr = server.addr;

    // `artifact.load` faults can park the artifact past boot; the
    // acceptor's periodic re-probe must absolve it without a restart.
    let ready_by = Instant::now() + Duration::from_secs(30);
    loop {
        let health = http(addr, "GET", "/healthz", &[], "");
        if health.status == 200 && health.json()["models"] == 1 {
            break;
        }
        assert!(
            Instant::now() < ready_by,
            "model never became available: {} {}",
            health.status,
            health.body
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    let mixes: [&[&str]; 3] = [&["leela_r"], &["xz_r", "gcc_r"], &["gcc_r", "leela_r"]];
    let (mut degraded, mut gateway_timeouts) = (0u64, 0u64);
    for i in 0..9 {
        let reply = http(
            addr,
            "POST",
            "/predict",
            &[("x-sms-deadline-ms", "3000")],
            &predict_body(mixes[i % mixes.len()], 0),
        );
        assert!(
            reply.elapsed < Duration::from_secs(10),
            "reply {i} took {:?}",
            reply.elapsed
        );
        match reply.status {
            200 => degraded += u64::from(reply.degraded()),
            503 | 504 => gateway_timeouts += u64::from(reply.status == 504),
            other => panic!("untyped status {other}: {}", reply.body),
        }
    }

    let m = metrics_json(addr);
    assert_eq!(m["degraded_total"].as_u64().unwrap(), degraded);
    let deadline_sum: u64 = ["header", "queue", "predict"]
        .iter()
        .map(|s| m["deadline_exceeded"][*s].as_u64().unwrap())
        .sum();
    assert_eq!(deadline_sum, gateway_timeouts);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

/// Deterministic breaker lifecycle: three injected failures trip the
/// breaker open, the open window serves analytic fallbacks, the half-open
/// trial heals it, and post-recovery predictions are bit-identical to a
/// fault-free server's.
#[test]
fn breaker_trips_heals_and_recovers_bit_identically() {
    let results = tmp("breaker");
    train(&results);
    let mix_a: &[&str] = &["leela_r", "xz_r"];
    let mix_b: &[&str] = &["gcc_r", "leela_r"];

    // Fault-free reference bodies for both mixes.
    let reference = Server::boot(&results, None);
    let ref_a = http(
        reference.addr,
        "POST",
        "/predict",
        &[],
        &predict_body(mix_a, 0),
    );
    let ref_b = http(
        reference.addr,
        "POST",
        "/predict",
        &[],
        &predict_body(mix_b, 0),
    );
    assert_eq!(ref_a.status, 200, "{}", ref_a.body);
    assert_eq!(ref_b.status, 200, "{}", ref_b.body);
    reference.shutdown();

    // Exactly the first three predictions fail: that is the default
    // breaker threshold, so the breaker trips open; the default open
    // window (8) then elapses request by request, and the half-open trial
    // succeeds because the faults are spent.
    let server = Server::boot(
        &results,
        Some("serve.predict=err@1;serve.predict=err@2;serve.predict=err@3"),
    );
    let addr = server.addr;

    // Requests 1-3: failures served by the fallback (degraded 200s).
    // Requests 4-10: breaker open, fallback without touching the model.
    for i in 1..=10 {
        let reply = http(addr, "POST", "/predict", &[], &predict_body(mix_a, 0));
        assert_eq!(reply.status, 200, "request {i}: {}", reply.body);
        assert!(reply.degraded(), "request {i} should be degraded");
        assert!(
            reply.body.contains("\"degraded\":true"),
            "request {i}: {}",
            reply.body
        );
    }

    // Request 11 is the half-open trial: it reaches the healthy model and
    // closes the breaker, and its body is bit-identical to the fault-free
    // reference (degraded responses were never cached).
    let trial = http(addr, "POST", "/predict", &[], &predict_body(mix_a, 0));
    assert_eq!(trial.status, 200, "{}", trial.body);
    assert!(!trial.degraded(), "trial must be a primary answer");
    assert_eq!(trial.header("x-cache"), Some("miss"));
    assert_eq!(trial.body, ref_a.body, "post-recovery answer differs");

    // A fresh mix after recovery is primary and bit-identical too.
    let fresh = http(addr, "POST", "/predict", &[], &predict_body(mix_b, 0));
    assert_eq!(fresh.status, 200, "{}", fresh.body);
    assert!(!fresh.degraded());
    assert_eq!(fresh.body, ref_b.body, "post-recovery answer differs");

    // The books: ten fallback answers, one transition through each state,
    // no deadline was ever exceeded.
    let m = metrics_json(addr);
    assert_eq!(m["degraded_total"].as_u64().unwrap(), 10);
    assert_eq!(m["breaker_transitions"]["open"].as_u64().unwrap(), 1);
    assert_eq!(m["breaker_transitions"]["half_open"].as_u64().unwrap(), 1);
    assert_eq!(m["breaker_transitions"]["closed"].as_u64().unwrap(), 1);
    for stage in ["header", "queue", "predict"] {
        assert_eq!(m["deadline_exceeded"][stage].as_u64().unwrap(), 0);
    }
    assert_eq!(m["worker_panics"].as_u64().unwrap(), 0);

    // Transitions are narrated on stderr, in lifecycle order.
    let stderr = server.shutdown();
    let open = stderr.find("circuit breaker -> open").expect("open logged");
    let half = stderr
        .find("circuit breaker -> half_open")
        .expect("half_open logged");
    let closed = stderr
        .find("circuit breaker -> closed")
        .expect("closed logged");
    assert!(
        open < half && half < closed,
        "out-of-order transitions:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&results);
}
