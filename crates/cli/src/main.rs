//! The `sms` binary: see [`sms_cli::HELP`] or run `sms help`.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match sms_cli::Args::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match sms_cli::run(&args) {
        Ok(out) => println!("{out}"),
        // A lint report or bench-diff comparison goes to stdout (CI
        // pipes and archives it from there); the non-zero exit code
        // alone signals the failure.
        Err(sms_cli::CliError::Lint(report) | sms_cli::CliError::Regression(report)) => {
            print!("{report}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
